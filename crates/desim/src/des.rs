//! The deterministic discrete-event simulation.
//!
//! Each rank has a local virtual clock. Events are executed globally in
//! (time, sequence) order; an event arriving at a rank whose clock is ahead
//! executes at the rank's clock (the rank was busy — messages queue).
//! Handlers advance their rank's clock by the compute/I-O/communication time
//! they charge. Ties are broken by a monotone sequence number, so the whole
//! schedule is a pure function of the inputs.

use crate::event::Event;
use crate::metrics::{ProcMetrics, SimReport};
use crate::net::NetModel;
use crate::process::{Context, Process};
use crate::trace::{ChargeKind, Timeline};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<M> {
    time: f64,
    seq: u64,
    to: usize,
    /// Receive-side cost to charge before the handler runs (message events).
    recv_cost: f64,
    recv_bytes: u64,
    ev: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One undelivered event in a [`SimState`] cut, with the delivery metadata
/// the scheduler attached when it was enqueued.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingEvent<M> {
    pub time: f64,
    pub seq: u64,
    pub to: usize,
    pub recv_cost: f64,
    pub recv_bytes: u64,
    pub ev: Event<M>,
}

/// A consistent between-events cut of a running simulation: per-rank clocks
/// and metrics, the scheduler counters, and every undelivered event. The
/// schedule is a pure function of this state, so a simulation resumed from a
/// cut completes bit-identically to one that never paused.
#[derive(Debug, Clone)]
pub struct SimState<M> {
    pub clocks: Vec<f64>,
    pub metrics: Vec<ProcMetrics>,
    /// Next sequence number the scheduler will assign.
    pub next_seq: u64,
    /// Events processed so far.
    pub events: u64,
    /// Undelivered events, sorted by `(time, seq)` — the pop order.
    pub pending: Vec<PendingEvent<M>>,
    /// Rank deaths applied so far, as `(rank, virtual time)` in application
    /// order. A resumed simulation skips these when replaying its death
    /// schedule, so a cut taken after a fail-stop restores exactly.
    pub dead: Vec<(usize, f64)>,
    /// Events silently dropped so far because their target or sender was
    /// dead.
    pub dropped_events: u64,
}

/// What a checkpoint hook tells the simulation to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointControl {
    Continue,
    /// Abandon the run immediately (used by kill-mid-run tests; a real crash
    /// is the same thing without the courtesy).
    Stop,
}

/// Periodic checkpoint configuration: fire `hook` whenever the next event
/// would cross an `interval` boundary of virtual time.
type CkptHook<'a, M, P> = (f64, &'a mut dyn FnMut(&SimState<M>, &[P]) -> CheckpointControl);

/// Context handed to handlers during simulation.
struct DesCtx<'a, M> {
    rank: usize,
    n_ranks: usize,
    /// Virtual time the handler started executing.
    exec_time: f64,
    /// Time charged so far inside this handler.
    elapsed: f64,
    metrics: &'a mut ProcMetrics,
    net: NetModel,
    /// (delivery_time, to, bytes, msg) accumulated sends.
    outbox: Vec<(f64, usize, usize, M)>,
    /// (absolute_time, token) accumulated self-wakes.
    wakes: Vec<(f64, u64)>,
    stop: &'a mut bool,
    trace: Option<&'a mut Timeline>,
}

impl<M> Context<M> for DesCtx<'_, M> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    fn now(&self) -> f64 {
        self.exec_time + self.elapsed
    }

    fn charge_compute(&mut self, secs: f64) {
        debug_assert!(secs >= 0.0 && secs.is_finite());
        if let Some(t) = self.trace.as_deref_mut() {
            t.add(self.rank, ChargeKind::Compute, self.exec_time + self.elapsed, secs);
        }
        self.elapsed += secs;
        self.metrics.compute += secs;
    }

    fn charge_io(&mut self, secs: f64) {
        debug_assert!(secs >= 0.0 && secs.is_finite());
        if let Some(t) = self.trace.as_deref_mut() {
            t.add(self.rank, ChargeKind::Io, self.exec_time + self.elapsed, secs);
        }
        self.elapsed += secs;
        self.metrics.io += secs;
    }

    fn send(&mut self, to: usize, msg: M, bytes: usize) {
        debug_assert!(to < self.n_ranks, "send to unknown rank {to}");
        let cost = self.net.send_cost(bytes);
        if let Some(t) = self.trace.as_deref_mut() {
            t.add(self.rank, ChargeKind::Comm, self.exec_time + self.elapsed, cost);
        }
        self.elapsed += cost;
        self.metrics.comm += cost;
        self.metrics.msgs_sent += 1;
        self.metrics.bytes_sent += bytes as u64;
        let delivery = self.now() + self.net.transit(bytes);
        self.outbox.push((delivery, to, bytes, msg));
    }

    fn wake_after(&mut self, delay: f64, token: u64) {
        debug_assert!(delay >= 0.0 && delay.is_finite());
        self.wakes.push((self.now() + delay, token));
    }

    fn stop_all(&mut self) {
        *self.stop = true;
    }
}

/// The discrete-event simulation over `n` ranks running processes of type
/// `P` exchanging messages of type `M`.
///
/// ```
/// use streamline_desim::{Context, Event, NetModel, Process, Simulation};
///
/// struct Echo;
/// impl Process<u32> for Echo {
///     fn on_event(&mut self, ev: Event<u32>, ctx: &mut dyn Context<u32>) {
///         match ev {
///             Event::Start if ctx.rank() == 0 => ctx.send(1, 41, 8),
///             Event::Message { msg, .. } => {
///                 ctx.charge_compute(1e-3);
///                 assert_eq!(msg, 41);
///                 ctx.stop_all();
///             }
///             _ => {}
///         }
///     }
/// }
///
/// let (report, _) = Simulation::new(NetModel::paper_scale(), vec![Echo, Echo]).run();
/// assert!(report.wall >= 1e-3); // the receiver's compute is on the critical path
/// ```
pub struct Simulation<M, P> {
    net: NetModel,
    procs: Vec<P>,
    /// Fail-stop schedule: `(rank, virtual time)` kills, applied in time
    /// order just before the first event at or past each kill time.
    deaths: Vec<(usize, f64)>,
    /// Pre-scheduled open-loop arrivals: `(time, rank, message)` delivered
    /// as self-addressed messages at their ingest times.
    arrivals: Vec<(f64, usize, M)>,
    _marker: std::marker::PhantomData<M>,
}

/// Default safety valve on total events (livelock guard).
pub const DEFAULT_MAX_EVENTS: u64 = 50_000_000;

impl<M: Clone, P: Process<M>> Simulation<M, P> {
    pub fn new(net: NetModel, procs: Vec<P>) -> Self {
        assert!(!procs.is_empty(), "simulation needs at least one rank");
        Simulation {
            net,
            procs,
            deaths: Vec::new(),
            arrivals: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Schedule messages to arrive from outside the cluster: each
    /// `(time, rank, msg)` is delivered to `rank` as an ordinary
    /// (self-addressed) message at virtual `time` — the substrate for
    /// open-loop seed ingestion. Arrivals are enqueued only on a fresh
    /// run; on [`Simulation::resume`] any not-yet-delivered arrival is
    /// already in [`SimState::pending`] and re-adding it would duplicate
    /// ingestion. An empty schedule leaves the run bit-identical to
    /// [`Simulation::new`] alone.
    pub fn with_arrivals(mut self, arrivals: Vec<(f64, usize, M)>) -> Self {
        for &(time, rank, _) in &arrivals {
            assert!(rank < self.procs.len(), "arrival scheduled for unknown rank {rank}");
            assert!(
                time.is_finite() && time >= 0.0,
                "arrival time must be finite and non-negative"
            );
        }
        self.arrivals = arrivals;
        self
    }

    /// Schedule fail-stop rank deaths: at each `(rank, time)` the rank is
    /// killed just before the first event at or past `time` is delivered.
    /// From then on every event addressed to it is silently dropped, and so
    /// is every in-flight message it sent — no notification of any kind is
    /// generated. Survivors can only learn of the death by timeout.
    ///
    /// An empty schedule leaves the run bit-identical to [`Simulation::new`]
    /// alone. Duplicate entries for a rank are idempotent (first time wins).
    pub fn with_rank_deaths(mut self, mut deaths: Vec<(usize, f64)>) -> Self {
        for &(rank, time) in &deaths {
            assert!(rank < self.procs.len(), "death scheduled for unknown rank {rank}");
            assert!(time.is_finite() && time >= 0.0, "death time must be finite and non-negative");
        }
        deaths.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        self.deaths = deaths;
        self
    }

    /// Run to completion (event queue empty or a process called
    /// `stop_all`). Returns the report and the final process states.
    pub fn run(self) -> (SimReport, Vec<P>) {
        self.run_bounded(DEFAULT_MAX_EVENTS)
    }

    /// Run with a utilization [`Timeline`] recorded at `bucket_width`
    /// virtual-second resolution.
    pub fn run_traced(self, bucket_width: f64) -> (SimReport, Vec<P>, Timeline) {
        let n = self.procs.len();
        let mut timeline = Timeline::new(n, bucket_width);
        let (report, procs) = self.run_inner(DEFAULT_MAX_EVENTS, Some(&mut timeline), None, None);
        (report.expect("no hook, cannot stop early"), procs, timeline)
    }

    /// [`Self::run`] with an explicit event budget; panics when exceeded
    /// (indicates a livelocked algorithm, never a legitimate run).
    pub fn run_bounded(self, max_events: u64) -> (SimReport, Vec<P>) {
        let (report, procs) = self.run_inner(max_events, None, None, None);
        (report.expect("no hook, cannot stop early"), procs)
    }

    /// Run with a periodic checkpoint hook: before executing the first event
    /// at or past each `interval` boundary of virtual time, `hook` receives a
    /// consistent [`SimState`] cut plus the process states. Returns `None`
    /// for the report if the hook answered [`CheckpointControl::Stop`]
    /// (abandoned mid-run).
    pub fn run_checkpointed(
        self,
        interval: f64,
        hook: &mut dyn FnMut(&SimState<M>, &[P]) -> CheckpointControl,
    ) -> (Option<SimReport>, Vec<P>) {
        self.run_inner(DEFAULT_MAX_EVENTS, None, None, Some((interval, hook)))
    }

    /// Resume from a [`SimState`] cut and run to completion. The processes
    /// passed to [`Simulation::new`] must already be restored to the same
    /// cut; no `Start` events are delivered.
    pub fn resume(self, state: SimState<M>) -> (SimReport, Vec<P>) {
        let (report, procs) = self.run_inner(DEFAULT_MAX_EVENTS, None, Some(state), None);
        (report.expect("no hook, cannot stop early"), procs)
    }

    /// [`Self::resume`] with checkpointing re-armed (the first boundary at or
    /// before the resume point fires immediately, then every `interval`).
    pub fn resume_checkpointed(
        self,
        state: SimState<M>,
        interval: f64,
        hook: &mut dyn FnMut(&SimState<M>, &[P]) -> CheckpointControl,
    ) -> (Option<SimReport>, Vec<P>) {
        self.run_inner(DEFAULT_MAX_EVENTS, None, Some(state), Some((interval, hook)))
    }

    /// Clone the scheduler state into a serializable cut.
    fn cut(
        queue: &BinaryHeap<Scheduled<M>>,
        clocks: &[f64],
        metrics: &[ProcMetrics],
        next_seq: u64,
        events: u64,
        dead: &[(usize, f64)],
        dropped_events: u64,
    ) -> SimState<M> {
        let mut pending: Vec<PendingEvent<M>> = queue
            .iter()
            .map(|s| PendingEvent {
                time: s.time,
                seq: s.seq,
                to: s.to,
                recv_cost: s.recv_cost,
                recv_bytes: s.recv_bytes,
                ev: s.ev.clone(),
            })
            .collect();
        pending.sort_by(|a, b| a.time.total_cmp(&b.time).then_with(|| a.seq.cmp(&b.seq)));
        SimState {
            clocks: clocks.to_vec(),
            metrics: metrics.to_vec(),
            next_seq,
            events,
            pending,
            dead: dead.to_vec(),
            dropped_events,
        }
    }

    fn run_inner(
        mut self,
        max_events: u64,
        mut trace: Option<&mut Timeline>,
        init: Option<SimState<M>>,
        mut ckpt: Option<CkptHook<'_, M, P>>,
    ) -> (Option<SimReport>, Vec<P>) {
        let n = self.procs.len();
        let mut clocks = vec![0.0f64; n];
        let mut metrics = vec![ProcMetrics::default(); n];
        let mut queue: BinaryHeap<Scheduled<M>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut stop = false;
        let mut events = 0u64;
        // Fail-stop bookkeeping: which ranks are dead, the applied deaths in
        // order, and how many events were silently dropped on their account.
        let mut dead = vec![false; n];
        let mut applied: Vec<(usize, f64)> = Vec::new();
        let mut dropped = 0u64;

        match init {
            Some(state) => {
                assert_eq!(state.clocks.len(), n, "resume state rank count mismatch");
                assert_eq!(state.metrics.len(), n, "resume state rank count mismatch");
                clocks = state.clocks;
                metrics = state.metrics;
                seq = state.next_seq;
                events = state.events;
                dropped = state.dropped_events;
                for &(rank, time) in &state.dead {
                    assert!(rank < n, "dead rank {rank} out of range");
                    dead[rank] = true;
                    applied.push((rank, time));
                }
                for p in state.pending {
                    assert!(p.seq < seq, "pending event from the future");
                    assert!(p.to < n, "pending event for unknown rank {}", p.to);
                    queue.push(Scheduled {
                        time: p.time,
                        seq: p.seq,
                        to: p.to,
                        recv_cost: p.recv_cost,
                        recv_bytes: p.recv_bytes,
                        ev: p.ev,
                    });
                }
            }
            None => {
                for rank in 0..n {
                    queue.push(Scheduled {
                        time: 0.0,
                        seq,
                        to: rank,
                        recv_cost: 0.0,
                        recv_bytes: 0,
                        ev: Event::Start,
                    });
                    seq += 1;
                }
                // Open-loop arrivals enter the queue up front (fresh runs
                // only — a resumed cut already carries the undelivered ones
                // in `pending`). They cost nothing to receive; any modelled
                // ingest cost is the receiving process's business.
                for (time, to, msg) in std::mem::take(&mut self.arrivals) {
                    queue.push(Scheduled {
                        time,
                        seq,
                        to,
                        recv_cost: 0.0,
                        recv_bytes: 0,
                        ev: Event::Message { from: to, msg },
                    });
                    seq += 1;
                }
            }
        }

        let mut next_boundary = ckpt.as_ref().map(|(interval, _)| {
            assert!(
                *interval > 0.0 && interval.is_finite(),
                "checkpoint interval must be positive and finite"
            );
            *interval
        });

        let mut death_idx = 0usize;

        loop {
            if stop {
                break;
            }
            let Some(top_time) = queue.peek().map(|s| s.time) else {
                break;
            };
            // Apply scheduled deaths due at or before the next event: the
            // rank is gone before that event can be delivered. Entries for
            // already-dead ranks (duplicates, or deaths restored from a
            // resume cut) are skipped idempotently.
            while death_idx < self.deaths.len() && self.deaths[death_idx].1 <= top_time {
                let (rank, time) = self.deaths[death_idx];
                death_idx += 1;
                if !dead[rank] {
                    dead[rank] = true;
                    applied.push((rank, time));
                }
            }
            // Checkpoint on boundary crossings: the cut is taken between
            // events, so the event about to execute is still in `pending`.
            if let (Some((interval, hook)), Some(boundary)) =
                (ckpt.as_mut(), next_boundary.as_mut())
            {
                if top_time >= *boundary {
                    while *boundary <= top_time {
                        *boundary += *interval;
                    }
                    let state =
                        Self::cut(&queue, &clocks, &metrics, seq, events, &applied, dropped);
                    if hook(&state, &self.procs) == CheckpointControl::Stop {
                        return (None, self.procs);
                    }
                }
            }
            let sch = queue.pop().expect("peeked above");
            // Fail-stop semantics: events to a dead rank vanish, and so do
            // in-flight messages *from* a dead rank (its sends die with it).
            // Nothing is generated in their place — survivors only notice
            // via their own timeouts.
            if dead[sch.to] || matches!(&sch.ev, Event::Message { from, .. } if dead[*from]) {
                dropped += 1;
                continue;
            }
            events += 1;
            assert!(
                events <= max_events,
                "event budget {max_events} exhausted — livelocked algorithm?"
            );
            let rank = sch.to;
            // The rank may be busy past the event's arrival: execute when
            // free. If it is free earlier, the gap was idle time.
            let exec_time = if clocks[rank] >= sch.time {
                clocks[rank]
            } else {
                let gap = sch.time - clocks[rank];
                if let Some(t) = trace.as_deref_mut() {
                    t.add(rank, ChargeKind::Idle, clocks[rank], gap);
                }
                metrics[rank].idle += gap;
                sch.time
            };
            let m = &mut metrics[rank];
            m.events += 1;
            let mut ctx = DesCtx {
                rank,
                n_ranks: n,
                exec_time,
                elapsed: 0.0,
                metrics: m,
                net: self.net,
                outbox: Vec::new(),
                wakes: Vec::new(),
                stop: &mut stop,
                trace: trace.as_deref_mut(),
            };
            // Charge the receive-side cost before handling.
            if sch.recv_cost > 0.0 {
                if let Some(t) = ctx.trace.as_deref_mut() {
                    t.add(rank, ChargeKind::Comm, exec_time, sch.recv_cost);
                }
                ctx.elapsed += sch.recv_cost;
                ctx.metrics.comm += sch.recv_cost;
            }
            if matches!(sch.ev, Event::Message { .. }) {
                ctx.metrics.msgs_recv += 1;
                ctx.metrics.bytes_recv += sch.recv_bytes;
            }
            self.procs[rank].on_event(sch.ev, &mut ctx);
            let elapsed = ctx.elapsed;
            let outbox = std::mem::take(&mut ctx.outbox);
            let wakes = std::mem::take(&mut ctx.wakes);
            clocks[rank] = exec_time + elapsed;
            for (delivery, to, bytes, msg) in outbox {
                queue.push(Scheduled {
                    time: delivery,
                    seq,
                    to,
                    recv_cost: self.net.recv_cost(bytes),
                    recv_bytes: bytes as u64,
                    ev: Event::Message { from: rank, msg },
                });
                seq += 1;
            }
            for (time, token) in wakes {
                queue.push(Scheduled {
                    time,
                    seq,
                    to: rank,
                    recv_cost: 0.0,
                    recv_bytes: 0,
                    ev: Event::Wake(token),
                });
                seq += 1;
            }
        }

        let wall = clocks.iter().copied().fold(0.0f64, f64::max);
        let report = SimReport {
            wall,
            events,
            ranks: metrics,
            rank_deaths: applied,
            dropped_events: dropped,
        };
        (Some(report), self.procs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong: rank 0 sends a counter to rank 1 and back N times, then
    /// stops the world.
    struct PingPong {
        rounds: u32,
        log: Vec<(usize, u32)>,
    }

    impl Process<u32> for PingPong {
        fn on_event(&mut self, ev: Event<u32>, ctx: &mut dyn Context<u32>) {
            match ev {
                Event::Start => {
                    if ctx.rank() == 0 {
                        ctx.charge_compute(1e-3);
                        ctx.send(1, 0, 64);
                    }
                }
                Event::Message { from, msg } => {
                    self.log.push((ctx.rank(), msg));
                    if msg + 1 >= self.rounds {
                        ctx.stop_all();
                    } else {
                        ctx.charge_compute(1e-3);
                        ctx.send(from, msg + 1, 64);
                    }
                }
                Event::Wake(_) => {}
            }
        }
    }

    fn run_pingpong(rounds: u32) -> (SimReport, Vec<PingPong>) {
        let procs = (0..2).map(|_| PingPong { rounds, log: Vec::new() }).collect();
        Simulation::new(NetModel::paper_scale(), procs).run()
    }

    #[test]
    fn pingpong_alternates_and_time_advances() {
        let (report, procs) = run_pingpong(6);
        // Messages 0,2,4 land on rank 1; 1,3,5 on rank 0.
        assert_eq!(procs[1].log, vec![(1, 0), (1, 2), (1, 4)]);
        assert_eq!(procs[0].log, vec![(0, 1), (0, 3), (0, 5)]);
        // Six 1 ms compute charges plus messaging.
        assert!(report.wall > 5e-3, "wall = {}", report.wall);
        assert!(report.total(|m| m.comm) > 0.0);
        assert_eq!(report.ranks[0].msgs_sent + report.ranks[1].msgs_sent, 6);
    }

    #[test]
    fn deterministic_replay() {
        let (a, _) = run_pingpong(10);
        let (b, _) = run_pingpong(10);
        assert_eq!(a.wall, b.wall);
        assert_eq!(a.events, b.events);
        for (x, y) in a.ranks.iter().zip(b.ranks.iter()) {
            assert_eq!(x, y);
        }
    }

    /// A process that charges known amounts lets us verify the accounting.
    struct Charger;
    impl Process<()> for Charger {
        fn on_event(&mut self, ev: Event<()>, ctx: &mut dyn Context<()>) {
            if matches!(ev, Event::Start) {
                ctx.charge_compute(2.0);
                ctx.charge_io(1.0);
                assert!((ctx.now() - 3.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn charging_advances_clock_and_wall() {
        let (report, _) = Simulation::new(NetModel::free(), vec![Charger, Charger]).run();
        assert!((report.wall - 3.0).abs() < 1e-12);
        assert_eq!(report.ranks[0].compute, 2.0);
        assert_eq!(report.ranks[0].io, 1.0);
    }

    /// Wake-after fires at the requested virtual time.
    struct Waker {
        woke_at: f64,
    }
    impl Process<()> for Waker {
        fn on_event(&mut self, ev: Event<()>, ctx: &mut dyn Context<()>) {
            match ev {
                Event::Start => ctx.wake_after(5.0, 42),
                Event::Wake(t) => {
                    assert_eq!(t, 42);
                    self.woke_at = ctx.now();
                }
                _ => {}
            }
        }
    }

    #[test]
    fn wake_after_fires_on_time() {
        let (report, procs) =
            Simulation::new(NetModel::free(), vec![Waker { woke_at: -1.0 }]).run();
        assert!((procs[0].woke_at - 5.0).abs() < 1e-12);
        // Idle while waiting.
        assert!((report.ranks[0].idle - 5.0).abs() < 1e-12);
    }

    #[test]
    fn traced_runs_record_idle_gaps() {
        let (report, _, timeline) =
            Simulation::new(NetModel::free(), vec![Waker { woke_at: -1.0 }]).run_traced(0.5);
        // The 5 s wait shows up identically in the metrics and the timeline.
        assert!((report.ranks[0].idle - 5.0).abs() < 1e-12);
        let traced_idle = timeline.phase_total(0, ChargeKind::Idle);
        assert!((traced_idle - 5.0).abs() < 1e-9, "traced idle = {traced_idle}");
        // Idle is not busy: utilization stays zero.
        assert_eq!(timeline.utilization(0, 0), 0.0);
    }

    /// Causality: a message executes no earlier than its send completion +
    /// transit, and a busy receiver queues it.
    struct BusyReceiver {
        got_at: f64,
    }
    impl Process<u8> for BusyReceiver {
        fn on_event(&mut self, ev: Event<u8>, ctx: &mut dyn Context<u8>) {
            match ev {
                Event::Start => {
                    if ctx.rank() == 0 {
                        ctx.send(1, 1, 0);
                    } else {
                        // Rank 1 is busy for 10 s from t = 0.
                        ctx.charge_compute(10.0);
                    }
                }
                Event::Message { .. } => {
                    self.got_at = ctx.now();
                }
                _ => {}
            }
        }
    }

    #[test]
    fn busy_receiver_defers_message() {
        let procs = vec![BusyReceiver { got_at: -1.0 }, BusyReceiver { got_at: -1.0 }];
        let (_, procs) = Simulation::new(NetModel::free(), procs).run();
        // Message would arrive at ~0 but rank 1 is busy until t = 10.
        assert!(procs[1].got_at >= 10.0, "got at {}", procs[1].got_at);
    }

    /// An external arrival is an ordinary self-addressed message delivered
    /// at its scheduled time (or later if the rank is busy).
    #[derive(Clone)]
    struct Collector {
        got: Vec<(u8, f64)>,
    }
    impl Process<u8> for Collector {
        fn on_event(&mut self, ev: Event<u8>, ctx: &mut dyn Context<u8>) {
            if let Event::Message { msg, .. } = ev {
                self.got.push((msg, ctx.now()));
            }
        }
    }

    #[test]
    fn arrivals_deliver_at_scheduled_times() {
        let procs = vec![Collector { got: vec![] }, Collector { got: vec![] }];
        let sim = Simulation::new(NetModel::free(), procs).with_arrivals(vec![
            (1.0, 0, 7),
            (2.5, 1, 8),
            (2.5, 0, 9),
        ]);
        let (report, procs) = sim.run();
        assert_eq!(procs[0].got, vec![(7, 1.0), (9, 2.5)]);
        assert_eq!(procs[1].got, vec![(8, 2.5)]);
        // Waiting for an arrival is idle time, and wall covers the stream.
        assert!((report.wall - 2.5).abs() < 1e-12);
    }

    #[test]
    fn arrivals_survive_checkpoint_resume_without_duplication() {
        let procs = vec![Collector { got: vec![] }];
        let arrivals = vec![(1.0, 0, 1), (3.0, 0, 2), (5.0, 0, 3)];
        // Cut between the first and second arrival, then resume: the
        // undelivered arrivals ride the cut's pending queue and must not
        // be re-enqueued by the resumed simulation.
        let mut cut: Option<(SimState<u8>, Vec<Collector>)> = None;
        let sim = Simulation::new(NetModel::free(), procs).with_arrivals(arrivals.clone());
        let (report, _) = sim.run_checkpointed(2.0, &mut |state, procs| {
            cut = Some((state.clone(), procs.to_vec()));
            CheckpointControl::Stop
        });
        assert!(report.is_none(), "stopped at the first boundary");
        let (state, procs) = cut.expect("one cut taken");
        assert_eq!(procs[0].got, vec![(1, 1.0)], "only the first arrival before the cut");
        assert_eq!(state.pending.len(), 2, "two arrivals still pending");
        // Resuming with a fresh arrival schedule attached would duplicate;
        // the resume path ignores `with_arrivals` by design.
        let resumed = Simulation::new(NetModel::free(), procs).with_arrivals(arrivals);
        let (_, procs) = resumed.resume(state);
        assert_eq!(procs[0].got, vec![(1, 1.0), (2, 3.0), (3, 5.0)]);
    }

    /// Stop halts the world even with events pending.
    struct Flooder;
    impl Process<u8> for Flooder {
        fn on_event(&mut self, ev: Event<u8>, ctx: &mut dyn Context<u8>) {
            match ev {
                Event::Start => ctx.send(ctx.rank(), 0, 0),
                Event::Message { msg, .. } => {
                    if msg > 10 {
                        ctx.stop_all();
                    } else {
                        ctx.send(ctx.rank(), msg.wrapping_add(1), 0);
                        ctx.send(ctx.rank(), msg.wrapping_add(1), 0);
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn stop_all_halts_flood() {
        let (report, _) = Simulation::new(NetModel::free(), vec![Flooder]).run_bounded(1_000_000);
        assert!(report.events < 1_000_000);
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn livelock_guard_panics() {
        struct Forever;
        impl Process<u8> for Forever {
            fn on_event(&mut self, _ev: Event<u8>, ctx: &mut dyn Context<u8>) {
                ctx.send(ctx.rank(), 0, 0);
            }
        }
        let _ = Simulation::new(NetModel::free(), vec![Forever]).run_bounded(1000);
    }

    #[test]
    fn checkpointed_run_matches_plain_run() {
        let (plain, plain_procs) = run_pingpong(10);
        let procs = (0..2).map(|_| PingPong { rounds: 10, log: Vec::new() }).collect();
        let mut cuts = 0u32;
        let (ckpt, ckpt_procs) = Simulation::new(NetModel::paper_scale(), procs).run_checkpointed(
            1e-3,
            &mut |state, procs: &[PingPong]| {
                cuts += 1;
                assert_eq!(state.clocks.len(), 2);
                assert_eq!(procs.len(), 2);
                assert!(!state.pending.is_empty(), "cut taken with an event still pending");
                // Pending is sorted by (time, seq).
                for w in state.pending.windows(2) {
                    assert!((w[0].time, w[0].seq) < (w[1].time, w[1].seq), "pending not sorted");
                }
                CheckpointControl::Continue
            },
        );
        let ckpt = ckpt.expect("hook never stopped");
        assert!(cuts > 0, "interval smaller than the run must fire the hook");
        assert_eq!(plain.wall.to_bits(), ckpt.wall.to_bits());
        assert_eq!(plain.events, ckpt.events);
        assert_eq!(plain.ranks, ckpt.ranks);
        assert_eq!(plain_procs[0].log, ckpt_procs[0].log);
        assert_eq!(plain_procs[1].log, ckpt_procs[1].log);
    }

    #[test]
    fn kill_at_checkpoint_then_resume_is_bit_identical() {
        let (reference, ref_procs) = run_pingpong(12);
        // Run until the second checkpoint, stop, and capture the cut.
        let procs = (0..2).map(|_| PingPong { rounds: 12, log: Vec::new() }).collect();
        let mut captured: Option<SimState<u32>> = None;
        let mut cuts = 0u32;
        let (stopped, killed_procs) = Simulation::new(NetModel::paper_scale(), procs)
            .run_checkpointed(1e-3, &mut |state, _procs: &[PingPong]| {
                cuts += 1;
                if cuts == 2 {
                    captured = Some(state.clone());
                    CheckpointControl::Stop
                } else {
                    CheckpointControl::Continue
                }
            });
        assert!(stopped.is_none(), "run must be abandoned at the second cut");
        let state = captured.expect("second checkpoint reached");
        assert!(state.events < reference.events, "cut must be strictly mid-run");
        // Resume: process state travels with the cut (here, the logs).
        let (resumed, resumed_procs) =
            Simulation::new(NetModel::paper_scale(), killed_procs).resume(state);
        assert_eq!(resumed.wall.to_bits(), reference.wall.to_bits());
        assert_eq!(resumed.events, reference.events);
        assert_eq!(resumed.ranks, reference.ranks);
        assert_eq!(resumed_procs[0].log, ref_procs[0].log);
        assert_eq!(resumed_procs[1].log, ref_procs[1].log);
    }

    #[test]
    fn wakes_survive_a_cut() {
        // A pending Wake must be serialized in the cut and fire after resume.
        let mut captured: Option<SimState<()>> = None;
        let (stopped, procs) = Simulation::new(NetModel::free(), vec![Waker { woke_at: -1.0 }])
            .run_checkpointed(1.0, &mut |state, _procs: &[Waker]| {
                captured = Some(state.clone());
                CheckpointControl::Stop
            });
        assert!(stopped.is_none());
        assert_eq!(procs[0].woke_at, -1.0, "wake must not have fired before the cut");
        let state = captured.unwrap();
        assert!(state.pending.iter().any(|p| matches!(p.ev, Event::Wake(42))));
        let (report, procs) = Simulation::new(NetModel::free(), procs).resume(state);
        assert!((procs[0].woke_at - 5.0).abs() < 1e-12);
        assert!((report.ranks[0].idle - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "checkpoint interval")]
    fn zero_checkpoint_interval_rejected() {
        let procs = vec![Charger];
        let _ = Simulation::new(NetModel::free(), procs)
            .run_checkpointed(0.0, &mut |_, _| CheckpointControl::Continue);
    }

    #[test]
    fn killed_rank_drops_pending_and_future_events() {
        // Kill rank 1 before the first message can be delivered: the
        // ping-pong dies silently after rank 0's one send.
        let procs = (0..2).map(|_| PingPong { rounds: 6, log: Vec::new() }).collect::<Vec<_>>();
        let (report, procs) =
            Simulation::new(NetModel::paper_scale(), procs).with_rank_deaths(vec![(1, 0.0)]).run();
        assert_eq!(report.rank_deaths, vec![(1, 0.0)]);
        assert!(procs[1].log.is_empty(), "dead rank must execute nothing");
        assert!(procs[0].log.is_empty(), "no reply can come back from a dead rank");
        // Rank 1's Start and the in-flight message both vanished.
        assert_eq!(report.dropped_events, 2, "dropped = {}", report.dropped_events);
        assert_eq!(report.ranks[1].events, 0);
        assert_eq!(report.ranks[1].msgs_recv, 0);
    }

    #[test]
    fn in_flight_message_from_dead_sender_is_lost() {
        // Rank 0 posts its send at t=1e-3 and is killed at that same instant,
        // while the message is still in transit; fail-stop means the send
        // dies with it (deaths apply before the next event is delivered).
        let procs = (0..2).map(|_| PingPong { rounds: 6, log: Vec::new() }).collect::<Vec<_>>();
        let (report, procs) =
            Simulation::new(NetModel::paper_scale(), procs).with_rank_deaths(vec![(0, 1e-3)]).run();
        assert!(procs[1].log.is_empty(), "message from a dead sender must be dropped");
        assert!(report.dropped_events >= 1);
        assert_eq!(report.ranks[1].msgs_recv, 0);
    }

    #[test]
    fn empty_death_schedule_is_bit_identical() {
        let (plain, plain_procs) = run_pingpong(10);
        let procs = (0..2).map(|_| PingPong { rounds: 10, log: Vec::new() }).collect::<Vec<_>>();
        let (fault, fault_procs) =
            Simulation::new(NetModel::paper_scale(), procs).with_rank_deaths(Vec::new()).run();
        assert_eq!(plain.wall.to_bits(), fault.wall.to_bits());
        assert_eq!(plain.events, fault.events);
        assert_eq!(plain.ranks, fault.ranks);
        assert_eq!(fault.dropped_events, 0);
        assert!(fault.rank_deaths.is_empty());
        assert_eq!(plain_procs[0].log, fault_procs[0].log);
    }

    #[test]
    fn death_after_the_run_ends_changes_nothing() {
        let (plain, _) = run_pingpong(10);
        let procs = (0..2).map(|_| PingPong { rounds: 10, log: Vec::new() }).collect::<Vec<_>>();
        let (fault, _) =
            Simulation::new(NetModel::paper_scale(), procs).with_rank_deaths(vec![(1, 1e9)]).run();
        // The death time is past the last event, so it is never applied.
        assert_eq!(plain.events, fault.events);
        assert_eq!(plain.ranks, fault.ranks);
        assert!(fault.rank_deaths.is_empty());
    }

    #[test]
    fn resume_after_death_is_bit_identical_and_death_not_reapplied() {
        // Reference: uninterrupted faulty run (kill rank 1 mid-stream).
        let deaths = vec![(1usize, 2.5e-3)];
        let procs = (0..2).map(|_| PingPong { rounds: 12, log: Vec::new() }).collect::<Vec<_>>();
        let (reference, ref_procs) =
            Simulation::new(NetModel::paper_scale(), procs).with_rank_deaths(deaths.clone()).run();
        assert_eq!(reference.rank_deaths, vec![(1, 2.5e-3)]);
        // Checkpointed variant: stop at a cut past the death, then resume.
        let procs = (0..2).map(|_| PingPong { rounds: 12, log: Vec::new() }).collect::<Vec<_>>();
        let mut captured: Option<SimState<u32>> = None;
        let (stopped, killed_procs) = Simulation::new(NetModel::paper_scale(), procs)
            .with_rank_deaths(deaths.clone())
            .run_checkpointed(3e-3, &mut |state, _procs: &[PingPong]| {
                captured = Some(state.clone());
                CheckpointControl::Stop
            });
        assert!(stopped.is_none());
        let state = captured.expect("a cut fired");
        assert_eq!(state.dead, vec![(1, 2.5e-3)], "cut must record the applied death");
        let (resumed, resumed_procs) = Simulation::new(NetModel::paper_scale(), killed_procs)
            .with_rank_deaths(deaths)
            .resume(state);
        assert_eq!(resumed.wall.to_bits(), reference.wall.to_bits());
        assert_eq!(resumed.events, reference.events);
        assert_eq!(resumed.ranks, reference.ranks);
        assert_eq!(resumed.rank_deaths, reference.rank_deaths);
        assert_eq!(resumed.dropped_events, reference.dropped_events);
        assert_eq!(resumed_procs[0].log, ref_procs[0].log);
        assert_eq!(resumed_procs[1].log, ref_procs[1].log);
    }

    #[test]
    #[should_panic(expected = "unknown rank")]
    fn death_for_unknown_rank_rejected() {
        let procs = vec![Charger];
        let _ = Simulation::new(NetModel::free(), procs).with_rank_deaths(vec![(7, 0.0)]);
    }

    #[test]
    fn sim_with_512_ranks_runs() {
        struct Noop;
        impl Process<u8> for Noop {
            fn on_event(&mut self, ev: Event<u8>, ctx: &mut dyn Context<u8>) {
                if matches!(ev, Event::Start) {
                    ctx.charge_compute(1e-6 * (ctx.rank() as f64 + 1.0));
                }
            }
        }
        let procs = (0..512).map(|_| Noop).collect::<Vec<_>>();
        let (report, _) = Simulation::new(NetModel::paper_scale(), procs).run();
        assert_eq!(report.ranks.len(), 512);
        assert!((report.wall - 512e-6).abs() < 1e-12);
    }
}
