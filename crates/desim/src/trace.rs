//! Virtual-time utilization timelines.
//!
//! When tracing is enabled, every charge a rank makes (compute, I/O,
//! communication) is accumulated into fixed-width virtual-time buckets.
//! The result is a utilization heat map over (rank, time) — the direct
//! visualization of load imbalance and of §8's "processor starvation".

use serde::{Deserialize, Serialize};

/// What a charge was for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargeKind {
    Compute,
    Io,
    Comm,
}

/// Per-rank, per-bucket busy time, split by kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timeline {
    pub bucket_width: f64,
    pub n_ranks: usize,
    /// `[rank][bucket] = [compute, io, comm]` busy seconds.
    buckets: Vec<Vec<[f64; 3]>>,
}

impl Timeline {
    pub fn new(n_ranks: usize, bucket_width: f64) -> Self {
        assert!(bucket_width > 0.0 && bucket_width.is_finite());
        Timeline { bucket_width, n_ranks, buckets: vec![Vec::new(); n_ranks] }
    }

    /// Record a charge of `dt` seconds starting at `t0` on `rank`,
    /// distributing it across the buckets it spans.
    pub fn add(&mut self, rank: usize, kind: ChargeKind, t0: f64, dt: f64) {
        debug_assert!(rank < self.n_ranks);
        if dt <= 0.0 {
            return;
        }
        let k = match kind {
            ChargeKind::Compute => 0,
            ChargeKind::Io => 1,
            ChargeKind::Comm => 2,
        };
        let mut t = t0;
        let end = t0 + dt;
        while t < end {
            // Nudge the bucket lookup: a boundary time like 0.03 divides by
            // a width of 0.01 to 2.999…, which would re-select the bucket
            // just finished and loop forever.
            let b = ((t / self.bucket_width) + 1e-9) as usize;
            let mut bucket_end = (b + 1) as f64 * self.bucket_width;
            if bucket_end <= t {
                bucket_end = (b + 2) as f64 * self.bucket_width;
            }
            let span = (end.min(bucket_end) - t).max(0.0);
            let row = &mut self.buckets[rank];
            if row.len() <= b {
                row.resize(b + 1, [0.0; 3]);
            }
            row[b][k] += span;
            t = bucket_end;
        }
    }

    /// Number of buckets in the longest rank row.
    pub fn n_buckets(&self) -> usize {
        self.buckets.iter().map(|r| r.len()).max().unwrap_or(0)
    }

    /// Busy fraction (all kinds) of one (rank, bucket) cell, in `[0, 1+ε]`.
    pub fn utilization(&self, rank: usize, bucket: usize) -> f64 {
        self.buckets[rank]
            .get(bucket)
            .map(|b| (b[0] + b[1] + b[2]) / self.bucket_width)
            .unwrap_or(0.0)
    }

    /// Mean utilization across ranks for one bucket.
    pub fn mean_utilization(&self, bucket: usize) -> f64 {
        (0..self.n_ranks).map(|r| self.utilization(r, bucket)).sum::<f64>() / self.n_ranks as f64
    }

    /// ASCII heat map: one row per rank, one column per bucket (columns are
    /// merged down to at most `max_cols`). `#` ≈ fully busy, space = idle.
    pub fn render(&self, max_cols: usize) -> String {
        let nb = self.n_buckets().max(1);
        let merge = nb.div_ceil(max_cols.max(1));
        let cols = nb.div_ceil(merge);
        let shades = [' ', '.', ':', 'x', '#'];
        let mut out = String::new();
        for rank in 0..self.n_ranks {
            let mut row = String::with_capacity(cols + 8);
            row.push_str(&format!("{rank:>4} |"));
            for c in 0..cols {
                let mut u = 0.0;
                for b in c * merge..((c + 1) * merge).min(nb) {
                    u += self.utilization(rank, b);
                }
                u /= merge as f64;
                let level =
                    ((u * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1);
                row.push(shades[level]);
            }
            row.push('|');
            out.push_str(&row);
            out.push('\n');
        }
        out
    }

    /// Fraction of total (rank × wall) area that was idle — the headline
    /// starvation number.
    pub fn idle_fraction(&self) -> f64 {
        let nb = self.n_buckets();
        if nb == 0 {
            return 0.0;
        }
        let total = (nb * self.n_ranks) as f64 * self.bucket_width;
        let busy: f64 =
            self.buckets.iter().flat_map(|r| r.iter()).map(|b| b[0] + b[1] + b[2]).sum();
        (1.0 - busy / total).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_splits_across_buckets() {
        let mut t = Timeline::new(2, 1.0);
        // 2.5 s of compute starting at t = 0.75 spans buckets 0..=3.
        t.add(0, ChargeKind::Compute, 0.75, 2.5);
        assert!((t.utilization(0, 0) - 0.25).abs() < 1e-12);
        assert!((t.utilization(0, 1) - 1.0).abs() < 1e-12);
        assert!((t.utilization(0, 2) - 1.0).abs() < 1e-12);
        assert!((t.utilization(0, 3) - 0.25).abs() < 1e-12);
        assert_eq!(t.utilization(1, 1), 0.0);
    }

    #[test]
    fn kinds_accumulate_independently_but_sum_in_utilization() {
        let mut t = Timeline::new(1, 1.0);
        t.add(0, ChargeKind::Compute, 0.0, 0.3);
        t.add(0, ChargeKind::Io, 0.0, 0.2);
        t.add(0, ChargeKind::Comm, 0.0, 0.1);
        assert!((t.utilization(0, 0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn idle_fraction_complementary() {
        let mut t = Timeline::new(2, 1.0);
        t.add(0, ChargeKind::Compute, 0.0, 1.0);
        // Rank 1 idle; one bucket total → area 2, busy 1.
        assert!((t.idle_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn render_shapes() {
        let mut t = Timeline::new(2, 1.0);
        t.add(0, ChargeKind::Compute, 0.0, 4.0);
        t.add(1, ChargeKind::Io, 2.0, 2.0);
        let map = t.render(80);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("####"));
        assert!(lines[1].contains("  ##"));
    }

    #[test]
    fn render_merges_columns() {
        let mut t = Timeline::new(1, 0.01);
        t.add(0, ChargeKind::Compute, 0.0, 10.0); // 1000 buckets
        let map = t.render(40);
        let body = map.lines().next().unwrap();
        let cells = body.split('|').nth(1).unwrap();
        assert!(cells.len() <= 40, "{} cols", cells.len());
        assert!(cells.chars().all(|c| c == '#'));
    }

    #[test]
    fn zero_length_charge_is_noop() {
        let mut t = Timeline::new(1, 1.0);
        t.add(0, ChargeKind::Io, 5.0, 0.0);
        assert_eq!(t.n_buckets(), 0);
    }
}
