//! Virtual-time utilization timelines.
//!
//! When tracing is enabled, every charge a rank makes (compute, I/O,
//! communication) — and, since the observability layer landed, every idle
//! gap the scheduler observes — is accumulated into fixed-width
//! virtual-time buckets. The result is a utilization heat map over
//! (rank, time) — the direct visualization of load imbalance and of §8's
//! "processor starvation".
//!
//! The implementation lives in `streamline-obs` so the threaded runtime and
//! the serve stack can fill the same structure with wall-clock spans;
//! these aliases keep the historical desim names working.

pub use streamline_obs::Phase as ChargeKind;
pub use streamline_obs::PhaseTimeline as Timeline;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_splits_across_buckets() {
        let mut t = Timeline::new(2, 1.0);
        // 2.5 s of compute starting at t = 0.75 spans buckets 0..=3.
        t.add(0, ChargeKind::Compute, 0.75, 2.5);
        assert!((t.utilization(0, 0) - 0.25).abs() < 1e-12);
        assert!((t.utilization(0, 1) - 1.0).abs() < 1e-12);
        assert!((t.utilization(0, 2) - 1.0).abs() < 1e-12);
        assert!((t.utilization(0, 3) - 0.25).abs() < 1e-12);
        assert_eq!(t.utilization(1, 1), 0.0);
    }

    #[test]
    fn kinds_accumulate_independently_but_sum_in_utilization() {
        let mut t = Timeline::new(1, 1.0);
        t.add(0, ChargeKind::Compute, 0.0, 0.3);
        t.add(0, ChargeKind::Io, 0.0, 0.2);
        t.add(0, ChargeKind::Comm, 0.0, 0.1);
        assert!((t.utilization(0, 0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn idle_fraction_complementary() {
        let mut t = Timeline::new(2, 1.0);
        t.add(0, ChargeKind::Compute, 0.0, 1.0);
        // Rank 1 idle; one bucket total → area 2, busy 1.
        assert!((t.idle_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recorded_idle_does_not_count_as_busy() {
        let mut t = Timeline::new(2, 1.0);
        t.add(0, ChargeKind::Compute, 0.0, 1.0);
        t.add(1, ChargeKind::Idle, 0.0, 1.0);
        assert!((t.idle_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(t.utilization(1, 0), 0.0);
    }

    #[test]
    fn render_shapes() {
        let mut t = Timeline::new(2, 1.0);
        t.add(0, ChargeKind::Compute, 0.0, 4.0);
        t.add(1, ChargeKind::Io, 2.0, 2.0);
        let map = t.render(80);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("####"));
        assert!(lines[1].contains("  ##"));
    }

    #[test]
    fn render_merges_columns() {
        let mut t = Timeline::new(1, 0.01);
        t.add(0, ChargeKind::Compute, 0.0, 10.0); // 1000 buckets
        let map = t.render(40);
        let body = map.lines().next().unwrap();
        let cells = body.split('|').nth(1).unwrap();
        assert!(cells.len() <= 40, "{} cols", cells.len());
        assert!(cells.chars().all(|c| c == '#'));
    }

    #[test]
    fn zero_length_charge_is_noop() {
        let mut t = Timeline::new(1, 1.0);
        t.add(0, ChargeKind::Io, 5.0, 0.0);
        assert_eq!(t.n_buckets(), 0);
    }
}
