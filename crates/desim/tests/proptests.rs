//! Property-based tests for the discrete-event simulation: determinism,
//! causality and conservation under randomized workloads.

use proptest::prelude::*;
use streamline_desim::{Context, Event, NetModel, Process, SimReport, Simulation};

/// A randomized token-passing process: each rank forwards a hop-counted
/// token along a random (but fixed) route, charging random compute.
#[derive(Clone)]
struct Router {
    route: Vec<usize>,
    costs: Vec<f64>,
    seen: Vec<(usize, f64)>, // (hop, arrival virtual time)
}

impl Process<u32> for Router {
    fn on_event(&mut self, ev: Event<u32>, ctx: &mut dyn Context<u32>) {
        match ev {
            Event::Start => {
                if ctx.rank() == 0 && !self.route.is_empty() {
                    ctx.send(self.route[0], 0, 64);
                }
            }
            Event::Message { msg: hop, .. } => {
                self.seen.push((hop as usize, ctx.now()));
                let cost = self.costs[(hop as usize) % self.costs.len()];
                ctx.charge_compute(cost);
                let next = hop as usize + 1;
                if next < self.route.len() {
                    ctx.send(self.route[next], next as u32, 64 + next * 8);
                } else {
                    ctx.stop_all();
                }
            }
            Event::Wake(_) => {}
        }
    }
}

fn run_route(n_ranks: usize, route: &[usize], costs: &[f64]) -> (SimReport, Vec<Router>) {
    let procs = (0..n_ranks)
        .map(|_| Router { route: route.to_vec(), costs: costs.to_vec(), seen: Vec::new() })
        .collect();
    Simulation::new(NetModel::paper_scale(), procs).run()
}

proptest! {
    /// The simulation is a pure function: identical inputs, identical
    /// reports and identical per-rank observation logs.
    #[test]
    fn deterministic_under_random_routes(
        n_ranks in 2usize..9,
        raw_route in prop::collection::vec(0usize..8, 1..30),
        costs in prop::collection::vec(1e-6f64..1e-3, 1..5),
    ) {
        let route: Vec<usize> = raw_route.iter().map(|r| r % n_ranks).collect();
        let (r1, p1) = run_route(n_ranks, &route, &costs);
        let (r2, p2) = run_route(n_ranks, &route, &costs);
        prop_assert_eq!(r1.wall, r2.wall);
        prop_assert_eq!(r1.events, r2.events);
        for (a, b) in p1.iter().zip(p2.iter()) {
            prop_assert_eq!(&a.seen, &b.seen);
        }
    }

    /// Causality: along the token's route, arrival times are strictly
    /// increasing (each hop adds latency + compute).
    #[test]
    fn token_arrivals_monotone(
        n_ranks in 2usize..9,
        raw_route in prop::collection::vec(0usize..8, 2..30),
    ) {
        let route: Vec<usize> = raw_route.iter().map(|r| r % n_ranks).collect();
        let (_, procs) = run_route(n_ranks, &route, &[1e-5]);
        let mut arrivals: Vec<(usize, f64)> =
            procs.iter().flat_map(|p| p.seen.iter().copied()).collect();
        arrivals.sort_by_key(|&(hop, _)| hop);
        // Every hop was observed exactly once.
        prop_assert_eq!(arrivals.len(), route.len());
        for w in arrivals.windows(2) {
            prop_assert!(w[1].1 > w[0].1, "hop {} at {} not after hop {} at {}",
                w[1].0, w[1].1, w[0].0, w[0].1);
        }
    }

    /// Message conservation: sends equal receives when the run drains.
    #[test]
    fn sends_equal_receives(
        n_ranks in 2usize..9,
        raw_route in prop::collection::vec(0usize..8, 1..30),
    ) {
        let route: Vec<usize> = raw_route.iter().map(|r| r % n_ranks).collect();
        let (report, _) = run_route(n_ranks, &route, &[1e-5]);
        let sent: u64 = report.ranks.iter().map(|m| m.msgs_sent).sum();
        let recv: u64 = report.ranks.iter().map(|m| m.msgs_recv).sum();
        prop_assert_eq!(sent, recv);
        let bytes_sent: u64 = report.ranks.iter().map(|m| m.bytes_sent).sum();
        let bytes_recv: u64 = report.ranks.iter().map(|m| m.bytes_recv).sum();
        prop_assert_eq!(bytes_sent, bytes_recv);
    }

    /// Wall clock equals the maximum across ranks of (busy + idle) time
    /// observed by any rank that did work last.
    #[test]
    fn wall_at_least_any_rank_busy_time(
        n_ranks in 2usize..9,
        raw_route in prop::collection::vec(0usize..8, 1..30),
        costs in prop::collection::vec(1e-6f64..1e-3, 1..5),
    ) {
        let route: Vec<usize> = raw_route.iter().map(|r| r % n_ranks).collect();
        let (report, _) = run_route(n_ranks, &route, &costs);
        for m in &report.ranks {
            prop_assert!(report.wall + 1e-12 >= m.busy(), "wall {} < busy {}", report.wall, m.busy());
        }
    }
}
