//! Property-based tests for streaming ingestion and termination detection
//! (ISSUE 9): the closed-set and frontier detectors must be
//! indistinguishable on any closed workload, and any open-loop arrival
//! schedule — bursts, empty epochs, arrivals landing mid-integration —
//! must conserve work exactly, with a fail-stop rank death underneath.

use proptest::prelude::*;
use streamline_core::{
    run_simulated_detailed, run_simulated_open_detailed, Algorithm, DetectorKind, MemoryBudget,
    RankChaos, RunConfig, SeedSource,
};
use streamline_field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_integrate::{Streamline, StreamlineStatus, Termination};

fn tiny_dataset() -> Dataset {
    let mut dcfg = DatasetConfig::tiny();
    dcfg.blocks_per_axis = [2, 2, 2];
    dcfg.cells_per_block = [6, 6, 6];
    Dataset::thermal_hydraulics(dcfg)
}

fn config(algo: Algorithm, n_procs: usize, max_steps: u64) -> RunConfig {
    let mut cfg = RunConfig::new(algo, n_procs);
    cfg.limits.max_steps = max_steps;
    cfg.memory = MemoryBudget::unlimited();
    cfg
}

/// (completed, unavailable, rank-lost) — every record must be terminated.
fn classify(finished: &[Streamline]) -> (u64, u64, u64) {
    let (mut completed, mut unavailable, mut lost) = (0u64, 0u64, 0u64);
    for sl in finished {
        match sl.status {
            StreamlineStatus::Terminated(Termination::BlockUnavailable) => unavailable += 1,
            StreamlineStatus::Terminated(Termination::RankLost) => lost += 1,
            StreamlineStatus::Terminated(_) => completed += 1,
            StreamlineStatus::Active => panic!("active streamline in drained output"),
        }
    }
    (completed, unavailable, lost)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Swapping the termination detector is invisible on closed workloads:
    /// bit-identical streamlines and an identical event history, for every
    /// driver, on randomized (rank count, seed count, step budget) cases.
    #[test]
    fn detectors_agree_bit_for_bit_on_random_closed_workloads(
        n_procs in 2usize..6,
        n_seeds in 0usize..40,
        max_steps in (0usize..3).prop_map(|i| [60u64, 150, 300][i]),
    ) {
        let ds = tiny_dataset();
        let seeds = ds.seeds_with_count(Seeding::Sparse, n_seeds);
        for algo in Algorithm::ALL {
            let mut cfg = config(algo, n_procs, max_steps);
            cfg.detector = DetectorKind::ClosedSet;
            let (rc, fc) = run_simulated_detailed(&ds, &seeds, &cfg);
            cfg.detector = DetectorKind::Frontier;
            let (rf, ff) = run_simulated_detailed(&ds, &seeds, &cfg);
            prop_assert_eq!(fc, ff, "{:?}: detector changed the science", algo);
            prop_assert_eq!(rc.wall.to_bits(), rf.wall.to_bits(), "{:?}", algo);
            prop_assert_eq!(rc.msgs, rf.msgs, "{:?}", algo);
            prop_assert_eq!(rc.bytes_sent, rf.bytes_sent, "{:?}", algo);
            prop_assert_eq!(rc.events, rf.events, "{:?}", algo);
            prop_assert_eq!(rc.terminated, n_seeds as u64, "{:?}", algo);
        }
    }

    /// Any open-loop arrival schedule conserves work exactly under a
    /// fail-stop rank death: one record per ingested seed, and
    /// `completed + unavailable + rank_lost == ingested`. Schedules
    /// include bursts (several epochs one event-gap apart), empty epochs,
    /// and arrivals after earlier epochs have already drained.
    #[test]
    fn random_open_schedules_conserve_exactly_under_chaos(
        algo_ix in 0usize..4,
        base_n in 0usize..12,
        epoch_shapes in prop::collection::vec((1u32..40, 0usize..8), 1..4),
        kill_rank in 0usize..4,
        kill_tick in 1u32..40,
    ) {
        let ds = tiny_dataset();
        let algo = Algorithm::ALL[algo_ix];
        let base = ds.seeds_with_count(Seeding::Sparse, base_n);
        let extra_total: usize = epoch_shapes.iter().map(|&(_, n)| n).sum();
        let extra = ds.seeds_with_count(Seeding::Dense, extra_total);
        let mut at = 0.0f64;
        let mut used = 0usize;
        let mut arrivals = Vec::with_capacity(epoch_shapes.len());
        for &(gap_ticks, n) in &epoch_shapes {
            at += f64::from(gap_ticks) * 1e-5;
            arrivals.push((at, extra.points[used..used + n].to_vec()));
            used += n;
        }
        let source = SeedSource::new(&base, arrivals).expect("monotone by construction");
        let total = source.total_seeds();

        let mut cfg = config(algo, 4, 150);
        cfg.detector = DetectorKind::Frontier;
        cfg.rank_chaos = Some(RankChaos::one_kill(kill_rank, f64::from(kill_tick) * 1e-5));
        let (report, finished) = run_simulated_open_detailed(&ds, &source, &cfg);
        prop_assert_eq!(finished.len(), total, "{:?}: one record per ingested seed", algo);
        let (completed, unavailable, lost) = classify(&finished);
        prop_assert_eq!(
            completed + unavailable + lost, total as u64,
            "{:?}: conservation broke (completed {} unavailable {} lost {})",
            algo, completed, unavailable, lost
        );
        prop_assert_eq!(report.terminated, total as u64, "{:?}", algo);
        prop_assert_eq!(report.ingest_epochs as usize, epoch_shapes.len() + 1, "{:?}", algo);
    }
}
