//! The Hybrid slave process (§4.3, Algorithm 1).
//!
//! "Each slave continuously advances streamlines that reside in blocks that
//! are loaded. ... blocks are cached to the extent permitted by main memory.
//! When the slave can advance no more streamlines or is out of work, it
//! sends a status message to the master and waits for further instruction."
//! Blocks are loaded only on the master's say-so (Load / Assign-unloaded) —
//! the slave's own autonomy is limited to honouring Send-hints.

use crate::config::MemoryBudget;
use crate::ingest::EpochMap;
use crate::msg::{Command, Msg, SlaveStatus};
use crate::termination::{AnyDetector, DetectorKind, TerminationDetector};
use crate::workspace::{BlockExit, Workspace, WorkspaceSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use streamline_desim::{Context, Event, HeartbeatMonitor, Process};
use streamline_field::block::BlockId;
use streamline_integrate::{Streamline, StreamlineId, Termination};
use streamline_iosim::StoreError;

/// Resilient mode only: periodic heartbeat-and-sweep tick.
const WAKE_BEAT: u64 = 10;

/// Per-rank fail-stop resilience state for a Hybrid slave: a failure
/// detector over its master (MasterBeat and every command are proof of
/// life) and Beat traffic back so the master's detector sees this slave
/// between statuses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaveResil {
    /// Virtual seconds between heartbeat ticks.
    pub heartbeat_period: f64,
    /// Ticks stop re-arming past this virtual time, bounding the event
    /// count of any death schedule.
    pub beat_deadline: f64,
    /// Failure detector over the master.
    pub monitor: HeartbeatMonitor,
    /// A heartbeat tick is armed.
    pub beat_armed: bool,
    /// The master went silent past the timeout: the group is headless. The
    /// slave keeps integrating what it holds (completions stay durable) but
    /// no new work can arrive; the run ends by natural drain and the driver
    /// reports a typed `MasterLost` outcome instead of hanging.
    pub master_lost: bool,
    /// `(rank, virtual time)` of the master death if this slave's monitor
    /// detected it.
    pub suspected_at: Vec<(usize, f64)>,
}

impl SlaveResil {
    fn new(heartbeat_period: f64, suspect_timeout: f64, beat_deadline: f64) -> Self {
        SlaveResil {
            heartbeat_period,
            beat_deadline,
            monitor: HeartbeatMonitor::new(suspect_timeout),
            beat_armed: false,
            master_lost: false,
            suspected_at: Vec::new(),
        }
    }
}

/// Serializable image of a [`SlaveProc`] mid-run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaveSnapshot {
    pub ws: WorkspaceSnapshot,
    pub parked: Vec<(BlockId, Vec<Streamline>)>,
    pub finished: Vec<Streamline>,
    pub last_status_terminated: u64,
    pub sent_idle_status: bool,
    pub failed_oom: bool,
    pub terminated_cmd_seen: bool,
    pub sent_handoffs: u64,
    pub sent_statuses: u64,
    pub load_cmd_hits: u64,
    pub load_cmd_misses: u64,
    pub cmds_processed: u64,
    pub failed_blocks: Vec<BlockId>,
    #[serde(default)]
    pub seen: Vec<u32>,
    #[serde(default)]
    pub pingponged: Vec<u32>,
    #[serde(default)]
    pub pingpong_times: Vec<f64>,
    /// Absent in pre-resilience snapshots.
    #[serde(default)]
    pub resil: Option<SlaveResil>,
    /// Absent in pre-ingestion snapshots (reconstructed on restore).
    #[serde(default)]
    pub detector: Option<AnyDetector>,
}

/// One Hybrid slave rank.
pub struct SlaveProc {
    rank: usize,
    master: usize,
    ws: Workspace,
    /// Streamlines waiting per block (resident blocks' entries are
    /// advanceable; others are parked until a Load/Send decision).
    parked: BTreeMap<BlockId, Vec<Streamline>>,
    pub finished: Vec<Streamline>,
    memory: MemoryBudget,
    comm_geometry: bool,
    h0: f64,
    /// Terminated count included in the last status we sent (to avoid
    /// spamming identical statuses).
    last_status_terminated: u64,
    sent_idle_status: bool,
    pub failed_oom: bool,
    pub terminated_cmd_seen: bool,
    /// Diagnostics: streamline migrations sent / statuses sent.
    pub sent_handoffs: u64,
    pub sent_statuses: u64,
    /// Diagnostics: Load commands that were already resident vs not.
    pub load_cmd_hits: u64,
    pub load_cmd_misses: u64,
    /// Commands processed so far (acknowledged in every status).
    cmds_processed: u64,
    /// Blocks whose load exhausted the retry budget (cumulative; reported
    /// in every status so the master can quarantine them).
    failed_blocks: BTreeSet<BlockId>,
    /// Streamline ids this rank has ever owned (assigned or handed in).
    seen: BTreeSet<u32>,
    /// Ids that returned after leaving — ping-pong streamlines.
    pingponged: BTreeSet<u32>,
    /// Virtual times at which each ping-pong was first detected.
    pingpong_times: Vec<f64>,
    /// Fail-stop resilience machinery; `None` outside rank-chaos runs so
    /// fault-free schedules are untouched.
    resil: Option<SlaveResil>,
    /// Per-epoch retirement ledger — slaves do the integration in this
    /// driver, so frontier folding reads slave ledgers (the masters only
    /// gate termination on ingest progress).
    detector: AnyDetector,
    /// Streamline id → ingest epoch (identity for closed runs).
    emap: EpochMap,
    /// `finished` entries already retired into the ledger.
    retired_seen: usize,
}

impl SlaveProc {
    pub fn new(
        rank: usize,
        master: usize,
        ws: Workspace,
        memory: MemoryBudget,
        comm_geometry: bool,
        h0: f64,
    ) -> Self {
        SlaveProc {
            rank,
            master,
            ws,
            parked: BTreeMap::new(),
            finished: Vec::new(),
            memory,
            comm_geometry,
            h0,
            last_status_terminated: 0,
            sent_idle_status: false,
            failed_oom: false,
            terminated_cmd_seen: false,
            sent_handoffs: 0,
            sent_statuses: 0,
            load_cmd_hits: 0,
            load_cmd_misses: 0,
            cmds_processed: 0,
            failed_blocks: BTreeSet::new(),
            seen: BTreeSet::new(),
            pingponged: BTreeSet::new(),
            pingpong_times: Vec::new(),
            resil: None,
            detector: AnyDetector::new(DetectorKind::ClosedSet),
            emap: EpochMap::default(),
            retired_seen: 0,
        }
    }

    /// Switch this slave into open-loop mode: retirements are charged to
    /// ingest epochs recovered from streamline ids via `emap`.
    pub fn with_ingest(mut self, kind: DetectorKind, emap: EpochMap) -> Self {
        self.detector = AnyDetector::new(kind);
        self.emap = emap;
        self
    }

    /// The per-rank retirement ledger (for driver-level frontier folding).
    pub fn detector(&self) -> &AnyDetector {
        &self.detector
    }

    /// Charge terminations since the last call to the epoch ledger.
    fn note_retirements(&mut self, now: f64) {
        if self.retired_seen == self.finished.len() {
            return;
        }
        let mut by_epoch: BTreeMap<u32, u64> = BTreeMap::new();
        for sl in &self.finished[self.retired_seen..] {
            *by_epoch.entry(self.emap.epoch_of(sl.id)).or_default() += 1;
        }
        self.retired_seen = self.finished.len();
        for (epoch, n) in by_epoch {
            self.detector.retire(epoch, n, now);
        }
    }

    /// Switch this slave into resilient mode (rank-chaos runs only).
    pub fn with_resilience(
        mut self,
        heartbeat_period: f64,
        suspect_timeout: f64,
        beat_deadline: f64,
    ) -> Self {
        self.resil = Some(SlaveResil::new(heartbeat_period, suspect_timeout, beat_deadline));
        self
    }

    /// The master went silent past the suspicion timeout.
    pub fn master_lost(&self) -> bool {
        self.resil.as_ref().is_some_and(|r| r.master_lost)
    }

    /// Deaths this slave's own failure detector observed, as
    /// `(rank, virtual suspicion time)`.
    pub fn suspected_at(&self) -> &[(usize, f64)] {
        self.resil.as_ref().map_or(&[], |r| r.suspected_at.as_slice())
    }

    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }

    /// Ids that returned to this rank after leaving it.
    pub fn pingponged(&self) -> &BTreeSet<u32> {
        &self.pingponged
    }

    /// Virtual times of first ping-pong detection, in arrival order.
    pub fn pingpong_times(&self) -> &[f64] {
        &self.pingpong_times
    }

    /// First ownership or return of a streamline id on this rank; a return
    /// is a ping-pong, recorded once per id.
    fn note_arrival(&mut self, id: StreamlineId, now: f64) {
        if !self.seen.insert(id.0) && self.pingponged.insert(id.0) {
            self.pingpong_times.push(now);
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Capture this rank's mid-run state for a checkpoint.
    pub fn snapshot(&self) -> SlaveSnapshot {
        SlaveSnapshot {
            ws: self.ws.snapshot(),
            parked: self.parked.iter().map(|(&b, v)| (b, v.clone())).collect(),
            finished: self.finished.clone(),
            last_status_terminated: self.last_status_terminated,
            sent_idle_status: self.sent_idle_status,
            failed_oom: self.failed_oom,
            terminated_cmd_seen: self.terminated_cmd_seen,
            sent_handoffs: self.sent_handoffs,
            sent_statuses: self.sent_statuses,
            load_cmd_hits: self.load_cmd_hits,
            load_cmd_misses: self.load_cmd_misses,
            cmds_processed: self.cmds_processed,
            failed_blocks: self.failed_blocks.iter().copied().collect(),
            seen: self.seen.iter().copied().collect(),
            pingponged: self.pingponged.iter().copied().collect(),
            pingpong_times: self.pingpong_times.clone(),
            resil: self.resil.clone(),
            detector: Some(self.detector.clone()),
        }
    }

    /// Restore a snapshot onto a freshly built rank (same config/dataset).
    pub fn restore(&mut self, snap: &SlaveSnapshot) -> Result<(), StoreError> {
        self.ws.restore(&snap.ws)?;
        self.parked = snap.parked.iter().cloned().collect();
        self.finished = snap.finished.clone();
        self.last_status_terminated = snap.last_status_terminated;
        self.sent_idle_status = snap.sent_idle_status;
        self.failed_oom = snap.failed_oom;
        self.terminated_cmd_seen = snap.terminated_cmd_seen;
        self.sent_handoffs = snap.sent_handoffs;
        self.sent_statuses = snap.sent_statuses;
        self.load_cmd_hits = snap.load_cmd_hits;
        self.load_cmd_misses = snap.load_cmd_misses;
        self.cmds_processed = snap.cmds_processed;
        self.failed_blocks = snap.failed_blocks.iter().copied().collect();
        self.seen = snap.seen.iter().copied().collect();
        self.pingponged = snap.pingponged.iter().copied().collect();
        self.pingpong_times = snap.pingpong_times.clone();
        self.resil = snap.resil.clone();
        match &snap.detector {
            Some(d) => self.detector = d.clone(),
            None => {
                // Pre-ingestion snapshot: rebuild the closed-run ledger
                // from what this rank has finished.
                let mut d = AnyDetector::new(DetectorKind::ClosedSet);
                d.retire(0, snap.finished.len() as u64, 0.0);
                self.detector = d;
            }
        }
        self.retired_seen = self.finished.len();
        Ok(())
    }

    fn arm_beat(&mut self, ctx: &mut dyn Context<Msg>) {
        if let Some(r) = self.resil.as_mut() {
            if !r.beat_armed && !r.master_lost {
                r.beat_armed = true;
                ctx.wake_after(r.heartbeat_period, WAKE_BEAT);
            }
        }
    }

    /// Heartbeat tick: sweep the master watchdog, beat back so the master's
    /// detector sees this slave between statuses, re-arm until the
    /// deadline (or until the master is known dead — then there is nobody
    /// to talk to and the rank goes silent).
    fn on_beat_tick(&mut self, ctx: &mut dyn Context<Msg>) {
        let now = ctx.now();
        let master = self.master;
        let newly = {
            let Some(r) = self.resil.as_mut() else { return };
            r.beat_armed = false;
            r.monitor.sweep(now)
        };
        if newly.contains(&master) {
            if let Some(r) = self.resil.as_mut() {
                r.master_lost = true;
                r.suspected_at.push((master, now));
            }
            return;
        }
        let beating = self.resil.as_ref().is_some_and(|r| now <= r.beat_deadline);
        if beating {
            let m = Msg::Beat { done: self.advanceable() == 0 };
            let bytes = m.wire_bytes(self.comm_geometry);
            ctx.send(master, m, bytes);
            self.arm_beat(ctx);
        }
    }

    fn check_memory(&mut self, ctx: &mut dyn Context<Msg>) -> bool {
        if self.memory.exceeded(self.ws.memory_bytes()) {
            self.failed_oom = true;
            ctx.stop_all();
            return true;
        }
        false
    }

    fn advanceable(&self) -> usize {
        self.parked.iter().filter(|(b, _)| self.ws.is_resident(**b)).map(|(_, v)| v.len()).sum()
    }

    fn send_status(&mut self, ctx: &mut dyn Context<Msg>, out_of_work: bool) {
        let status = SlaveStatus {
            queued_by_block: self.parked.iter().map(|(b, v)| (*b, v.len() as u32)).collect(),
            loaded: {
                let mut l = self.ws.resident_blocks();
                l.sort();
                l
            },
            active: self.advanceable() as u32,
            terminated_total: self.ws.terminated,
            out_of_work,
            acked_cmds: self.cmds_processed,
            failed_blocks: self.failed_blocks.iter().copied().collect(),
        };
        self.last_status_terminated = self.ws.terminated;
        self.sent_idle_status = out_of_work;
        self.sent_statuses += 1;
        let m = Msg::Status(status);
        let bytes = m.wire_bytes(self.comm_geometry);
        ctx.send(self.master, m, bytes);
    }

    /// Record that `block` could not be loaded after retries, and terminate
    /// everything parked on it — typed, counted, and reported, instead of
    /// the slave (and the whole run) deadlocking on work that cannot run.
    fn fail_block(&mut self, block: BlockId) {
        self.failed_blocks.insert(block);
        if let Some(list) = self.parked.remove(&block) {
            for mut sl in list {
                self.ws.terminate_unavailable(&mut sl);
                self.finished.push(sl);
            }
        }
    }

    /// Park `sl` at (non-resident) block `b`, unless `b` is known to be
    /// unloadable — then it terminates immediately instead of waiting on a
    /// Load that can never succeed.
    fn park(&mut self, mut sl: Streamline, b: BlockId) {
        if self.failed_blocks.contains(&b) {
            self.ws.terminate_unavailable(&mut sl);
            self.finished.push(sl);
        } else {
            self.parked.entry(b).or_default().push(sl);
        }
    }

    /// Advance everything possible (batched through the workspace batch
    /// kernel; movers re-park and the outer sweep picks resident ones back
    /// up), then report to the master.
    fn pump(&mut self, ctx: &mut dyn Context<Msg>) {
        let lanes = self.ws.batch_lanes();
        while let Some(block) = self.parked.keys().copied().find(|&b| self.ws.is_resident(b)) {
            let mut list = self.parked.remove(&block).expect("key just found");
            while !list.is_empty() {
                let take = lanes.min(list.len());
                let mut group = list.split_off(list.len() - take);
                group.reverse();
                let exits = self.ws.advance_batch_in(&mut group, block, ctx);
                for (sl, exit) in group.into_iter().zip(exits) {
                    match exit {
                        BlockExit::MovedTo(next) => self.park(sl, next),
                        BlockExit::Done(_) => self.finished.push(sl),
                    }
                }
                if self.check_memory(ctx) {
                    return;
                }
            }
        }
        // Report: always when out of work (once), otherwise when progress
        // happened since the last report.
        let out_of_work = self.advanceable() == 0;
        if out_of_work {
            if !self.sent_idle_status {
                self.send_status(ctx, true);
            }
        } else if self.ws.terminated != self.last_status_terminated {
            self.send_status(ctx, false);
        }
    }

    /// Move parked streamlines in `block` to slave `to` (Send-force, and the
    /// accepted half of Send-hint).
    fn offload(&mut self, block: BlockId, to: usize, ctx: &mut dyn Context<Msg>) -> usize {
        let Some(list) = self.parked.remove(&block) else { return 0 };
        let n = list.len();
        self.sent_handoffs += n as u64;
        for sl in list {
            self.ws.release(&sl);
            let m = Msg::Handoff { sl: Box::new(sl) };
            let bytes = m.wire_bytes(self.comm_geometry);
            ctx.send(to, m, bytes);
        }
        n
    }

    fn handle_command(&mut self, cmd: Command, ctx: &mut dyn Context<Msg>) {
        self.cmds_processed += 1;
        // Every command must eventually be followed by an acknowledging
        // status, or the master would consider this slave pending forever.
        self.sent_idle_status = false;
        match cmd {
            Command::AssignSeeds { block, seeds } => {
                // "Slave loads block B" when it is not already resident.
                if !self.ws.is_resident(block) {
                    if self.ws.try_acquire(block, ctx).is_err() {
                        self.fail_block(block);
                    }
                    if self.check_memory(ctx) {
                        return;
                    }
                }
                let now = ctx.now();
                for (id, seed) in seeds {
                    self.note_arrival(id, now);
                    let sl = Streamline::new_lean(id, seed, self.h0);
                    self.ws.admit(&sl);
                    // Seeds are grouped by block by the master; trust but
                    // re-locate to stay robust.
                    match self.ws.locate(seed) {
                        Some(b) if self.ws.is_resident(b) => {
                            self.parked.entry(b).or_default().push(sl)
                        }
                        Some(b) => self.park(sl, b),
                        None => {
                            let mut sl = sl;
                            sl.terminate(Termination::ExitedDomain);
                            // Count it so the global count converges.
                            let ws = &mut self.ws;
                            ws.terminated += 1;
                            ws.retire_object();
                            self.finished.push(sl);
                        }
                    }
                }
                self.pump(ctx);
            }
            Command::SendForce { block, to } => {
                self.offload(block, to, ctx);
                self.pump(ctx);
            }
            Command::SendHint { blocks, to } => {
                // Honour the hint only for blocks we have not loaded — those
                // streamlines are otherwise stuck; ignore the rest ("If S1
                // does not have any appropriate streamlines to send, it
                // ignores the hint").
                for b in blocks {
                    if !self.ws.is_resident(b) {
                        self.offload(b, to, ctx);
                    }
                }
                // Acknowledge even an ignored hint.
                self.send_status(ctx, self.advanceable() == 0);
            }
            Command::Load { block } => {
                if self.ws.is_resident(block) {
                    self.load_cmd_hits += 1;
                } else {
                    self.load_cmd_misses += 1;
                }
                if self.ws.try_acquire(block, ctx).is_err() {
                    self.fail_block(block);
                }
                if self.check_memory(ctx) {
                    return;
                }
                self.pump(ctx);
            }
            Command::Terminate => {
                self.terminated_cmd_seen = true;
            }
        }
    }
}

impl Process<Msg> for SlaveProc {
    fn on_event(&mut self, ev: Event<Msg>, ctx: &mut dyn Context<Msg>) {
        if let (Event::Message { from, .. }, Some(r)) = (&ev, self.resil.as_mut()) {
            // Any message is proof of life from its sender (the master's
            // commands and MasterBeats both feed the watchdog).
            r.monitor.beat(*from, ctx.now());
        }
        match ev {
            Event::Start => {
                if self.resil.is_some() {
                    let now = ctx.now();
                    let master = self.master;
                    if let Some(r) = self.resil.as_mut() {
                        r.monitor.watch(master, now);
                    }
                    self.arm_beat(ctx);
                }
                // Work arrives from the master; announce readiness.
                self.send_status(ctx, true);
            }
            Event::Wake(WAKE_BEAT) => self.on_beat_tick(ctx),
            Event::Message { msg: Msg::Command(cmd), .. } => self.handle_command(cmd, ctx),
            Event::Message { msg: Msg::Handoff { sl }, .. } => {
                self.sent_idle_status = false;
                self.note_arrival(sl.id, ctx.now());
                self.ws.admit(&sl);
                match self.ws.locate(sl.state.position) {
                    Some(b) if self.ws.is_resident(b) => {
                        self.parked.entry(b).or_default().push(*sl)
                    }
                    Some(b) => self.park(*sl, b),
                    None => {
                        let mut sl = *sl;
                        sl.terminate(Termination::ExitedDomain);
                        self.ws.terminated += 1;
                        self.ws.retire_object();
                        self.finished.push(sl);
                    }
                }
                self.pump(ctx);
            }
            Event::Message { .. } | Event::Wake(_) => {}
        }
        self.note_retirements(ctx.now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{uniform_x_dataset, NullCtx};
    use std::sync::Arc;
    use streamline_integrate::{StepLimits, StreamlineId};
    use streamline_iosim::{DiskModel, MemoryStore};
    use streamline_math::Vec3;

    fn slave(cache_blocks: usize) -> SlaveProc {
        let ds = uniform_x_dataset();
        let store = Arc::new(MemoryStore::build(&ds));
        let ws = Workspace::new(
            ds.decomp,
            store,
            cache_blocks,
            DiskModel::paper_scale(),
            StepLimits::default(),
            1e-6,
        );
        SlaveProc::new(1, 0, ws, MemoryBudget::unlimited(), true, 1e-2)
    }

    fn status_msgs(ctx: &NullCtx) -> Vec<&SlaveStatus> {
        ctx.sent
            .iter()
            .filter_map(|(_, m, _)| match m {
                Msg::Status(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn start_announces_idle() {
        let mut s = slave(4);
        let mut ctx = NullCtx::default();
        s.on_event(Event::Start, &mut ctx);
        let st = status_msgs(&ctx);
        assert_eq!(st.len(), 1);
        assert!(st[0].out_of_work);
        assert_eq!(st[0].active, 0);
    }

    #[test]
    fn assign_seeds_loads_block_and_integrates() {
        let mut s = slave(8);
        let mut ctx = NullCtx::default();
        let seeds = vec![
            (StreamlineId(0), Vec3::new(0.1, 0.2, 0.2)),
            (StreamlineId(1), Vec3::new(0.2, 0.3, 0.3)),
        ];
        s.handle_command(Command::AssignSeeds { block: BlockId(0), seeds }, &mut ctx);
        // Uniform +x with an 8-block cache: streamlines park at the next
        // (unloaded) block boundary or terminate — block (1,0,0) is NOT
        // resident so they park there.
        assert!(ctx.io > 0.0, "block load charged");
        let st = status_msgs(&ctx);
        assert!(!st.is_empty());
        let last = st.last().unwrap();
        assert!(last.out_of_work);
        assert_eq!(last.queued_by_block.iter().map(|(_, c)| c).sum::<u32>(), 2);
    }

    #[test]
    fn load_command_unblocks_parked() {
        let mut s = slave(8);
        let mut ctx = NullCtx::default();
        s.handle_command(
            Command::AssignSeeds {
                block: BlockId(0),
                seeds: vec![(StreamlineId(0), Vec3::new(0.1, 0.2, 0.2))],
            },
            &mut ctx,
        );
        // Parked at block 1; instruct load.
        let parked_block = *s.parked.keys().next().expect("parked somewhere");
        s.handle_command(Command::Load { block: parked_block }, &mut ctx);
        assert_eq!(s.finished.len(), 1, "streamline should exit the domain");
        assert_eq!(s.ws.terminated, 1);
    }

    #[test]
    fn send_force_moves_streamlines() {
        let mut s = slave(8);
        let mut ctx = NullCtx::default();
        s.handle_command(
            Command::AssignSeeds {
                block: BlockId(0),
                seeds: vec![(StreamlineId(0), Vec3::new(0.1, 0.2, 0.2))],
            },
            &mut ctx,
        );
        let parked_block = *s.parked.keys().next().unwrap();
        let before = ctx.sent.len();
        s.handle_command(Command::SendForce { block: parked_block, to: 7 }, &mut ctx);
        let handoffs: Vec<_> = ctx.sent[before..]
            .iter()
            .filter(|(to, m, _)| matches!(m, Msg::Handoff { .. }) && *to == 7)
            .collect();
        assert_eq!(handoffs.len(), 1);
        assert!(s.parked.is_empty());
    }

    #[test]
    fn hint_ignored_for_resident_blocks() {
        let mut s = slave(8);
        let mut ctx = NullCtx::default();
        s.handle_command(
            Command::AssignSeeds {
                block: BlockId(0),
                seeds: vec![(StreamlineId(0), Vec3::new(0.1, 0.2, 0.2))],
            },
            &mut ctx,
        );
        let parked_block = *s.parked.keys().next().unwrap();
        let before = ctx.sent.len();
        // Hint for a resident block moves nothing — only the acknowledging
        // status goes out.
        s.handle_command(Command::SendHint { blocks: vec![BlockId(0)], to: 5 }, &mut ctx);
        assert!(ctx.sent[before..].iter().all(|(_, m, _)| matches!(m, Msg::Status(_))));
        assert!(!ctx.sent[before..].iter().any(|(_, m, _)| matches!(m, Msg::Handoff { .. })));
        // Hint for the parked (unloaded) block triggers offload.
        s.handle_command(Command::SendHint { blocks: vec![parked_block], to: 5 }, &mut ctx);
        assert!(ctx.sent[before..]
            .iter()
            .any(|(to, m, _)| *to == 5 && matches!(m, Msg::Handoff { .. })));
    }

    #[test]
    fn handoff_received_is_integrated_or_parked() {
        let mut s = slave(8);
        let mut ctx = NullCtx::default();
        // Pre-load the destination block so the streamline can run.
        s.ws.acquire(BlockId(1), &mut ctx);
        let sl = Streamline::new_lean(StreamlineId(9), Vec3::new(0.6, 0.2, 0.2), 1e-2);
        s.on_event(Event::Message { from: 3, msg: Msg::Handoff { sl: Box::new(sl) } }, &mut ctx);
        assert_eq!(s.finished.len(), 1);
    }
}

#[cfg(test)]
mod invariant_tests {
    use super::*;
    use crate::testutil::{custom_dataset, NullCtx};
    use std::sync::Arc;
    use streamline_integrate::{StepLimits, StreamlineId};
    use streamline_iosim::{DiskModel, MemoryStore};
    use streamline_math::Vec3;

    /// After any pump, no parked entry refers to a resident block — the
    /// invariant the master's Send-force rule relies on ("streamlines the
    /// slave reports as queued are ones it cannot advance").
    #[test]
    fn parked_is_disjoint_from_resident_after_any_command_sequence() {
        let ds =
            custom_dataset(streamline_field::analytic::AbcFlow::classic(), [2, 2, 2], [4, 4, 4]);
        let store = Arc::new(MemoryStore::build(&ds));
        let limits = StepLimits { max_steps: 50, ..StepLimits::default() };
        let ws = Workspace::new(ds.decomp, store, 3, DiskModel::paper_scale(), limits, 1e-6);
        let mut s = SlaveProc::new(1, 0, ws, crate::config::MemoryBudget::unlimited(), true, 1e-2);
        let mut ctx = NullCtx::default();

        // A deterministic pseudo-random command storm.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut id = 0u32;
        for round in 0..40 {
            match next() % 4 {
                0 => {
                    let block = BlockId((next() % 8) as u32);
                    let seeds: Vec<_> = (0..(next() % 5 + 1))
                        .map(|_| {
                            id += 1;
                            let u = Vec3::new(
                                (next() % 1000) as f64 / 1000.0,
                                (next() % 1000) as f64 / 1000.0,
                                (next() % 1000) as f64 / 1000.0,
                            );
                            (StreamlineId(id), ds.decomp.domain.expanded(-1e-3).from_unit(u))
                        })
                        .collect();
                    s.handle_command(Command::AssignSeeds { block, seeds }, &mut ctx);
                }
                1 => s.handle_command(
                    Command::Load { block: BlockId((next() % 8) as u32) },
                    &mut ctx,
                ),
                2 => {
                    if let Some(&b) = s.parked.keys().next() {
                        s.handle_command(Command::SendForce { block: b, to: 5 }, &mut ctx);
                    }
                }
                _ => s.handle_command(
                    Command::SendHint { blocks: vec![BlockId((next() % 8) as u32)], to: 6 },
                    &mut ctx,
                ),
            }
            // Invariant check after every command.
            for b in s.parked.keys() {
                assert!(!s.ws.is_resident(*b), "round {round}: parked block {b} is resident");
            }
            // Accounting: every admitted streamline is parked, finished, or
            // was handed off.
            let parked: usize = s.parked.values().map(|v| v.len()).sum();
            let handed = s.sent_handoffs as usize;
            assert_eq!(
                parked + s.finished.len() + handed,
                id as usize,
                "round {round}: streamline accounting broken"
            );
        }
    }
}
