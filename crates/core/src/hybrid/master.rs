//! The Hybrid master process (§4.3).
//!
//! The master keeps a record per slave (streamlines owned, blocks they
//! intersect, blocks loaded, active count) and, whenever status updates
//! arrive, applies the five rules — Assign-loaded, Assign-unloaded,
//! Send-force, Send-hint, Load — in the paper's 7-step order to every slave
//! with no work. Multiple masters each manage `W` slaves, exchange work when
//! a pool drains, and master 0 maintains the global remaining count.

use crate::config::HybridParams;
use crate::msg::{Command, Msg, SlaveStatus};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use streamline_desim::{Context, Event, HeartbeatMonitor, Process};
use streamline_field::block::BlockId;
use streamline_field::decomp::BlockDecomposition;
use streamline_integrate::StreamlineId;
use streamline_math::{rng, Vec3};

/// Master 0 coordinates global termination.
pub const ROOT_MASTER: usize = 0;

/// Resilient mode only: periodic heartbeat-and-sweep tick.
const WAKE_BEAT: u64 = 10;

/// Per-rank fail-stop resilience state for a Hybrid master: a failure
/// detector over its slaves, the quarantined assignment ledger (what was
/// sent to whom, so a dead slave's work can be requeued exactly), and
/// MasterBeat liveness traffic toward the slaves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MasterResil {
    /// Virtual seconds between heartbeat ticks.
    pub heartbeat_period: f64,
    /// Ticks stop re-arming past this virtual time, bounding the event
    /// count of any death schedule.
    pub beat_deadline: f64,
    /// Failure detector over this master's slaves.
    pub monitor: HeartbeatMonitor,
    /// A heartbeat tick is armed.
    pub beat_armed: bool,
    /// Slaves (and peers) this master believes dead, sorted.
    pub dead: Vec<u32>,
    /// Seeds assigned per slave and not yet acknowledged as terminated —
    /// the quarantine ledger a dead slave's requeue draws from. Sorted by
    /// slave rank.
    pub assigned: Vec<(u32, Vec<(StreamlineId, Vec3)>)>,
    /// Streamlines requeued from dead slaves.
    pub reassigned: u64,
    /// `(rank, virtual time)` of each death this master's monitor detected.
    pub suspected_at: Vec<(usize, f64)>,
}

impl MasterResil {
    fn new(heartbeat_period: f64, suspect_timeout: f64, beat_deadline: f64) -> Self {
        MasterResil {
            heartbeat_period,
            beat_deadline,
            monitor: HeartbeatMonitor::new(suspect_timeout),
            beat_armed: false,
            dead: Vec::new(),
            assigned: Vec::new(),
            reassigned: 0,
            suspected_at: Vec::new(),
        }
    }

    fn record_assigned(&mut self, slave: usize, seeds: &[(StreamlineId, Vec3)]) {
        match self.assigned.binary_search_by_key(&(slave as u32), |(s, _)| *s) {
            Ok(i) => self.assigned[i].1.extend_from_slice(seeds),
            Err(i) => self.assigned.insert(i, (slave as u32, seeds.to_vec())),
        }
    }
}

/// The master's model of one slave (§4.3: "The master algorithm maintains a
/// set of slave records, one record for each slave process").
#[derive(Debug, Clone, Default, PartialEq)]
struct SlaveRecord {
    /// Streamlines currently advanceable on the slave (estimated between
    /// statuses as the master hands out work).
    active: u64,
    /// Blocks resident on the slave.
    loaded: Vec<BlockId>,
    /// Streamlines parked per block.
    queued: BTreeMap<BlockId, u32>,
    /// Cumulative terminated count.
    terminated: u64,
    /// The slave said it cannot advance anything.
    out_of_work: bool,
    /// Work was sent since its last status; skip it until it reports again
    /// ("not considered for additional work assignments until the slave ...
    /// sends a new update status").
    pending: bool,
    /// Commands sent to this slave so far; statuses acknowledging fewer are
    /// stale (they crossed a command in flight) and must not drive
    /// decisions.
    cmds_sent: u64,
}

/// Serializable image of one [`SlaveRecord`] (BTreeMap keys become pair
/// vectors — the vendored serde only maps String-keyed maps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaveRecordSnapshot {
    pub active: u64,
    pub loaded: Vec<BlockId>,
    pub queued: Vec<(BlockId, u32)>,
    pub terminated: u64,
    pub out_of_work: bool,
    pub pending: bool,
    pub cmds_sent: u64,
}

/// Serializable image of a [`MasterProc`] mid-run, including the exact RNG
/// stream position so post-resume Send-hint draws match the uninterrupted
/// run bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MasterSnapshot {
    pub pool: Vec<(BlockId, Vec<(StreamlineId, Vec3)>)>,
    pub records: Vec<(usize, SlaveRecordSnapshot)>,
    pub group_total: u64,
    pub group_pre_terminated: u64,
    pub quarantined: Vec<BlockId>,
    pub group_unavailable: u64,
    pub last_reported_remaining: Option<u64>,
    pub rng_key: [u8; 32],
    pub rng_word_pos: u64,
    pub steal_outstanding: bool,
    pub next_steal: u64,
    pub status_counter: u64,
    pub hint_after: Vec<(usize, u64)>,
    pub reported: Vec<(usize, u64)>,
    pub done: bool,
    pub cmd_counts: [u64; 5],
    /// Absent in pre-resilience snapshots.
    #[serde(default)]
    pub resil: Option<MasterResil>,
    /// Absent in pre-ingestion snapshots; 0 is exactly the closed-run value.
    #[serde(default)]
    pub epochs_ingested: u32,
    #[serde(default)]
    pub last_reported_extra: u32,
    /// Root master only: per-master reported ingest progress.
    #[serde(default)]
    pub reported_extra: Vec<(usize, u32)>,
}

/// One Hybrid master rank.
pub struct MasterProc {
    rank: usize,
    decomp: BlockDecomposition,
    params: HybridParams,
    comm_geometry: bool,
    /// Ranks of the slaves this master manages.
    slaves: Vec<usize>,
    /// All master ranks (for work stealing / termination), sorted.
    masters: Vec<usize>,
    /// Unassigned seed points, grouped by owning block.
    pool: BTreeMap<BlockId, Vec<(StreamlineId, Vec3)>>,
    records: BTreeMap<usize, SlaveRecord>,
    /// Seeds this master is responsible for (adjusted by work transfers).
    group_total: u64,
    /// Immediately-terminated seeds (outside the domain).
    group_pre_terminated: u64,
    /// Blocks some slave reported as unloadable; no further seeds are
    /// scheduled into them.
    quarantined: BTreeSet<BlockId>,
    /// Pooled seeds discarded because their block was quarantined before
    /// they were ever assigned. They count as terminated for the global
    /// count (they can never run), like the slaves' `BlockUnavailable`
    /// terminations.
    group_unavailable: u64,
    last_reported_remaining: Option<u64>,
    rng: ChaCha8Rng,
    steal_outstanding: bool,
    next_steal: usize,
    /// Statuses processed (drives the hint throttle).
    status_counter: u64,
    /// Per-slave earliest status count at which another hint may be issued
    /// on its behalf (prevents hint storms for starving slaves).
    hint_after: BTreeMap<usize, u64>,
    /// Highest ingest epoch observed at this master (0 for closed runs).
    epochs_ingested: u32,
    /// Total epochs of the run's ingest plan (1 for closed runs).
    n_epochs: u32,
    /// The `epochs_ingested` value last reported to the root (memo, like
    /// `last_reported_remaining` — an empty epoch changes no count but must
    /// still be reported or the root would never see the plan complete).
    last_reported_extra: u32,
    // Root master only:
    reported: BTreeMap<usize, u64>,
    /// Root master only: each master's reported `epochs_ingested`.
    reported_extra: BTreeMap<usize, u32>,
    pub done: bool,
    /// Diagnostics: commands issued, indexed as
    /// [assign, send-force, send-hint, load, terminate].
    pub cmd_counts: [u64; 5],
    /// Fail-stop resilience machinery; `None` outside rank-chaos runs so
    /// fault-free schedules are untouched.
    resil: Option<MasterResil>,
}

impl MasterProc {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rank: usize,
        decomp: BlockDecomposition,
        params: HybridParams,
        comm_geometry: bool,
        slaves: Vec<usize>,
        masters: Vec<usize>,
        seeds: Vec<(StreamlineId, Vec3)>,
        seed: u64,
    ) -> Self {
        let mut pool: BTreeMap<BlockId, Vec<(StreamlineId, Vec3)>> = BTreeMap::new();
        let mut pre_terminated = 0u64;
        let group_total = seeds.len() as u64;
        for (id, p) in seeds {
            match decomp.locate(p) {
                Some(b) => pool.entry(b).or_default().push((id, p)),
                None => pre_terminated += 1,
            }
        }
        let records = slaves.iter().map(|&r| (r, SlaveRecord::default())).collect();
        MasterProc {
            rank,
            decomp,
            params,
            comm_geometry,
            slaves,
            masters,
            pool,
            records,
            group_total,
            group_pre_terminated: pre_terminated,
            quarantined: BTreeSet::new(),
            group_unavailable: 0,
            last_reported_remaining: None,
            rng: rng::stream(seed, "hybrid-master"),
            steal_outstanding: false,
            next_steal: 0,
            status_counter: 0,
            hint_after: BTreeMap::new(),
            epochs_ingested: 0,
            n_epochs: 1,
            last_reported_extra: 0,
            reported: BTreeMap::new(),
            reported_extra: BTreeMap::new(),
            done: false,
            cmd_counts: [0; 5],
            resil: None,
        }
    }

    /// Switch this master into open-loop mode: termination additionally
    /// requires every master to have observed all `n_epochs` ingest epochs.
    pub fn with_ingest(mut self, n_epochs: u32) -> Self {
        self.n_epochs = n_epochs.max(1);
        self
    }

    /// Switch this master into resilient mode (rank-chaos runs only):
    /// slave heartbeat monitoring, the assignment quarantine ledger, and
    /// requeue-on-death.
    pub fn with_resilience(
        mut self,
        heartbeat_period: f64,
        suspect_timeout: f64,
        beat_deadline: f64,
    ) -> Self {
        self.resil = Some(MasterResil::new(heartbeat_period, suspect_timeout, beat_deadline));
        self
    }

    /// Deaths this master's own failure detector observed, as
    /// `(rank, virtual suspicion time)`.
    pub fn suspected_at(&self) -> &[(usize, f64)] {
        self.resil.as_ref().map_or(&[], |r| r.suspected_at.as_slice())
    }

    /// Streamlines requeued from dead slaves.
    pub fn reassigned(&self) -> u64 {
        self.resil.as_ref().map_or(0, |r| r.reassigned)
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Capture this master's mid-run state for a checkpoint.
    pub fn snapshot(&self) -> MasterSnapshot {
        MasterSnapshot {
            pool: self.pool.iter().map(|(&b, v)| (b, v.clone())).collect(),
            records: self
                .records
                .iter()
                .map(|(&s, r)| {
                    (
                        s,
                        SlaveRecordSnapshot {
                            active: r.active,
                            loaded: r.loaded.clone(),
                            queued: r.queued.iter().map(|(&b, &c)| (b, c)).collect(),
                            terminated: r.terminated,
                            out_of_work: r.out_of_work,
                            pending: r.pending,
                            cmds_sent: r.cmds_sent,
                        },
                    )
                })
                .collect(),
            group_total: self.group_total,
            group_pre_terminated: self.group_pre_terminated,
            quarantined: self.quarantined.iter().copied().collect(),
            group_unavailable: self.group_unavailable,
            last_reported_remaining: self.last_reported_remaining,
            rng_key: self.rng.get_seed(),
            rng_word_pos: self.rng.get_word_pos(),
            steal_outstanding: self.steal_outstanding,
            next_steal: self.next_steal as u64,
            status_counter: self.status_counter,
            hint_after: self.hint_after.iter().map(|(&s, &c)| (s, c)).collect(),
            reported: self.reported.iter().map(|(&s, &c)| (s, c)).collect(),
            done: self.done,
            cmd_counts: self.cmd_counts,
            resil: self.resil.clone(),
            epochs_ingested: self.epochs_ingested,
            last_reported_extra: self.last_reported_extra,
            reported_extra: self.reported_extra.iter().map(|(&s, &c)| (s, c)).collect(),
        }
    }

    /// Restore a snapshot onto a freshly built master (same config/layout).
    pub fn restore(&mut self, snap: &MasterSnapshot) {
        self.pool = snap.pool.iter().cloned().collect();
        self.records = snap
            .records
            .iter()
            .map(|(s, r)| {
                (
                    *s,
                    SlaveRecord {
                        active: r.active,
                        loaded: r.loaded.clone(),
                        queued: r.queued.iter().copied().collect(),
                        terminated: r.terminated,
                        out_of_work: r.out_of_work,
                        pending: r.pending,
                        cmds_sent: r.cmds_sent,
                    },
                )
            })
            .collect();
        self.group_total = snap.group_total;
        self.group_pre_terminated = snap.group_pre_terminated;
        self.quarantined = snap.quarantined.iter().copied().collect();
        self.group_unavailable = snap.group_unavailable;
        self.last_reported_remaining = snap.last_reported_remaining;
        let mut rng = ChaCha8Rng::from_seed(snap.rng_key);
        rng.set_word_pos(snap.rng_word_pos);
        self.rng = rng;
        self.steal_outstanding = snap.steal_outstanding;
        self.next_steal = snap.next_steal as usize;
        self.status_counter = snap.status_counter;
        self.hint_after = snap.hint_after.iter().copied().collect();
        self.reported = snap.reported.iter().copied().collect();
        self.done = snap.done;
        self.cmd_counts = snap.cmd_counts;
        self.resil = snap.resil.clone();
        self.epochs_ingested = snap.epochs_ingested;
        self.last_reported_extra = snap.last_reported_extra;
        self.reported_extra = snap.reported_extra.iter().copied().collect();
    }

    fn send_cmd(&mut self, to: usize, cmd: Command, ctx: &mut dyn Context<Msg>) {
        if let Some(rec) = self.records.get_mut(&to) {
            rec.cmds_sent += 1;
        }
        // Quarantine ledger: remember what was assigned where, so a dead
        // slave's outstanding seeds can be requeued exactly.
        if let (Command::AssignSeeds { seeds, .. }, Some(r)) = (&cmd, self.resil.as_mut()) {
            r.record_assigned(to, seeds);
        }
        self.cmd_counts[match &cmd {
            Command::AssignSeeds { .. } => 0,
            Command::SendForce { .. } => 1,
            Command::SendHint { .. } => 2,
            Command::Load { .. } => 3,
            Command::Terminate => 4,
        }] += 1;
        let m = Msg::Command(cmd);
        let bytes = m.wire_bytes(self.comm_geometry);
        ctx.send(to, m, bytes);
    }

    /// This master's unfinished streamline count.
    fn remaining(&self) -> u64 {
        let terminated: u64 = self.records.values().map(|r| r.terminated).sum::<u64>()
            + self.group_pre_terminated
            + self.group_unavailable;
        self.group_total.saturating_sub(terminated)
    }

    /// Seeds this master discarded because their block was quarantined
    /// before assignment (the master-side share of `BlockUnavailable`).
    pub fn unavailable_seeds(&self) -> u64 {
        self.group_unavailable
    }

    /// Blocks currently quarantined (reported unloadable by some slave).
    pub fn quarantined_blocks(&self) -> usize {
        self.quarantined.len()
    }

    /// Mark `b` unloadable: discard pooled seeds in it (they can never be
    /// integrated) and stop scheduling into it.
    fn quarantine(&mut self, b: BlockId) {
        if self.quarantined.insert(b) {
            if let Some(seeds) = self.pool.remove(&b) {
                self.group_unavailable += seeds.len() as u64;
            }
        }
    }

    /// Report remaining to the root (or record it locally if we are root).
    fn report_remaining(&mut self, ctx: &mut dyn Context<Msg>) {
        let remaining = self.remaining();
        if self.last_reported_remaining == Some(remaining)
            && self.last_reported_extra == self.epochs_ingested
        {
            return;
        }
        self.last_reported_remaining = Some(remaining);
        self.last_reported_extra = self.epochs_ingested;
        if self.rank == ROOT_MASTER {
            self.reported.insert(self.rank, remaining);
            self.reported_extra.insert(self.rank, self.epochs_ingested);
            self.check_done(ctx);
        } else {
            let m = Msg::GroupRemaining {
                remaining,
                extra_ingested: self.epochs_ingested,
                by_epoch: Vec::new(),
            };
            let bytes = m.wire_bytes(self.comm_geometry);
            ctx.send(ROOT_MASTER, m, bytes);
        }
    }

    fn check_done(&mut self, ctx: &mut dyn Context<Msg>) {
        debug_assert_eq!(self.rank, ROOT_MASTER);
        let all_reported = self.masters.iter().all(|m| self.reported.contains_key(m));
        // Open-loop: no group may be declared drained while ingest epochs it
        // has not observed are still due (closed runs have n_epochs == 1, so
        // the gate is vacuous there).
        let all_ingested = self
            .masters
            .iter()
            .all(|m| self.reported_extra.get(m).copied().unwrap_or(0) + 1 >= self.n_epochs);
        if all_reported && all_ingested && self.reported.values().sum::<u64>() == 0 {
            self.done = true;
            // Tell every slave to wind down, then stop the world.
            let slaves: Vec<usize> = self.records.keys().copied().collect();
            for s in slaves {
                self.send_cmd(s, Command::Terminate, ctx);
            }
            ctx.stop_all();
        }
    }

    /// Take up to `n` seeds from the pool block with the most seeds.
    fn take_seeds(
        &mut self,
        n: usize,
        prefer: Option<BlockId>,
    ) -> Option<(BlockId, Vec<(StreamlineId, Vec3)>)> {
        let block = match prefer {
            Some(b) if self.pool.contains_key(&b) => b,
            _ => *self.pool.iter().max_by_key(|(id, v)| (v.len(), std::cmp::Reverse(id.0)))?.0,
        };
        let list = self.pool.get_mut(&block).expect("chosen block exists");
        let take = n.min(list.len());
        let seeds: Vec<_> = list.drain(list.len() - take..).collect();
        if list.is_empty() {
            self.pool.remove(&block);
        }
        Some((block, seeds))
    }

    /// Choose a Send-force destination among slaves with `b` loaded and
    /// headroom under `N_O`. Preference goes to the slave holding the most
    /// of `b`'s neighbour blocks: migrated streamlines then tend to stay on
    /// that slave as they cross block faces, so geometry is communicated
    /// once per region instead of once per block (this is the coherency
    /// exploitation the paper's abstract advertises).
    fn pick_force_target(&self, from: usize, b: BlockId, c: u32, overload: u64) -> Option<usize> {
        let neighbors = self.decomp.neighbors(b);
        self.records
            .iter()
            .filter(|(&t, rec)| {
                t != from && rec.loaded.contains(&b) && rec.active + c as u64 <= overload
            })
            .max_by_key(|(&t, rec)| {
                let affinity = neighbors.iter().filter(|n| rec.loaded.contains(n)).count();
                (affinity, std::cmp::Reverse(rec.active), std::cmp::Reverse(t))
            })
            .map(|(&t, _)| t)
    }

    /// §4.3 step 1 (and 3): Send-force streamlines in unloaded blocks from
    /// `from` to slaves that have those blocks loaded, respecting `N_O`.
    fn force_offload(&mut self, from: usize, ctx: &mut dyn Context<Msg>) {
        let overload = self.params.overload_limit() as u64;
        let source = self.records.get(&from).expect("known slave");
        let candidates: Vec<(BlockId, u32)> = source
            .queued
            .iter()
            .filter(|(b, _)| !source.loaded.contains(b))
            .map(|(&b, &c)| (b, c))
            .collect();
        for (b, c) in candidates {
            let target = self.pick_force_target(from, b, c, overload);
            if let Some(t) = target {
                self.send_cmd(from, Command::SendForce { block: b, to: t }, ctx);
                self.records.get_mut(&from).expect("known").queued.remove(&b);
                let tr = self.records.get_mut(&t).expect("known");
                tr.active += c as u64;
                tr.out_of_work = false;
            }
        }
    }

    /// Step 3's other direction: after `loader` loads `block`, other slaves
    /// can force their parked streamlines in `block` toward it.
    fn force_toward(&mut self, loader: usize, block: BlockId, ctx: &mut dyn Context<Msg>) {
        let overload = self.params.overload_limit() as u64;
        let others: Vec<(usize, u32)> = self
            .records
            .iter()
            .filter(|(&u, rec)| {
                u != loader && !rec.loaded.contains(&block) && rec.queued.contains_key(&block)
            })
            .map(|(&u, rec)| (u, rec.queued[&block]))
            .collect();
        for (u, c) in others {
            let loader_active = self.records[&loader].active;
            if loader_active + c as u64 > overload {
                continue;
            }
            self.send_cmd(u, Command::SendForce { block, to: loader }, ctx);
            self.records.get_mut(&u).expect("known").queued.remove(&block);
            self.records.get_mut(&loader).expect("known").active += c as u64;
        }
    }

    /// Try to give slave `s` work following the 7-step sequence of §4.3.
    /// Returns true when work was assigned to `s`.
    fn try_assign(&mut self, s: usize, ctx: &mut dyn Context<Msg>) -> bool {
        // 1. Offload s's streamlines stuck in unloaded blocks to slaves that
        //    have those blocks loaded.
        self.force_offload(s, ctx);

        // 2. If s has more than N_L streamlines in an unloaded block, load it.
        let n_load = self.params.n_load as u32;
        let rec = &self.records[&s];
        let heavy = rec
            .queued
            .iter()
            .filter(|(b, &c)| !rec.loaded.contains(b) && c >= n_load)
            .max_by_key(|(b, &c)| (c, std::cmp::Reverse(b.0)))
            .map(|(&b, &c)| (b, c));
        if let Some((b, c)) = heavy {
            self.send_cmd(s, Command::Load { block: b }, ctx);
            let rec = self.records.get_mut(&s).expect("known");
            rec.loaded.push(b);
            rec.queued.remove(&b);
            rec.active += c as u64;
            rec.pending = true;
            rec.out_of_work = false;
            // 3. The loaded-set changed: let others force toward s.
            self.force_toward(s, b, ctx);
            return true;
        }

        // 4. Assign-loaded: seeds in a block s already has.
        let loaded_with_seeds = {
            let rec = &self.records[&s];
            let mut blocks: Vec<BlockId> =
                rec.loaded.iter().copied().filter(|b| self.pool.contains_key(b)).collect();
            blocks.sort();
            blocks.first().copied()
        };
        if let Some(b) = loaded_with_seeds {
            let (block, seeds) =
                self.take_seeds(self.params.n_assign, Some(b)).expect("pool has b");
            let n = seeds.len() as u64;
            self.send_cmd(s, Command::AssignSeeds { block, seeds }, ctx);
            let rec = self.records.get_mut(&s).expect("known");
            rec.active += n;
            rec.pending = true;
            rec.out_of_work = false;
            return true;
        }

        // 5. Assign-unloaded: any seeds at all; the slave loads the block.
        if let Some((block, seeds)) = self.take_seeds(self.params.n_assign, None) {
            let n = seeds.len() as u64;
            self.send_cmd(s, Command::AssignSeeds { block, seeds }, ctx);
            let rec = self.records.get_mut(&s).expect("known");
            if !rec.loaded.contains(&block) {
                rec.loaded.push(block);
            }
            rec.active += n;
            rec.pending = true;
            rec.out_of_work = false;
            return true;
        }

        // 6. Load the block with the most parked streamlines, even below N_L.
        let best = {
            let rec = &self.records[&s];
            rec.queued
                .iter()
                .filter(|(b, _)| !rec.loaded.contains(b))
                .max_by_key(|(b, &c)| (c, std::cmp::Reverse(b.0)))
                .map(|(&b, &c)| (b, c))
        };
        if let Some((b, c)) = best {
            self.send_cmd(s, Command::Load { block: b }, ctx);
            let rec = self.records.get_mut(&s).expect("known");
            rec.loaded.push(b);
            rec.queued.remove(&b);
            rec.active += c as u64;
            rec.pending = true;
            rec.out_of_work = false;
            self.force_toward(s, b, ctx);
            return true;
        }

        // 7. Send-hint: ask the busiest slave to consider offloading to s.
        // Throttled: a starving slave triggers at most one hint per
        // half-group of status arrivals, or idle groups would spam hints.
        if self.hint_after.get(&s).copied().unwrap_or(0) > self.status_counter {
            return false;
        }
        let busiest: Vec<usize> = {
            let max_active =
                self.records.iter().filter(|(&t, _)| t != s).map(|(_, r)| r.active).max();
            match max_active {
                Some(m) if m > 0 => self
                    .records
                    .iter()
                    .filter(|(&t, r)| t != s && r.active == m)
                    .map(|(&t, _)| t)
                    .collect(),
                _ => Vec::new(),
            }
        };
        if !busiest.is_empty() {
            let pick = busiest[self.rng.gen_range(0..busiest.len())];
            let blocks: Vec<BlockId> = {
                let rec = &self.records[&pick];
                rec.queued.keys().copied().filter(|b| !rec.loaded.contains(b)).collect()
            };
            if !blocks.is_empty() {
                self.send_cmd(pick, Command::SendHint { blocks, to: s }, ctx);
                self.hint_after
                    .insert(s, self.status_counter + (self.slaves.len() as u64 / 2).max(4));
            }
            return false;
        }

        // Nothing local: try to steal seeds from a peer master.
        if !self.steal_outstanding && self.masters.len() > 1 && self.pool.is_empty() {
            let peers: Vec<usize> =
                self.masters.iter().copied().filter(|&m| m != self.rank).collect();
            let target = peers[self.next_steal % peers.len()];
            self.next_steal += 1;
            self.steal_outstanding = true;
            let m = Msg::WorkRequest;
            let bytes = m.wire_bytes(self.comm_geometry);
            ctx.send(target, m, bytes);
        }
        false
    }

    /// Apply the rules to every idle, non-pending slave.
    fn assign_idle(&mut self, ctx: &mut dyn Context<Msg>) {
        let idle: Vec<usize> = self
            .records
            .iter()
            .filter(|(_, r)| r.out_of_work && !r.pending)
            .map(|(&s, _)| s)
            .collect();
        for s in idle {
            // Records change as earlier slaves get work; re-check.
            if self.records[&s].out_of_work && !self.records[&s].pending {
                self.try_assign(s, ctx);
            }
        }
    }

    fn arm_beat(&mut self, ctx: &mut dyn Context<Msg>) {
        if let Some(r) = self.resil.as_mut() {
            if !r.beat_armed {
                r.beat_armed = true;
                ctx.wake_after(r.heartbeat_period, WAKE_BEAT);
            }
        }
    }

    /// Heartbeat tick: sweep the failure detector (requeueing the work of
    /// any newly dead slave), send MasterBeat to the surviving slaves so
    /// they know this master lives, re-arm until the deadline.
    fn on_beat_tick(&mut self, ctx: &mut dyn Context<Msg>) {
        let now = ctx.now();
        let newly = {
            let Some(r) = self.resil.as_mut() else { return };
            r.beat_armed = false;
            r.monitor.sweep(now)
        };
        for rank in newly {
            self.apply_slave_death(rank, now, ctx);
        }
        let beating = self.resil.as_ref().is_some_and(|r| now <= r.beat_deadline);
        if beating {
            let slaves: Vec<usize> = self.records.keys().copied().collect();
            for s in slaves {
                let m = Msg::MasterBeat;
                let bytes = m.wire_bytes(self.comm_geometry);
                ctx.send(s, m, bytes);
            }
            self.arm_beat(ctx);
        }
    }

    /// A slave is dead: drop its record (it leaves every scheduling rule)
    /// and requeue every seed from its quarantine ledger. Its durable
    /// completions are reconciled at collect time — here its count restarts
    /// from the requeued seeds, so the group's remaining count stays an
    /// over-approximation that still drains to zero (or the run ends by
    /// natural drain; either way no schedule can hang the group).
    fn apply_slave_death(&mut self, slave: usize, now: f64, ctx: &mut dyn Context<Msg>) {
        let seeds = {
            let Some(r) = self.resil.as_mut() else { return };
            let Err(i) = r.dead.binary_search(&(slave as u32)) else { return };
            r.dead.insert(i, slave as u32);
            r.suspected_at.push((slave, now));
            r.monitor.unwatch(slave);
            match r.assigned.binary_search_by_key(&(slave as u32), |(s, _)| *s) {
                Ok(j) => std::mem::take(&mut r.assigned[j].1),
                Err(_) => Vec::new(),
            }
        };
        if self.records.remove(&slave).is_none() {
            return; // a peer master or an already-forgotten rank
        }
        self.slaves.retain(|&s| s != slave);
        self.hint_after.remove(&slave);
        if let Some(r) = self.resil.as_mut() {
            r.reassigned += seeds.len() as u64;
        }
        for (id, p) in seeds {
            match self.decomp.locate(p) {
                Some(b) if self.quarantined.contains(&b) => self.group_unavailable += 1,
                Some(b) => self.pool.entry(b).or_default().push((id, p)),
                None => self.group_pre_terminated += 1,
            }
        }
        self.report_remaining(ctx);
        self.assign_idle(ctx);
    }

    fn on_status(&mut self, from: usize, st: SlaveStatus, ctx: &mut dyn Context<Msg>) {
        self.status_counter += 1;
        // Failed blocks are cumulative/monotone (like terminated counts), so
        // they are safe to fold in even from stale statuses.
        for &b in &st.failed_blocks {
            self.quarantine(b);
        }
        let Some(rec) = self.records.get_mut(&from) else {
            // Resilient runs: a status from a slave this master already
            // declared dead (false suspicion, or one that raced the sweep).
            // Its work was requeued; the stray report carries nothing to act
            // on. Fault-free runs still treat this as a protocol bug.
            debug_assert!(self.resil.is_some(), "status from unknown slave");
            return;
        };
        if st.acked_cmds < rec.cmds_sent {
            // Stale: sent before a command we issued reached the slave.
            // Folding it into the record would revert our predictions and
            // make us re-issue the same command. Only monotone counters are
            // safe to take.
            rec.terminated = rec.terminated.max(st.terminated_total);
            self.report_remaining(ctx);
            return;
        }
        rec.active = st.active as u64;
        rec.loaded = st.loaded;
        rec.queued = st.queued_by_block.into_iter().collect();
        rec.terminated = rec.terminated.max(st.terminated_total);
        rec.out_of_work = st.out_of_work;
        rec.pending = false;
        self.report_remaining(ctx);
        self.assign_idle(ctx);
    }
}

impl Process<Msg> for MasterProc {
    fn on_event(&mut self, ev: Event<Msg>, ctx: &mut dyn Context<Msg>) {
        if let (Event::Message { from, .. }, Some(r)) = (&ev, self.resil.as_mut()) {
            // Any message is proof of life from its sender.
            r.monitor.beat(*from, ctx.now());
        }
        match ev {
            Event::Start => {
                if self.resil.is_some() {
                    let now = ctx.now();
                    let slaves = self.slaves.clone();
                    if let Some(r) = self.resil.as_mut() {
                        for &s in &slaves {
                            r.monitor.watch(s, now);
                        }
                    }
                    self.arm_beat(ctx);
                }
                // Initial allocation: every slave gets N seeds through
                // Assign-unloaded ("all slaves receive their initial
                // allocation of work through the Assign-unloaded rule").
                let slaves = self.slaves.clone();
                for s in slaves {
                    if let Some((block, seeds)) = self.take_seeds(self.params.n_assign, None) {
                        let n = seeds.len() as u64;
                        self.send_cmd(s, Command::AssignSeeds { block, seeds }, ctx);
                        let rec = self.records.get_mut(&s).expect("known");
                        rec.loaded.push(block);
                        rec.active += n;
                        rec.pending = true;
                    }
                }
                self.report_remaining(ctx);
            }
            Event::Message { from, msg } => match msg {
                Msg::Status(st) => self.on_status(from, st, ctx),
                Msg::GroupRemaining { remaining, extra_ingested, .. } => {
                    debug_assert_eq!(self.rank, ROOT_MASTER);
                    self.reported.insert(from, remaining);
                    self.reported_extra.insert(from, extra_ingested);
                    self.check_done(ctx);
                }
                Msg::Ingest { epoch, seeds } => {
                    // An open-loop batch for this master's group (possibly
                    // empty — the epoch is still observed and reported).
                    self.epochs_ingested = self.epochs_ingested.max(epoch);
                    self.group_total += seeds.len() as u64;
                    for (id, p) in seeds {
                        match self.decomp.locate(p) {
                            Some(b) if self.quarantined.contains(&b) => self.group_unavailable += 1,
                            Some(b) => self.pool.entry(b).or_default().push((id, p)),
                            None => self.group_pre_terminated += 1,
                        }
                    }
                    self.report_remaining(ctx);
                    self.assign_idle(ctx);
                }
                Msg::WorkRequest => {
                    // Grant up to W·N seeds.
                    let mut granted: Vec<(StreamlineId, Vec3)> = Vec::new();
                    let cap = self.params.slaves_per_master * self.params.n_assign;
                    while granted.len() < cap {
                        match self.take_seeds(cap - granted.len(), None) {
                            Some((_, mut seeds)) => granted.append(&mut seeds),
                            None => break,
                        }
                    }
                    self.group_total -= granted.len() as u64;
                    let m = Msg::WorkGrant { seeds: granted };
                    let bytes = m.wire_bytes(self.comm_geometry);
                    ctx.send(from, m, bytes);
                    self.report_remaining(ctx);
                }
                Msg::WorkGrant { seeds } => {
                    self.steal_outstanding = false;
                    self.group_total += seeds.len() as u64;
                    for (id, p) in seeds {
                        match self.decomp.locate(p) {
                            Some(b) if self.quarantined.contains(&b) => self.group_unavailable += 1,
                            Some(b) => self.pool.entry(b).or_default().push((id, p)),
                            None => self.group_pre_terminated += 1,
                        }
                    }
                    self.report_remaining(ctx);
                    self.assign_idle(ctx);
                }
                Msg::OutOfMemory { .. } => {}
                _ => {}
            },
            Event::Wake(WAKE_BEAT) => self.on_beat_tick(ctx),
            Event::Wake(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{uniform_x_dataset, NullCtx};

    fn master_with_seeds(n_seeds: usize, n_slaves: usize) -> MasterProc {
        let ds = uniform_x_dataset();
        let seeds = (0..n_seeds)
            .map(|i| {
                (
                    StreamlineId(i as u32),
                    Vec3::new(0.05 + 0.9 * (i as f64 / n_seeds.max(1) as f64), 0.3, 0.3),
                )
            })
            .collect();
        MasterProc::new(
            0,
            ds.decomp,
            HybridParams::default(),
            true,
            (1..=n_slaves).collect(),
            vec![0],
            seeds,
            7,
        )
    }

    fn commands_to(ctx: &NullCtx, rank: usize) -> Vec<&Command> {
        ctx.sent
            .iter()
            .filter_map(|(to, m, _)| match m {
                Msg::Command(c) if *to == rank => Some(c),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn start_assigns_n_seeds_per_slave() {
        let mut m = master_with_seeds(100, 3);
        let mut ctx = NullCtx::default();
        m.on_event(Event::Start, &mut ctx);
        for s in 1..=3 {
            let cmds = commands_to(&ctx, s);
            assert_eq!(cmds.len(), 1, "slave {s}");
            match cmds[0] {
                Command::AssignSeeds { seeds, .. } => assert_eq!(seeds.len(), 10),
                other => panic!("expected AssignSeeds, got {other:?}"),
            }
        }
        // 30 of 100 seeds handed out.
        let pooled: usize = m.pool.values().map(|v| v.len()).sum();
        assert_eq!(pooled, 70);
    }

    #[test]
    fn idle_slave_with_heavy_unloaded_block_gets_load_command() {
        let mut m = master_with_seeds(0, 2);
        let mut ctx = NullCtx::default();
        // Slave 1 idles with 50 streamlines parked in unloaded block 3.
        m.on_status(
            1,
            SlaveStatus {
                queued_by_block: vec![(BlockId(3), 50)],
                loaded: vec![BlockId(0)],
                active: 0,
                terminated_total: 0,
                out_of_work: true,
                acked_cmds: u64::MAX,
                failed_blocks: vec![],
            },
            &mut ctx,
        );
        let cmds = commands_to(&ctx, 1);
        assert!(
            cmds.iter().any(|c| matches!(c, Command::Load { block } if *block == BlockId(3))),
            "expected Load(B3), got {cmds:?}"
        );
    }

    #[test]
    fn idle_slave_with_light_parked_block_gets_send_force() {
        let mut m = master_with_seeds(0, 2);
        let mut ctx = NullCtx::default();
        // Slave 2 has block 3 loaded and capacity.
        m.on_status(
            2,
            SlaveStatus {
                queued_by_block: vec![],
                loaded: vec![BlockId(3)],
                active: 5,
                terminated_total: 0,
                out_of_work: false,
                acked_cmds: u64::MAX,
                failed_blocks: vec![],
            },
            &mut ctx,
        );
        // Slave 1 idles with 5 streamlines parked in block 3 (below N_L).
        m.on_status(
            1,
            SlaveStatus {
                queued_by_block: vec![(BlockId(3), 5)],
                loaded: vec![BlockId(0)],
                active: 0,
                terminated_total: 0,
                out_of_work: true,
                acked_cmds: u64::MAX,
                failed_blocks: vec![],
            },
            &mut ctx,
        );
        let cmds = commands_to(&ctx, 1);
        assert!(
            cmds.iter().any(
                |c| matches!(c, Command::SendForce { block, to } if *block == BlockId(3) && *to == 2)
            ),
            "expected SendForce(B3 → 2), got {cmds:?}"
        );
    }

    #[test]
    fn send_force_respects_overload_limit() {
        let mut m = master_with_seeds(0, 2);
        let mut ctx = NullCtx::default();
        // Slave 2 has block 3 loaded but is at the overload limit (200).
        m.on_status(
            2,
            SlaveStatus {
                queued_by_block: vec![],
                loaded: vec![BlockId(3)],
                active: 200,
                terminated_total: 0,
                out_of_work: false,
                acked_cmds: u64::MAX,
                failed_blocks: vec![],
            },
            &mut ctx,
        );
        m.on_status(
            1,
            SlaveStatus {
                queued_by_block: vec![(BlockId(3), 5)],
                loaded: vec![],
                active: 0,
                terminated_total: 0,
                out_of_work: true,
                acked_cmds: u64::MAX,
                failed_blocks: vec![],
            },
            &mut ctx,
        );
        let cmds = commands_to(&ctx, 1);
        assert!(
            !cmds.iter().any(|c| matches!(c, Command::SendForce { .. })),
            "must not overload slave 2: {cmds:?}"
        );
        // Falls through to rule 6: load its own block.
        assert!(cmds.iter().any(|c| matches!(c, Command::Load { .. })));
    }

    #[test]
    fn starving_slave_triggers_hint_to_busiest() {
        let mut m = master_with_seeds(0, 3);
        let mut ctx = NullCtx::default();
        // Slave 2 is busy with parked work in unloaded block 5.
        m.on_status(
            2,
            SlaveStatus {
                queued_by_block: vec![(BlockId(5), 30)],
                loaded: vec![BlockId(1)],
                active: 40,
                terminated_total: 0,
                out_of_work: false,
                acked_cmds: u64::MAX,
                failed_blocks: vec![],
            },
            &mut ctx,
        );
        // Slave 1 idles with nothing at all.
        m.on_status(
            1,
            SlaveStatus {
                queued_by_block: vec![],
                loaded: vec![],
                active: 0,
                terminated_total: 0,
                out_of_work: true,
                acked_cmds: u64::MAX,
                failed_blocks: vec![],
            },
            &mut ctx,
        );
        let hints = commands_to(&ctx, 2);
        assert!(
            hints.iter().any(|c| matches!(c, Command::SendHint { to, .. } if *to == 1)),
            "expected hint to slave 2 on behalf of 1, got {hints:?}"
        );
    }

    #[test]
    fn termination_when_all_groups_report_zero() {
        let mut m = master_with_seeds(10, 1);
        let mut ctx = NullCtx::default();
        m.on_event(Event::Start, &mut ctx);
        assert!(!ctx.stopped);
        // The slave terminates everything it was given (10 seeds).
        m.on_status(
            1,
            SlaveStatus {
                queued_by_block: vec![],
                loaded: vec![BlockId(0)],
                active: 0,
                terminated_total: 10,
                out_of_work: true,
                acked_cmds: u64::MAX,
                failed_blocks: vec![],
            },
            &mut ctx,
        );
        assert!(ctx.stopped, "root master must stop the run at zero remaining");
        assert!(m.done);
        // A Terminate command was sent to the slave.
        assert!(commands_to(&ctx, 1).iter().any(|c| matches!(c, Command::Terminate)));
    }

    #[test]
    fn work_request_grants_seeds_and_adjusts_totals() {
        let mut m = master_with_seeds(100, 1);
        let mut ctx = NullCtx::default();
        let before = m.group_total;
        m.on_event(Event::Message { from: 9, msg: Msg::WorkRequest }, &mut ctx);
        let grant = ctx
            .sent
            .iter()
            .find_map(|(to, msg, _)| match msg {
                Msg::WorkGrant { seeds } if *to == 9 => Some(seeds.len()),
                _ => None,
            })
            .expect("grant sent");
        assert!(grant > 0);
        assert_eq!(m.group_total, before - grant as u64);
    }

    #[test]
    fn stale_status_does_not_revert_decisions() {
        // Regression for the command/status race: after the master issues
        // Load(B3), a status that was already in flight (acking fewer
        // commands) must NOT make it re-issue Load(B3).
        let mut m = master_with_seeds(0, 1);
        let mut ctx = NullCtx::default();
        // Fresh status: slave 1 idle with 50 parked in unloaded B3.
        m.on_status(
            1,
            SlaveStatus {
                queued_by_block: vec![(BlockId(3), 50)],
                loaded: vec![],
                active: 0,
                terminated_total: 0,
                out_of_work: true,
                acked_cmds: 0,
                failed_blocks: vec![],
            },
            &mut ctx,
        );
        let loads_before = m.cmd_counts[3];
        assert_eq!(loads_before, 1, "first status triggers the Load");
        // A stale duplicate (acked_cmds still 0 < cmds_sent 1) arrives.
        m.on_status(
            1,
            SlaveStatus {
                queued_by_block: vec![(BlockId(3), 50)],
                loaded: vec![],
                active: 0,
                terminated_total: 0,
                out_of_work: true,
                acked_cmds: 0,
                failed_blocks: vec![],
            },
            &mut ctx,
        );
        assert_eq!(m.cmd_counts[3], loads_before, "stale status re-issued a Load");
        // The acknowledging status unblocks further assignment. (This
        // zero-seed master also sent a Terminate on its first status —
        // remaining hit zero immediately — so two commands are in flight.)
        m.on_status(
            1,
            SlaveStatus {
                queued_by_block: vec![(BlockId(5), 50)],
                loaded: vec![BlockId(3)],
                active: 0,
                terminated_total: 30,
                out_of_work: true,
                acked_cmds: m.records[&1].cmds_sent,
                failed_blocks: vec![],
            },
            &mut ctx,
        );
        assert_eq!(m.cmd_counts[3], loads_before + 1, "fresh status resumes work");
    }

    #[test]
    fn stale_status_still_counts_terminations() {
        // Terminated counts are monotone and must be folded in even from
        // stale statuses, or the global count would stall.
        let mut m = master_with_seeds(10, 1);
        let mut ctx = NullCtx::default();
        m.on_event(Event::Start, &mut ctx); // sends AssignSeeds (1 command)
        m.on_status(
            1,
            SlaveStatus {
                queued_by_block: vec![],
                loaded: vec![],
                active: 0,
                terminated_total: 10,
                out_of_work: true,
                acked_cmds: 0, // stale!
                failed_blocks: vec![],
            },
            &mut ctx,
        );
        assert_eq!(m.remaining(), 0, "stale status must still deliver terminations");
        assert!(ctx.stopped, "root master stops at zero remaining");
    }

    #[test]
    fn hint_is_throttled() {
        let mut m = master_with_seeds(0, 3);
        let mut ctx = NullCtx::default();
        // Slave 2 busy with parked work in an unloaded block (hint target).
        m.on_status(
            2,
            SlaveStatus {
                queued_by_block: vec![(BlockId(5), 30)],
                loaded: vec![BlockId(1)],
                active: 40,
                terminated_total: 0,
                out_of_work: false,
                acked_cmds: u64::MAX,
                failed_blocks: vec![],
            },
            &mut ctx,
        );
        // Slave 1 idles repeatedly; only the first idle status may hint.
        for _ in 0..5 {
            m.on_status(
                1,
                SlaveStatus {
                    queued_by_block: vec![],
                    loaded: vec![],
                    active: 0,
                    terminated_total: 0,
                    out_of_work: true,
                    acked_cmds: u64::MAX,
                    failed_blocks: vec![],
                },
                &mut ctx,
            );
        }
        // The throttle admits at most one hint per half-group of statuses:
        // far fewer than the five idle reports.
        assert!(m.cmd_counts[2] <= 2, "hints must be throttled, got {}", m.cmd_counts[2]);
    }

    #[test]
    fn failed_blocks_quarantine_pool_seeds() {
        // 100 seeds spread along x over a 2x2x2 decomposition; none handed
        // out yet. A slave reporting block 0 as unloadable must make the
        // master discard block 0's pooled seeds and count them terminated.
        let mut m = master_with_seeds(100, 2);
        let mut ctx = NullCtx::default();
        let pooled_in_b0 = m.pool.get(&BlockId(0)).map(|v| v.len()).unwrap_or(0);
        assert!(pooled_in_b0 > 0, "test needs seeds in block 0");
        m.on_status(
            1,
            SlaveStatus {
                queued_by_block: vec![],
                loaded: vec![],
                active: 0,
                terminated_total: 0,
                out_of_work: true,
                acked_cmds: u64::MAX,
                failed_blocks: vec![BlockId(0)],
            },
            &mut ctx,
        );
        assert!(!m.pool.contains_key(&BlockId(0)));
        assert_eq!(m.unavailable_seeds(), pooled_in_b0 as u64);
        assert_eq!(m.quarantined_blocks(), 1);
        assert_eq!(m.remaining(), 100 - pooled_in_b0 as u64);
        // Quarantine is idempotent: a repeat report changes nothing.
        m.on_status(
            1,
            SlaveStatus {
                queued_by_block: vec![],
                loaded: vec![],
                active: 0,
                terminated_total: 0,
                out_of_work: true,
                acked_cmds: u64::MAX,
                failed_blocks: vec![BlockId(0)],
            },
            &mut ctx,
        );
        assert_eq!(m.unavailable_seeds(), pooled_in_b0 as u64);
    }

    #[test]
    fn snapshot_roundtrips_and_preserves_behaviour() {
        let mut m = master_with_seeds(60, 3);
        let mut ctx = NullCtx::default();
        m.on_event(Event::Start, &mut ctx);
        // Drive some state: one slave reports idle with parked work, another
        // reports busy — this exercises records, hints, and the RNG.
        m.on_status(
            2,
            SlaveStatus {
                queued_by_block: vec![(BlockId(5), 30)],
                loaded: vec![BlockId(1)],
                active: 40,
                terminated_total: 3,
                out_of_work: false,
                acked_cmds: u64::MAX,
                failed_blocks: vec![],
            },
            &mut ctx,
        );
        let snap = m.snapshot();

        let mut restored = master_with_seeds(60, 3);
        restored.restore(&snap);
        assert_eq!(restored.snapshot(), snap, "snapshot must round-trip exactly");

        // Behaviour equivalence: the same subsequent status produces the
        // same outgoing messages (including any RNG-driven hint picks).
        let storm = SlaveStatus {
            queued_by_block: vec![],
            loaded: vec![],
            active: 0,
            terminated_total: 0,
            out_of_work: true,
            acked_cmds: u64::MAX,
            failed_blocks: vec![],
        };
        let mut ctx_a = NullCtx::default();
        let mut ctx_b = NullCtx::default();
        m.on_status(1, storm.clone(), &mut ctx_a);
        restored.on_status(1, storm, &mut ctx_b);
        assert_eq!(ctx_a.sent, ctx_b.sent, "restored master must act identically");
        assert_eq!(m.snapshot(), restored.snapshot());
    }

    #[test]
    fn work_grant_replenishes_pool() {
        let ds = uniform_x_dataset();
        let mut m = MasterProc::new(
            0,
            ds.decomp,
            HybridParams::default(),
            true,
            vec![1],
            vec![0, 9],
            vec![],
            7,
        );
        let mut ctx = NullCtx::default();
        let seeds = vec![(StreamlineId(0), Vec3::splat(0.2)), (StreamlineId(1), Vec3::splat(0.7))];
        m.on_event(Event::Message { from: 9, msg: Msg::WorkGrant { seeds } }, &mut ctx);
        assert_eq!(m.group_total, 2);
        assert_eq!(m.pool.values().map(|v| v.len()).sum::<usize>(), 2);
    }
}
