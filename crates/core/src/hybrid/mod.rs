//! The Hybrid Master/Slave algorithm (§4.3) — the paper's contribution.
//!
//! Ranks are split into masters and slaves: with the paper's `W = 32`, one
//! master coordinates each group of 32 slaves ("For scalable performance, we
//! introduce the concept of multiple masters"). Masters dynamically assign
//! both streamlines and blocks using five rules, balancing I/O against
//! communication; slaves integrate and report status.

pub mod master;
pub mod slave;

pub use master::{MasterProc, MasterSnapshot, SlaveRecordSnapshot, ROOT_MASTER};
pub use slave::{SlaveProc, SlaveSnapshot};

/// Rank layout for a hybrid run: the first `n_masters` ranks are masters,
/// the rest are slaves assigned to masters round-robin-contiguously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridLayout {
    pub n_procs: usize,
    pub n_masters: usize,
}

impl HybridLayout {
    pub fn new(n_procs: usize, n_masters: usize) -> Self {
        assert!(n_masters >= 1 && n_masters < n_procs, "need >= 1 master and >= 1 slave");
        HybridLayout { n_procs, n_masters }
    }

    pub fn is_master(&self, rank: usize) -> bool {
        rank < self.n_masters
    }

    pub fn master_ranks(&self) -> Vec<usize> {
        (0..self.n_masters).collect()
    }

    pub fn n_slaves(&self) -> usize {
        self.n_procs - self.n_masters
    }

    /// The master that manages slave `rank`.
    pub fn master_of(&self, slave_rank: usize) -> usize {
        debug_assert!(!self.is_master(slave_rank));
        let slave_idx = slave_rank - self.n_masters;
        // Contiguous groups of ceil(n_slaves / n_masters).
        let group = self.n_slaves().div_ceil(self.n_masters);
        (slave_idx / group).min(self.n_masters - 1)
    }

    /// Slave ranks managed by `master_rank`.
    pub fn slaves_of(&self, master_rank: usize) -> Vec<usize> {
        debug_assert!(self.is_master(master_rank));
        (self.n_masters..self.n_procs).filter(|&s| self.master_of(s) == master_rank).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_partitions_slaves() {
        let l = HybridLayout::new(10, 3);
        assert_eq!(l.n_slaves(), 7);
        let mut all: Vec<usize> = Vec::new();
        for m in l.master_ranks() {
            let s = l.slaves_of(m);
            for &x in &s {
                assert_eq!(l.master_of(x), m);
            }
            all.extend(s);
        }
        all.sort();
        assert_eq!(all, (3..10).collect::<Vec<_>>());
    }

    #[test]
    fn every_master_gets_slaves_when_possible() {
        let l = HybridLayout::new(66, 2);
        assert_eq!(l.slaves_of(0).len(), 32);
        assert_eq!(l.slaves_of(1).len(), 32);
    }

    #[test]
    fn single_master_owns_everyone() {
        let l = HybridLayout::new(5, 1);
        assert_eq!(l.slaves_of(0), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "need >= 1 master")]
    fn no_slaves_rejected() {
        HybridLayout::new(3, 3);
    }
}
