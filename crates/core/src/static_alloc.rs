//! Static Allocation (§4.1): parallelize across blocks.
//!
//! "We statically allocate blocks to processors such that the first of n
//! processors is assigned the first 1/n of the blocks ... Each streamline is
//! integrated until it leaves the blocks owned by the processor. As each
//! streamline moves between blocks, it is communicated to the processor that
//! owns the block in which it currently resides. A globally communicated
//! streamline count is maintained ... Once the count goes to zero, all
//! processors terminate."
//!
//! Blocks are loaded lazily on first touch and never purged (each rank's
//! cache holds its whole ownership range), which is why this algorithm's
//! block efficiency is the paper's ideal of 1.0.

use crate::config::MemoryBudget;
use crate::ingest::EpochMap;
use crate::msg::Msg;
use crate::termination::{AnyDetector, DetectorKind, TerminationDetector};
use crate::workspace::{BlockExit, Workspace, WorkspaceSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;
use streamline_desim::{Context, Event, HeartbeatMonitor, Process};
use streamline_field::block::BlockId;
use streamline_integrate::{Streamline, StreamlineId};
use streamline_iosim::StoreError;
use streamline_math::Vec3;

/// Rank that maintains the global active-streamline count.
pub const COUNT_RANK: usize = 0;

/// Resilient mode only: periodic heartbeat-and-sweep tick.
const WAKE_BEAT: u64 = 10;

/// How blocks map to ranks. The paper's scheme is [`Self::Contiguous`]
/// ("the first of n processors is assigned the first 1/n of the blocks");
/// [`Self::RoundRobin`] is the classic alternative, ablated by
/// `partition_ablation`: it spreads dense seed sets across ranks at the
/// price of every block crossing being a hand-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum StaticPartition {
    Contiguous,
    RoundRobin,
}

impl StaticPartition {
    pub fn owner_of(self, block: BlockId, n_blocks: usize, n_procs: usize) -> usize {
        debug_assert!(block.index() < n_blocks);
        match self {
            StaticPartition::Contiguous => block.index() * n_procs / n_blocks,
            StaticPartition::RoundRobin => block.index() % n_procs,
        }
    }
}

/// Contiguous block ownership: block `b` of `n_blocks` belongs to this rank
/// of `n_procs` (the paper's §4.1 scheme).
pub fn owner_of(block: BlockId, n_blocks: usize, n_procs: usize) -> usize {
    StaticPartition::Contiguous.owner_of(block, n_blocks, n_procs)
}

/// Serializable image of a [`StaticProc`] mid-run. Configuration fields
/// (rank, partition, budgets) are rebuilt from the run config; only genuine
/// run state is stored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticSnapshot {
    pub ws: WorkspaceSnapshot,
    pub seeds: Vec<(StreamlineId, Vec3)>,
    pub finished: Vec<Streamline>,
    /// Legacy mirror of the detector's outstanding count, kept so
    /// pre-detector snapshots restore (and new snapshots stay readable by
    /// eye).
    pub remaining: u64,
    pub failed_oom: bool,
    /// The termination detector (count rank only holds real state). Absent
    /// in pre-detector snapshots — reconstructed from `remaining`.
    #[serde(default)]
    pub detector: Option<AnyDetector>,
    #[serde(default)]
    pub seen: Vec<u32>,
    #[serde(default)]
    pub pingponged: Vec<u32>,
    #[serde(default)]
    pub pingpong_times: Vec<f64>,
    /// Absent in pre-resilience snapshots.
    #[serde(default)]
    pub resil: Option<StaticResil>,
}

/// Per-rank fail-stop resilience state for Static Allocation. Every rank
/// beats every peer each heartbeat period and watches all of them, so each
/// survivor detects each death independently (no gossip channel is needed)
/// and all survivors converge on the same ownership rerouting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticResil {
    /// Virtual seconds between heartbeat ticks.
    pub heartbeat_period: f64,
    /// Ticks stop re-arming past this virtual time, bounding the event
    /// count of any death schedule.
    pub beat_deadline: f64,
    /// Failure detector over all peers.
    pub monitor: HeartbeatMonitor,
    /// A heartbeat tick is armed.
    pub beat_armed: bool,
    /// This rank's view of dead ranks, sorted.
    pub dead: Vec<u32>,
    /// Dead ranks whose initial seeds this rank has already re-seeded
    /// (adoption happens once, surviving checkpoint/resume).
    pub adopted: Vec<u32>,
    /// `(rank, virtual time)` of each death this rank's monitor detected.
    pub suspected_at: Vec<(usize, f64)>,
    /// Streamlines this rank re-seeded on behalf of dead ranks.
    #[serde(default)]
    pub reassigned: u64,
}

impl StaticResil {
    fn new(heartbeat_period: f64, suspect_timeout: f64, beat_deadline: f64) -> Self {
        StaticResil {
            heartbeat_period,
            beat_deadline,
            monitor: HeartbeatMonitor::new(suspect_timeout),
            beat_armed: false,
            dead: Vec::new(),
            adopted: Vec::new(),
            suspected_at: Vec::new(),
            reassigned: 0,
        }
    }

    fn is_dead(&self, rank: usize) -> bool {
        self.dead.binary_search(&(rank as u32)).is_ok()
    }
}

/// One Static Allocation rank.
pub struct StaticProc {
    rank: usize,
    n_procs: usize,
    ws: Workspace,
    /// Seeds assigned to this rank (they lie in its owned blocks).
    seeds: Vec<(StreamlineId, Vec3)>,
    /// Finished streamlines kept for inspection (geometry stays resident,
    /// which is what the memory model charges).
    pub finished: Vec<Streamline>,
    memory: MemoryBudget,
    comm_geometry: bool,
    h0: f64,
    partition: StaticPartition,
    /// Global termination detector — only meaningful on [`COUNT_RANK`],
    /// where it holds the "globally communicated streamline count" of §4.1
    /// (closed-set) or the per-epoch frontier ledger (open-loop).
    detector: AnyDetector,
    /// Streamline id → ingest epoch (identity for closed runs). Rebuilt
    /// from the run config, never snapshotted.
    emap: EpochMap,
    /// Set when this rank exceeded its memory budget.
    pub failed_oom: bool,
    /// Streamline ids this rank has ever owned (seeded here or handed in).
    seen: BTreeSet<u32>,
    /// Ids that were handed back after leaving — ping-pong streamlines.
    pingponged: BTreeSet<u32>,
    /// Virtual times at which each ping-pong was first detected.
    pingpong_times: Vec<f64>,
    /// Fail-stop resilience machinery; `None` outside rank-chaos runs so
    /// fault-free schedules are untouched.
    resil: Option<StaticResil>,
    /// Every rank's initial seed assignment (shared, read-only): the live
    /// successor of a dead rank re-seeds its slice. Rebuilt from the run
    /// config, never snapshotted.
    all_seeds: Arc<Vec<Vec<(StreamlineId, Vec3)>>>,
}

impl StaticProc {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rank: usize,
        n_procs: usize,
        ws: Workspace,
        seeds: Vec<(StreamlineId, Vec3)>,
        memory: MemoryBudget,
        comm_geometry: bool,
        h0: f64,
        total_streamlines: u64,
        partition: StaticPartition,
    ) -> Self {
        StaticProc {
            rank,
            n_procs,
            ws,
            seeds,
            finished: Vec::new(),
            memory,
            comm_geometry,
            h0,
            partition,
            detector: if rank == COUNT_RANK {
                AnyDetector::sealed_over(DetectorKind::ClosedSet, &[total_streamlines])
            } else {
                AnyDetector::new(DetectorKind::ClosedSet)
            },
            emap: EpochMap::closed(total_streamlines as u32),
            failed_oom: false,
            seen: BTreeSet::new(),
            pingponged: BTreeSet::new(),
            pingpong_times: Vec::new(),
            resil: None,
            all_seeds: Arc::new(Vec::new()),
        }
    }

    /// Select the termination detector and ingest plan for this rank. The
    /// count rank's detector is pre-opened and sealed over the whole plan
    /// (`epoch_totals[e]` seeds in epoch `e`); with the default
    /// `ClosedSet` kind and a single epoch this is exactly the legacy
    /// `remaining` counter.
    pub fn with_ingest(mut self, kind: DetectorKind, epoch_totals: &[u64], emap: EpochMap) -> Self {
        self.emap = emap;
        self.detector = if self.rank == COUNT_RANK {
            AnyDetector::sealed_over(kind, epoch_totals)
        } else {
            AnyDetector::new(kind)
        };
        self
    }

    /// This rank's termination detector (real state on [`COUNT_RANK`]).
    pub fn detector(&self) -> &AnyDetector {
        &self.detector
    }

    /// Switch this rank into resilient mode (rank-chaos runs only):
    /// all-peer heartbeats until `beat_deadline`, a `suspect_timeout`
    /// failure detector, handoff rerouting around dead owners, and seed
    /// adoption by the dead rank's first live successor.
    pub fn with_resilience(
        mut self,
        all_seeds: Arc<Vec<Vec<(StreamlineId, Vec3)>>>,
        heartbeat_period: f64,
        suspect_timeout: f64,
        beat_deadline: f64,
    ) -> Self {
        self.resil = Some(StaticResil::new(heartbeat_period, suspect_timeout, beat_deadline));
        self.all_seeds = all_seeds;
        self
    }

    /// Deaths this rank's own failure detector observed, as
    /// `(rank, virtual suspicion time)`.
    pub fn suspected_at(&self) -> &[(usize, f64)] {
        self.resil.as_ref().map_or(&[], |r| r.suspected_at.as_slice())
    }

    /// Streamlines this rank re-seeded on behalf of dead ranks.
    pub fn reassigned(&self) -> u64 {
        self.resil.as_ref().map_or(0, |r| r.reassigned)
    }

    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }

    /// Ids that returned to this rank after leaving it.
    pub fn pingponged(&self) -> &BTreeSet<u32> {
        &self.pingponged
    }

    /// Virtual times of first ping-pong detection, in arrival order.
    pub fn pingpong_times(&self) -> &[f64] {
        &self.pingpong_times
    }

    /// First ownership or return of a streamline id on this rank; a return
    /// is a ping-pong, recorded once per id.
    fn note_arrival(&mut self, id: StreamlineId, now: f64) {
        if !self.seen.insert(id.0) && self.pingponged.insert(id.0) {
            self.pingpong_times.push(now);
        }
    }

    /// Capture this rank's mid-run state for a checkpoint.
    pub fn snapshot(&self) -> StaticSnapshot {
        StaticSnapshot {
            ws: self.ws.snapshot(),
            seeds: self.seeds.clone(),
            finished: self.finished.clone(),
            remaining: self.detector.outstanding(),
            failed_oom: self.failed_oom,
            detector: Some(self.detector.clone()),
            seen: self.seen.iter().copied().collect(),
            pingponged: self.pingponged.iter().copied().collect(),
            pingpong_times: self.pingpong_times.clone(),
            resil: self.resil.clone(),
        }
    }

    /// Restore a snapshot onto a freshly built rank (same config/dataset).
    pub fn restore(&mut self, snap: &StaticSnapshot) -> Result<(), StoreError> {
        self.ws.restore(&snap.ws)?;
        self.seeds = snap.seeds.clone();
        self.finished = snap.finished.clone();
        self.detector = match &snap.detector {
            Some(d) => d.clone(),
            // Pre-detector snapshot: reconstruct the legacy counter.
            None if self.rank == COUNT_RANK => {
                AnyDetector::sealed_over(DetectorKind::ClosedSet, &[snap.remaining])
            }
            None => AnyDetector::new(DetectorKind::ClosedSet),
        };
        self.failed_oom = snap.failed_oom;
        self.seen = snap.seen.iter().copied().collect();
        self.pingponged = snap.pingponged.iter().copied().collect();
        self.pingpong_times = snap.pingpong_times.clone();
        self.resil = snap.resil.clone();
        Ok(())
    }

    /// The rank a block's work is routed to: the partition owner, or — once
    /// that owner is known dead — its first live successor (cyclic by rank
    /// id). All survivors with converged views route identically.
    fn effective_owner(&self, block: BlockId) -> usize {
        let owner = self.partition.owner_of(block, self.ws.decomp.num_blocks(), self.n_procs);
        match &self.resil {
            Some(r) if r.is_dead(owner) => (1..self.n_procs)
                .map(|k| (owner + k) % self.n_procs)
                .find(|&p| p == self.rank || !r.is_dead(p))
                .unwrap_or(self.rank),
            _ => owner,
        }
    }

    fn owns(&self, block: BlockId) -> bool {
        self.effective_owner(block) == self.rank
    }

    fn check_memory(&mut self, ctx: &mut dyn Context<Msg>) -> bool {
        if self.memory.exceeded(self.ws.memory_bytes()) {
            self.failed_oom = true;
            if self.rank != COUNT_RANK {
                let m = Msg::OutOfMemory { rank: self.rank };
                let bytes = m.wire_bytes(self.comm_geometry);
                ctx.send(COUNT_RANK, m, bytes);
            }
            ctx.stop_all();
            return true;
        }
        false
    }

    /// Integrate `sl` through this rank's blocks; hand off or finish.
    /// Returns the number of streamlines that terminated here (0 or 1).
    fn process(&mut self, mut sl: Streamline, ctx: &mut dyn Context<Msg>) -> u64 {
        let mut cur = match self.ws.locate(sl.state.position) {
            Some(b) => b,
            None => {
                // Seeded outside the domain: terminates immediately.
                sl.terminate(streamline_integrate::Termination::ExitedDomain);
                self.ws.terminated += 1;
                self.ws.retire_object();
                self.finished.push(sl);
                return 1;
            }
        };
        loop {
            if !self.owns(cur) {
                self.ws.release(&sl);
                let m = Msg::Handoff { sl: Box::new(sl) };
                let bytes = m.wire_bytes(self.comm_geometry);
                let to = self.effective_owner(cur);
                ctx.send(to, m, bytes);
                return 0;
            }
            if self.ws.try_acquire(cur, ctx).is_err() {
                // The block is gone for good (retries exhausted): the
                // streamline cannot proceed. Terminate it here so it still
                // counts toward the global active count and no rank blocks
                // forever waiting for it.
                self.ws.terminate_unavailable(&mut sl);
                self.finished.push(sl);
                return 1;
            }
            match self.ws.advance_in(&mut sl, cur, ctx) {
                BlockExit::MovedTo(next) => cur = next,
                BlockExit::Done(_) => {
                    self.finished.push(sl);
                    return 1;
                }
            }
            if self.check_memory(ctx) {
                return 0;
            }
        }
    }

    /// Integrate a whole locally-seeded group through this rank's blocks via
    /// the batch kernel: lanes are grouped by current block (lowest id
    /// first), each block's queue is advanced in chunks of the workspace
    /// batch width, and lanes that cross into another owned block rejoin the
    /// worklist. Lanes crossing into foreign blocks hand off; lanes in
    /// unloadable blocks terminate typed. Returns the number of streamlines
    /// that terminated here.
    fn process_group(&mut self, group: Vec<Streamline>, ctx: &mut dyn Context<Msg>) -> u64 {
        let lanes = self.ws.batch_lanes();
        let mut done = 0;
        let mut worklist: std::collections::BTreeMap<BlockId, Vec<Streamline>> =
            std::collections::BTreeMap::new();
        for mut sl in group {
            match self.ws.locate(sl.state.position) {
                Some(b) => worklist.entry(b).or_default().push(sl),
                None => {
                    sl.terminate(streamline_integrate::Termination::ExitedDomain);
                    self.ws.terminated += 1;
                    self.ws.retire_object();
                    self.finished.push(sl);
                    done += 1;
                }
            }
        }
        while let Some((&block, _)) = worklist.iter().next() {
            let mut list = worklist.remove(&block).expect("key just found");
            if !self.owns(block) {
                let to = self.effective_owner(block);
                for sl in list {
                    self.ws.release(&sl);
                    let m = Msg::Handoff { sl: Box::new(sl) };
                    let bytes = m.wire_bytes(self.comm_geometry);
                    ctx.send(to, m, bytes);
                }
                continue;
            }
            if self.ws.try_acquire(block, ctx).is_err() {
                for mut sl in list {
                    self.ws.terminate_unavailable(&mut sl);
                    self.finished.push(sl);
                    done += 1;
                }
                continue;
            }
            while !list.is_empty() {
                let take = lanes.min(list.len());
                let mut chunk = list.split_off(list.len() - take);
                chunk.reverse();
                let exits = self.ws.advance_batch_in(&mut chunk, block, ctx);
                for (sl, exit) in chunk.into_iter().zip(exits) {
                    match exit {
                        BlockExit::MovedTo(next) => worklist.entry(next).or_default().push(sl),
                        BlockExit::Done(_) => {
                            self.finished.push(sl);
                            done += 1;
                        }
                    }
                }
                if self.check_memory(ctx) {
                    return done;
                }
            }
        }
        done
    }

    /// Per-epoch split of the last `n` entries of `finished` (exactly the
    /// streamlines terminated by the call that is about to flush them).
    /// Empty for single-epoch runs — the closed wire format.
    fn epoch_split(&self, n: usize) -> Vec<(u32, u32)> {
        if self.emap.n_epochs() <= 1 || n == 0 {
            return Vec::new();
        }
        let mut m: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
        for sl in &self.finished[self.finished.len() - n..] {
            *m.entry(self.emap.epoch_of(sl.id)).or_default() += 1;
        }
        m.into_iter().collect()
    }

    /// Report `count` local terminations toward the global count.
    fn flush_terminations(&mut self, count: u64, ctx: &mut dyn Context<Msg>) {
        if count == 0 {
            return;
        }
        let by_epoch = self.epoch_split(count as usize);
        if self.rank == COUNT_RANK {
            self.apply_count(count, &by_epoch, ctx);
        } else {
            let m = Msg::CountDelta { count: count as u32, by_epoch };
            let bytes = m.wire_bytes(self.comm_geometry);
            ctx.send(COUNT_RANK, m, bytes);
        }
    }

    fn apply_count(&mut self, count: u64, by_epoch: &[(u32, u32)], ctx: &mut dyn Context<Msg>) {
        debug_assert_eq!(self.rank, COUNT_RANK);
        // Re-seeded work after a death can legitimately over-count; outside
        // resilient mode an underflow is still a protocol bug.
        debug_assert!(
            self.resil.is_some() || self.detector.outstanding() >= count,
            "count underflow"
        );
        let now = ctx.now();
        if by_epoch.is_empty() {
            self.detector.retire(0, count, now);
        } else {
            debug_assert_eq!(by_epoch.iter().map(|&(_, c)| c as u64).sum::<u64>(), count);
            for &(epoch, c) in by_epoch {
                self.detector.retire(epoch, c as u64, now);
            }
        }
        if self.detector.is_done() {
            ctx.stop_all();
        }
    }

    fn arm_beat(&mut self, ctx: &mut dyn Context<Msg>) {
        if let Some(r) = self.resil.as_mut() {
            if !r.beat_armed {
                r.beat_armed = true;
                ctx.wake_after(r.heartbeat_period, WAKE_BEAT);
            }
        }
    }

    /// Heartbeat tick: sweep the failure detector (adopting the work of any
    /// newly dead rank), beat every live peer, re-arm until the deadline.
    fn on_beat_tick(&mut self, ctx: &mut dyn Context<Msg>) {
        let now = ctx.now();
        let newly = {
            let Some(r) = self.resil.as_mut() else { return };
            r.beat_armed = false;
            r.monitor.sweep(now)
        };
        for rank in newly {
            self.apply_death(rank, now, ctx);
            if self.failed_oom {
                return;
            }
        }
        let beating = self.resil.as_ref().is_some_and(|r| now <= r.beat_deadline);
        if beating && self.n_procs > 1 {
            let peers: Vec<usize> = (0..self.n_procs)
                .filter(|&p| p != self.rank && !self.resil.as_ref().is_some_and(|r| r.is_dead(p)))
                .collect();
            for p in peers {
                let m = Msg::Beat { done: false };
                let bytes = m.wire_bytes(self.comm_geometry);
                ctx.send(p, m, bytes);
            }
            self.arm_beat(ctx);
        }
    }

    /// A peer is now known dead: record it, and — if this rank is the dead
    /// rank's first live successor — adopt its initial seed assignment.
    /// Streamlines the dead rank held mid-flight are unrecoverable and are
    /// synthesized as [`streamline_integrate::Termination::RankLost`] when
    /// the run is collected; ids the adopter re-integrates are deduplicated
    /// there by id.
    fn apply_death(&mut self, rank: usize, now: f64, ctx: &mut dyn Context<Msg>) {
        {
            let Some(r) = self.resil.as_mut() else { return };
            let Err(i) = r.dead.binary_search(&(rank as u32)) else { return };
            r.dead.insert(i, rank as u32);
            r.suspected_at.push((rank, now));
        }
        let r = self.resil.as_ref().expect("resilient mode");
        let adopter = (1..self.n_procs)
            .map(|k| (rank + k) % self.n_procs)
            .find(|&p| p == self.rank || !r.is_dead(p));
        let already = r.adopted.binary_search(&(rank as u32));
        if adopter != Some(self.rank) || already.is_ok() {
            return;
        }
        if let Err(i) = already {
            self.resil.as_mut().expect("resilient mode").adopted.insert(i, rank as u32);
        }
        let orphan_seeds = self.all_seeds.get(rank).cloned().unwrap_or_default();
        if orphan_seeds.is_empty() {
            return;
        }
        if let Some(r) = self.resil.as_mut() {
            r.reassigned += orphan_seeds.len() as u64;
        }
        let mut created: Vec<Streamline> = Vec::with_capacity(orphan_seeds.len());
        for (id, seed) in orphan_seeds {
            self.note_arrival(id, now);
            let sl = Streamline::new_lean(id, seed, self.h0);
            self.ws.admit(&sl);
            created.push(sl);
        }
        if self.check_memory(ctx) {
            return;
        }
        let done = self.process_group(created, ctx);
        if !self.failed_oom {
            self.flush_terminations(done, ctx);
        }
    }
}

impl Process<Msg> for StaticProc {
    fn on_event(&mut self, ev: Event<Msg>, ctx: &mut dyn Context<Msg>) {
        if let (Event::Message { from, .. }, Some(r)) = (&ev, self.resil.as_mut()) {
            // Any message is proof of life from its sender.
            r.monitor.beat(*from, ctx.now());
        }
        match ev {
            Event::Start => {
                if self.resil.is_some() && self.n_procs > 1 {
                    let now = ctx.now();
                    let peers: Vec<usize> = (0..self.n_procs).filter(|&p| p != self.rank).collect();
                    if let Some(r) = self.resil.as_mut() {
                        for p in peers {
                            r.monitor.watch(p, now);
                        }
                    }
                    self.arm_beat(ctx);
                }
                // Instantiate the entire local seed set before integrating —
                // the initialization pattern that makes dense seeding fatal
                // in §5.3 ("all 22,000 seed points were being processed on a
                // single processor").
                let seeds = std::mem::take(&mut self.seeds);
                let mut created: Vec<Streamline> = Vec::with_capacity(seeds.len());
                let now = ctx.now();
                for (id, seed) in seeds {
                    self.note_arrival(id, now);
                    let sl = Streamline::new_lean(id, seed, self.h0);
                    self.ws.admit(&sl);
                    created.push(sl);
                }
                if self.check_memory(ctx) {
                    return;
                }
                let done = self.process_group(created, ctx);
                if self.failed_oom {
                    return;
                }
                self.flush_terminations(done, ctx);
                // A degenerate (zero-seed) plan is already complete: the
                // count rank must stop the world now — no termination will
                // ever arrive to trigger it.
                if self.rank == COUNT_RANK && self.detector.is_done() {
                    ctx.stop_all();
                }
            }
            Event::Message { msg: Msg::Ingest { seeds, .. }, .. } => {
                // An open-loop batch, pre-routed to this rank by block
                // owner: instantiate and integrate exactly like start-time
                // seeds (epoch recovery is by id, not by tag).
                let now = ctx.now();
                let mut created: Vec<Streamline> = Vec::with_capacity(seeds.len());
                for (id, seed) in seeds {
                    self.note_arrival(id, now);
                    let sl = Streamline::new_lean(id, seed, self.h0);
                    self.ws.admit(&sl);
                    created.push(sl);
                }
                if self.check_memory(ctx) {
                    return;
                }
                let done = self.process_group(created, ctx);
                if self.failed_oom {
                    return;
                }
                self.flush_terminations(done, ctx);
            }
            Event::Message { msg: Msg::Handoff { sl }, .. } => {
                self.note_arrival(sl.id, ctx.now());
                self.ws.admit(&sl);
                let done = self.process(*sl, ctx);
                if self.failed_oom {
                    return;
                }
                self.flush_terminations(done, ctx);
            }
            Event::Message { msg: Msg::CountDelta { count, by_epoch }, .. } => {
                self.apply_count(count as u64, &by_epoch, ctx);
            }
            Event::Message { msg: Msg::OutOfMemory { .. }, .. } => {
                // Another rank died; the world is already stopping.
            }
            Event::Wake(WAKE_BEAT) => self.on_beat_tick(ctx),
            Event::Message { .. } | Event::Wake(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_contiguous_and_balanced() {
        let n_blocks = 512;
        let n_procs = 64;
        let mut counts = vec![0usize; n_procs];
        let mut last_owner = 0;
        for b in 0..n_blocks {
            let o = owner_of(BlockId(b as u32), n_blocks, n_procs);
            assert!(o >= last_owner, "ownership must be monotone");
            last_owner = o;
            counts[o] += 1;
        }
        // 512 / 64 = 8 blocks each.
        assert!(counts.iter().all(|&c| c == 8));
    }

    #[test]
    fn ownership_handles_non_divisible() {
        let n_blocks = 10;
        let n_procs = 3;
        let counts = (0..n_blocks).fold(vec![0usize; n_procs], |mut acc, b| {
            acc[owner_of(BlockId(b as u32), n_blocks, n_procs)] += 1;
            acc
        });
        assert_eq!(counts.iter().sum::<usize>(), n_blocks);
        assert!(counts.iter().all(|&c| (3..=4).contains(&c)), "{counts:?}");
    }

    #[test]
    fn first_processor_gets_first_blocks() {
        // §4.1: "the first of n processors is assigned the first 1/n of the
        // blocks".
        assert_eq!(owner_of(BlockId(0), 512, 4), 0);
        assert_eq!(owner_of(BlockId(127), 512, 4), 0);
        assert_eq!(owner_of(BlockId(128), 512, 4), 1);
        assert_eq!(owner_of(BlockId(511), 512, 4), 3);
    }
}
