//! Decentralized work stealing / diffusive load balancing — the masterless
//! fourth driver.
//!
//! The paper's hybrid scheduler routes every balancing decision through a
//! master rank; the follow-up load-balancing literature (diffusive particle
//! balancing, lifeline work stealing) removes that bottleneck by letting
//! ranks trade work peer-to-peer. This driver implements both halves:
//!
//! * **Lifelines** — rank `r` is linked to `(r + 2^j) mod n` for
//!   `j in 0..neighbor_degree`. An idle rank sweeps its lifelines with
//!   [`Msg::StealRequest`] probes; a victim answers with a
//!   [`Msg::WorkTransfer`] batch (empty = refusal), always keeping at least
//!   one streamline for itself.
//! * **Diffusion** — every `diffusion_period` virtual seconds a busy rank
//!   reports its parked-streamline count to its lifelines
//!   ([`Msg::LoadReport`]); a significantly under-loaded receiver pulls a
//!   batch with a single steal probe. Reports from busy ranks are also what
//!   re-activate quiescent ranks after a failed sweep.
//! * **Termination** — no master counts terminations. Safra's algorithm
//!   runs over the ring of `j = 0` lifeline edges: each rank keeps a
//!   cumulative basic-message balance (sent − received) and a dirty bit set
//!   on every basic receive; rank 0 launches a [`Msg::TermToken`] when
//!   passive, every passive rank folds its balance in and whitens itself,
//!   and rank 0 declares global termination when a white token returns with
//!   a zero total balance. Rank 0 owns no work and assigns none — the token
//!   wave is symmetric, so the driver stays masterless.
//!
//! Integration itself is untouched: work drains exactly like a Load On
//! Demand rank (advance everything resident, then load the block with the
//! most waiters), so on closed fault-free workloads the streamline states
//! are bit-identical to every other driver.

use crate::config::{MemoryBudget, StealParams};
use crate::ingest::EpochMap;
use crate::msg::Msg;
use crate::termination::{AnyDetector, DetectorKind, TerminationDetector};
use crate::workspace::{BlockExit, Workspace, WorkspaceSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use streamline_desim::{Context, Event, HeartbeatMonitor, Process};
use streamline_field::block::BlockId;
use streamline_integrate::{Streamline, StreamlineId, Termination};
use streamline_iosim::StoreError;
use streamline_math::Vec3;

/// Zero-delay processing round (same idiom as `LodProc`).
const WAKE_ROUND: u64 = 0;
/// Periodic diffusion tick: report load to lifeline neighbors.
const WAKE_TICK: u64 = 1;
/// Rank 0 re-arms the termination token after a failed circulation.
const WAKE_TOKEN_RETRY: u64 = 2;
/// Resilient mode only: periodic heartbeat-and-sweep tick.
const WAKE_RESIL: u64 = 3;

/// Lifeline out-neighbors of `rank`: `(rank + 2^j) mod n` for
/// `j in 0..degree`, deduplicated, never including `rank` itself. The
/// `j = 0` edge (`rank + 1`) is always present, so the edges form the ring
/// the termination token travels.
pub fn lifeline_neighbors(rank: usize, n_ranks: usize, degree: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut stride = 1usize;
    for _ in 0..degree {
        let to = (rank + stride % n_ranks) % n_ranks;
        if to != rank && !out.contains(&to) {
            out.push(to);
        }
        stride = stride.saturating_mul(2);
    }
    out
}

/// One work-stealing rank.
pub struct StealProc {
    rank: usize,
    n_ranks: usize,
    params: StealParams,
    comm_geometry: bool,
    neighbors: Vec<usize>,
    ws: Workspace,
    seeds: Vec<(StreamlineId, Vec3)>,
    /// Streamlines waiting for a non-resident block, keyed by block for
    /// deterministic iteration.
    parked: BTreeMap<BlockId, Vec<Streamline>>,
    pub finished: Vec<Streamline>,
    memory: MemoryBudget,
    h0: f64,
    pub done: bool,
    pub failed_oom: bool,
    /// A diffusion tick is pending; ticks re-arm only while this rank has
    /// work, so an idle cluster schedules no events at all.
    tick_armed: bool,
    /// A steal probe is outstanding (idle sweep or report-triggered pull).
    hunting: bool,
    /// Index into `neighbors` of the probe in flight; `>= neighbors.len()`
    /// marks a single-victim probe that gives up on the first refusal.
    hunt_cursor: usize,
    /// The idle sweep already ran since work last drained — don't re-sweep
    /// on stray wakes; diffusion reports re-activate this rank instead.
    hunted_since_idle: bool,
    /// Safra: cumulative basic messages sent minus received.
    msg_balance: i64,
    /// Safra: a basic message arrived since this rank last forwarded (or
    /// launched) the token.
    black: bool,
    /// Safra: token held until this rank is passive.
    held_token: Option<(i64, bool)>,
    /// Ingest-epoch fold carried by the held token (separate field so the
    /// snapshot's `held_token` keeps its pre-ingestion shape on disk).
    held_extra: u32,
    /// Rank 0 only: a token is circulating.
    token_out: bool,
    /// Rank 0 only: a retry wake is pending after a failed circulation.
    retry_armed: bool,
    /// Streamline ids this rank has ever owned.
    seen: BTreeSet<u32>,
    /// Ids that arrived while already in `seen` — ping-pong streamlines.
    pingponged: BTreeSet<u32>,
    /// Virtual times at which each ping-pong was first detected.
    pingpong_times: Vec<f64>,
    /// Balancing-protocol traffic (reports, probes, transfers, tokens).
    pub balance_msgs: u64,
    pub balance_bytes: u64,
    /// Fail-stop resilience machinery; `None` outside rank-chaos runs so
    /// fault-free schedules are untouched.
    resil: Option<StealResil>,
    /// Per-epoch retirement ledger. Work migrates freely between steal
    /// ranks, so the `opened` side is meaningless here — only retirements
    /// are recorded, for driver-level frontier folding.
    detector: AnyDetector,
    /// Streamline id → ingest epoch (identity for closed runs).
    emap: EpochMap,
    /// `finished` entries already retired into the ledger.
    retired_seen: usize,
    /// Highest ingest epoch observed at this rank (0 for closed runs). The
    /// termination token folds the minimum across ranks: a wave can only
    /// succeed once every live rank has seen every epoch, which is what
    /// makes Safra's invariant hold under external seed arrival.
    extra_ingested: u32,
    /// Total epochs of the run's ingest plan (1 for closed runs).
    n_epochs: u32,
}

/// Per-rank fail-stop resilience state for the steal driver: ring
/// heartbeats, a failure detector, per-peer Safra balances (so lost
/// messages to/from dead ranks can be excluded exactly), and the membership
/// view the token gossips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StealResil {
    /// Virtual seconds between heartbeat ticks.
    pub heartbeat_period: f64,
    /// Ticks stop re-arming past this virtual time, bounding the event
    /// count of any death schedule (set from [`crate::RankChaos::beat_deadline`]).
    pub beat_deadline: f64,
    /// Failure detector over this rank's current watch target.
    pub monitor: HeartbeatMonitor,
    /// The live ring predecessor this rank watches for beats.
    pub watch_target: Option<usize>,
    /// A heartbeat tick is armed.
    pub beat_armed: bool,
    /// This rank's view of dead ranks, sorted.
    pub dead: Vec<u32>,
    /// Safra per-peer balance: basic messages sent to / received from each
    /// rank, so the balance can be restricted to live peers exactly.
    pub sent_to: Vec<i64>,
    pub recv_from: Vec<i64>,
    /// Rank the outstanding steal probe went to (for repair when it dies).
    pub probe_target: Option<usize>,
    /// Dead set carried by the held token (empty when none held).
    pub held_dead: Vec<u32>,
    /// `(rank, virtual time)` of each death this rank's own monitor
    /// detected — the raw material for detection-latency accounting.
    pub suspected_at: Vec<(usize, f64)>,
}

impl StealResil {
    fn new(
        n_ranks: usize,
        heartbeat_period: f64,
        suspect_timeout: f64,
        beat_deadline: f64,
    ) -> Self {
        StealResil {
            heartbeat_period,
            beat_deadline,
            monitor: HeartbeatMonitor::new(suspect_timeout),
            watch_target: None,
            beat_armed: false,
            dead: Vec::new(),
            sent_to: vec![0; n_ranks],
            recv_from: vec![0; n_ranks],
            probe_target: None,
            held_dead: Vec::new(),
            suspected_at: Vec::new(),
        }
    }

    fn is_dead(&self, rank: usize) -> bool {
        self.dead.binary_search(&(rank as u32)).is_ok()
    }

    /// Basic-message balance restricted to peers this rank believes alive.
    fn live_balance(&self) -> i64 {
        (0..self.sent_to.len())
            .filter(|&p| !self.is_dead(p))
            .map(|p| self.sent_to[p] - self.recv_from[p])
            .sum()
    }
}

/// Serializable image of a [`StealProc`] mid-run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StealSnapshot {
    pub ws: WorkspaceSnapshot,
    pub seeds: Vec<(StreamlineId, Vec3)>,
    pub parked: Vec<(BlockId, Vec<Streamline>)>,
    pub finished: Vec<Streamline>,
    pub done: bool,
    pub failed_oom: bool,
    pub tick_armed: bool,
    pub hunting: bool,
    pub hunt_cursor: usize,
    pub hunted_since_idle: bool,
    pub msg_balance: i64,
    pub black: bool,
    pub held_token: Option<(i64, bool)>,
    pub token_out: bool,
    pub retry_armed: bool,
    pub seen: Vec<u32>,
    pub pingponged: Vec<u32>,
    pub pingpong_times: Vec<f64>,
    pub balance_msgs: u64,
    pub balance_bytes: u64,
    /// Absent in pre-resilience snapshots.
    #[serde(default)]
    pub resil: Option<StealResil>,
    /// Absent in pre-ingestion snapshots (reconstructed on restore).
    #[serde(default)]
    pub detector: Option<AnyDetector>,
    /// Absent in pre-ingestion snapshots; 0 is exactly the closed-run value.
    #[serde(default)]
    pub extra_ingested: u32,
    /// Epoch fold of the held token, if any; 0 matches closed runs.
    #[serde(default)]
    pub held_extra: u32,
}

impl StealProc {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rank: usize,
        n_ranks: usize,
        ws: Workspace,
        seeds: Vec<(StreamlineId, Vec3)>,
        memory: MemoryBudget,
        comm_geometry: bool,
        h0: f64,
        params: StealParams,
    ) -> Self {
        StealProc {
            rank,
            n_ranks,
            params,
            comm_geometry,
            neighbors: lifeline_neighbors(rank, n_ranks, params.neighbor_degree),
            ws,
            seeds,
            parked: BTreeMap::new(),
            finished: Vec::new(),
            memory,
            h0,
            done: false,
            failed_oom: false,
            tick_armed: false,
            hunting: false,
            hunt_cursor: 0,
            hunted_since_idle: false,
            msg_balance: 0,
            black: false,
            held_token: None,
            held_extra: 0,
            token_out: false,
            retry_armed: false,
            seen: BTreeSet::new(),
            pingponged: BTreeSet::new(),
            pingpong_times: Vec::new(),
            balance_msgs: 0,
            balance_bytes: 0,
            resil: None,
            detector: AnyDetector::new(DetectorKind::ClosedSet),
            emap: EpochMap::default(),
            retired_seen: 0,
            extra_ingested: 0,
            n_epochs: 1,
        }
    }

    /// Switch this rank into open-loop mode: `n_epochs` ingest epochs will
    /// be observed (epoch 0 at start, the rest as [`Msg::Ingest`] events),
    /// with `emap` recovering any streamline's epoch from its id.
    pub fn with_ingest(mut self, kind: DetectorKind, n_epochs: u32, emap: EpochMap) -> Self {
        self.detector = AnyDetector::new(kind);
        self.emap = emap;
        self.n_epochs = n_epochs.max(1);
        self
    }

    /// The per-rank retirement ledger (for driver-level frontier folding).
    pub fn detector(&self) -> &AnyDetector {
        &self.detector
    }

    /// Charge terminations since the last call to the epoch ledger.
    fn note_retirements(&mut self, now: f64) {
        if self.retired_seen == self.finished.len() {
            return;
        }
        let mut by_epoch: BTreeMap<u32, u64> = BTreeMap::new();
        for sl in &self.finished[self.retired_seen..] {
            *by_epoch.entry(self.emap.epoch_of(sl.id)).or_default() += 1;
        }
        self.retired_seen = self.finished.len();
        for (epoch, n) in by_epoch {
            self.detector.retire(epoch, n, now);
        }
    }

    /// Switch this rank into resilient mode (rank-chaos runs only): ring
    /// heartbeats until `beat_deadline`, a `suspect_timeout` failure
    /// detector, per-peer Safra balances and membership-aware termination.
    pub fn with_resilience(
        mut self,
        heartbeat_period: f64,
        suspect_timeout: f64,
        beat_deadline: f64,
    ) -> Self {
        self.resil =
            Some(StealResil::new(self.n_ranks, heartbeat_period, suspect_timeout, beat_deadline));
        self
    }

    /// Deaths this rank's own failure detector observed, as
    /// `(rank, virtual suspicion time)`.
    pub fn suspected_at(&self) -> &[(usize, f64)] {
        self.resil.as_ref().map_or(&[], |r| r.suspected_at.as_slice())
    }

    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }

    /// Ids that returned to this rank after leaving it.
    pub fn pingponged(&self) -> &BTreeSet<u32> {
        &self.pingponged
    }

    /// Virtual times of first ping-pong detection, in arrival order.
    pub fn pingpong_times(&self) -> &[f64] {
        &self.pingpong_times
    }

    /// Capture this rank's mid-run state for a checkpoint.
    pub fn snapshot(&self) -> StealSnapshot {
        StealSnapshot {
            ws: self.ws.snapshot(),
            seeds: self.seeds.clone(),
            parked: self.parked.iter().map(|(&b, v)| (b, v.clone())).collect(),
            finished: self.finished.clone(),
            done: self.done,
            failed_oom: self.failed_oom,
            tick_armed: self.tick_armed,
            hunting: self.hunting,
            hunt_cursor: self.hunt_cursor,
            hunted_since_idle: self.hunted_since_idle,
            msg_balance: self.msg_balance,
            black: self.black,
            held_token: self.held_token,
            token_out: self.token_out,
            retry_armed: self.retry_armed,
            seen: self.seen.iter().copied().collect(),
            pingponged: self.pingponged.iter().copied().collect(),
            pingpong_times: self.pingpong_times.clone(),
            balance_msgs: self.balance_msgs,
            balance_bytes: self.balance_bytes,
            resil: self.resil.clone(),
            detector: Some(self.detector.clone()),
            extra_ingested: self.extra_ingested,
            held_extra: self.held_extra,
        }
    }

    /// Restore a snapshot onto a freshly built rank (same config/dataset).
    pub fn restore(&mut self, snap: &StealSnapshot) -> Result<(), StoreError> {
        self.ws.restore(&snap.ws)?;
        self.seeds = snap.seeds.clone();
        self.parked = snap.parked.iter().cloned().collect();
        self.finished = snap.finished.clone();
        self.done = snap.done;
        self.failed_oom = snap.failed_oom;
        self.tick_armed = snap.tick_armed;
        self.hunting = snap.hunting;
        self.hunt_cursor = snap.hunt_cursor;
        self.hunted_since_idle = snap.hunted_since_idle;
        self.msg_balance = snap.msg_balance;
        self.black = snap.black;
        self.held_token = snap.held_token;
        self.token_out = snap.token_out;
        self.retry_armed = snap.retry_armed;
        self.seen = snap.seen.iter().copied().collect();
        self.pingponged = snap.pingponged.iter().copied().collect();
        self.pingpong_times = snap.pingpong_times.clone();
        self.balance_msgs = snap.balance_msgs;
        self.balance_bytes = snap.balance_bytes;
        self.resil = snap.resil.clone();
        match &snap.detector {
            Some(d) => self.detector = d.clone(),
            None => {
                // Pre-ingestion snapshot: rebuild the closed-run ledger
                // from what this rank has finished.
                let mut d = AnyDetector::new(DetectorKind::ClosedSet);
                d.retire(0, snap.finished.len() as u64, 0.0);
                self.detector = d;
            }
        }
        self.retired_seen = self.finished.len();
        self.extra_ingested = snap.extra_ingested;
        self.held_extra = snap.held_extra;
        if self.resil.is_some() {
            self.recompute_neighbors();
        }
        Ok(())
    }

    fn my_load(&self) -> usize {
        self.parked.values().map(|v| v.len()).sum()
    }

    /// Ranks this rank believes alive, ascending. Always contains `rank`.
    fn live_ranks(&self) -> Vec<usize> {
        match &self.resil {
            Some(r) => (0..self.n_ranks).filter(|&p| p == self.rank || !r.is_dead(p)).collect(),
            None => (0..self.n_ranks).collect(),
        }
    }

    /// Rebuild the lifeline graph over the live membership: lifelines are
    /// computed in live-index space and mapped back to rank space, so the
    /// `j = 0` edges always form a ring over exactly the live ranks.
    fn recompute_neighbors(&mut self) {
        let live = self.live_ranks();
        let i = live.iter().position(|&r| r == self.rank).expect("self is alive");
        self.neighbors = lifeline_neighbors(i, live.len(), self.params.neighbor_degree)
            .into_iter()
            .map(|j| live[j])
            .collect();
    }

    /// Next live rank along the token ring.
    fn ring_successor(&self) -> usize {
        match &self.resil {
            Some(_) => {
                let live = self.live_ranks();
                let i = live.iter().position(|&r| r == self.rank).expect("self is alive");
                live[(i + 1) % live.len()]
            }
            None => (self.rank + 1) % self.n_ranks,
        }
    }

    /// Watch the live ring predecessor (the rank whose beats we receive).
    fn rewatch(&mut self, now: f64) {
        let live = self.live_ranks();
        let m = live.len();
        let i = live.iter().position(|&r| r == self.rank).expect("self is alive");
        let pred = if m >= 2 { Some(live[(i + m - 1) % m]) } else { None };
        let Some(r) = self.resil.as_mut() else { return };
        if r.watch_target != pred {
            if let Some(old) = r.watch_target.take() {
                r.monitor.unwatch(old);
            }
            if let Some(p) = pred {
                r.watch_target = Some(p);
                r.monitor.watch(p, now);
            }
        }
    }

    /// The token initiator: rank 0 normally; after its death, the lowest
    /// rank this rank believes alive (views may briefly disagree — duplicate
    /// tokens are tolerated, termination is declared by whoever sees a clean
    /// wave).
    fn is_initiator(&self) -> bool {
        match &self.resil {
            Some(r) => (0..self.rank).all(|p| r.is_dead(p)),
            None => self.rank == 0,
        }
    }

    /// The Safra balance this rank folds into the token: restricted to live
    /// peers in resilient mode (messages to/from the dead are lost, not in
    /// flight), the plain cumulative balance otherwise.
    fn current_balance(&self) -> i64 {
        match &self.resil {
            Some(r) => r.live_balance(),
            None => self.msg_balance,
        }
    }

    /// A steal probe is outgoing: remember (and watch) the victim so its
    /// death cannot strand this rank hunting forever.
    fn note_probe(&mut self, to: usize, now: f64) {
        if let Some(r) = self.resil.as_mut() {
            r.probe_target = Some(to);
            if r.watch_target != Some(to) {
                r.monitor.watch(to, now);
            }
        }
    }

    /// The outstanding probe resolved (answer arrived or sweep moved on).
    fn clear_probe(&mut self) {
        if let Some(r) = self.resil.as_mut() {
            if let Some(t) = r.probe_target.take() {
                if r.watch_target != Some(t) {
                    r.monitor.unwatch(t);
                }
            }
        }
    }

    /// Fold a peer's (or the token's) view of the dead into our own.
    fn merge_dead(&mut self, dead: &[u32], now: f64, ctx: &mut dyn Context<Msg>) {
        for &d in dead {
            self.apply_death(d as usize, now, false, ctx);
        }
    }

    /// A rank is now known dead: update membership, repair the lifeline
    /// graph, the watch chain, any stranded probe, and let the initiator
    /// relaunch a token that may have died with the rank.
    fn apply_death(
        &mut self,
        rank: usize,
        now: f64,
        own_detection: bool,
        ctx: &mut dyn Context<Msg>,
    ) {
        if rank == self.rank {
            return; // a false suspicion of ourselves, gossiped back
        }
        {
            let Some(r) = self.resil.as_mut() else { return };
            let Err(i) = r.dead.binary_search(&(rank as u32)) else { return };
            r.dead.insert(i, rank as u32);
            if own_detection {
                r.suspected_at.push((rank, now));
            }
            r.monitor.unwatch(rank);
        }
        self.recompute_neighbors();
        self.rewatch(now);
        // Probe repair: the victim died before answering — treat it as a
        // refusal and restart the idle sweep over the repaired lifelines.
        let stranded =
            self.hunting && self.resil.as_ref().is_some_and(|r| r.probe_target == Some(rank));
        if stranded {
            self.clear_probe();
            self.hunting = false;
            self.hunted_since_idle = false;
            if !self.done && self.parked.is_empty() {
                self.enter_idle(ctx);
            }
        }
        // A token in flight to (or held by) the dead rank is lost; clearing
        // `token_out` lets the initiator launch a fresh wave. A surviving
        // duplicate token is tolerated — it just circulates dirty.
        if self.is_initiator() {
            self.token_out = false;
        }
    }

    fn arm_resil(&mut self, ctx: &mut dyn Context<Msg>) {
        if let Some(r) = self.resil.as_mut() {
            if !r.beat_armed {
                r.beat_armed = true;
                ctx.wake_after(r.heartbeat_period, WAKE_RESIL);
            }
        }
    }

    /// Heartbeat tick: sweep the failure detector, beat the ring successor,
    /// re-arm until the beat deadline (which bounds the event count of any
    /// death schedule).
    fn on_resil_tick(&mut self, ctx: &mut dyn Context<Msg>) {
        let now = ctx.now();
        let newly = {
            let Some(r) = self.resil.as_mut() else { return };
            r.beat_armed = false;
            r.monitor.sweep(now)
        };
        for rank in newly {
            self.apply_death(rank, now, true, ctx);
        }
        let beating = self.resil.as_ref().is_some_and(|r| now <= r.beat_deadline);
        if beating && self.n_ranks > 1 {
            let msg = Msg::Beat { done: self.done };
            let bytes = msg.wire_bytes(self.comm_geometry);
            self.balance_msgs += 1;
            self.balance_bytes += bytes as u64;
            ctx.send(self.ring_successor(), msg, bytes);
            self.arm_resil(ctx);
        }
    }

    /// Passive in Safra's sense: no local work and no probe in flight. A
    /// passive rank sends nothing but the termination token.
    fn passive(&self) -> bool {
        self.parked.is_empty() && !self.hunting
    }

    /// Send a basic (non-token) balancing message: counts toward the Safra
    /// balance and the diagnostics.
    fn send_basic(&mut self, to: usize, msg: Msg, ctx: &mut dyn Context<Msg>) {
        let bytes = msg.wire_bytes(self.comm_geometry);
        self.msg_balance += 1;
        if let Some(r) = self.resil.as_mut() {
            r.sent_to[to] += 1;
        }
        self.balance_msgs += 1;
        self.balance_bytes += bytes as u64;
        ctx.send(to, msg, bytes);
    }

    /// Account a basic message arriving (Safra receive rule).
    fn recv_basic(&mut self, from: usize) {
        self.msg_balance -= 1;
        if let Some(r) = self.resil.as_mut() {
            r.recv_from[from] += 1;
        }
        self.black = true;
    }

    fn send_token(&mut self, count: i64, black: bool, extra: u32, ctx: &mut dyn Context<Msg>) {
        let dead = self.resil.as_ref().map_or_else(Vec::new, |r| r.dead.clone());
        let msg = Msg::TermToken { count, black, dead, extra_ingested: extra };
        let bytes = msg.wire_bytes(self.comm_geometry);
        self.balance_msgs += 1;
        self.balance_bytes += bytes as u64;
        ctx.send(self.ring_successor(), msg, bytes);
    }

    /// First ownership or return of a streamline id on this rank; a return
    /// is a ping-pong, recorded once per id.
    fn note_arrival(&mut self, id: StreamlineId, now: f64) {
        if !self.seen.insert(id.0) && self.pingponged.insert(id.0) {
            self.pingpong_times.push(now);
        }
    }

    fn check_memory(&mut self, ctx: &mut dyn Context<Msg>) -> bool {
        if self.memory.exceeded(self.ws.memory_bytes()) {
            self.failed_oom = true;
            ctx.stop_all();
            return true;
        }
        false
    }

    /// Advance everything whose block is resident (same rule as Load On
    /// Demand, batched the same way: chunks of the workspace batch width,
    /// movers re-parked for the next sweep). Returns false when the run
    /// must abort.
    fn drain_resident(&mut self, ctx: &mut dyn Context<Msg>) -> bool {
        let lanes = self.ws.batch_lanes();
        while let Some(block) = self.parked.keys().copied().find(|&b| self.ws.is_resident(b)) {
            let mut list = self.parked.remove(&block).expect("key just found");
            while !list.is_empty() {
                let take = lanes.min(list.len());
                let mut group = list.split_off(list.len() - take);
                group.reverse();
                let exits = self.ws.advance_batch_in(&mut group, block, ctx);
                for (sl, exit) in group.into_iter().zip(exits) {
                    match exit {
                        BlockExit::MovedTo(next) => self.parked.entry(next).or_default().push(sl),
                        BlockExit::Done(_) => self.finished.push(sl),
                    }
                }
                if self.check_memory(ctx) {
                    return false;
                }
            }
        }
        true
    }

    /// One round: drain resident blocks, then load at most one block and
    /// yield. With no work left the rank turns to its lifelines.
    fn round(&mut self, ctx: &mut dyn Context<Msg>) {
        if self.done || !self.drain_resident(ctx) {
            return;
        }
        if self.parked.is_empty() {
            self.enter_idle(ctx);
            return;
        }
        self.hunted_since_idle = false;
        self.arm_tick(ctx);
        // Load the block with the most waiting streamlines (ties to the
        // lowest id — deterministic, same rule as Load On Demand).
        let (&target, _) = self
            .parked
            .iter()
            .max_by_key(|(id, v)| (v.len(), std::cmp::Reverse(id.0)))
            .expect("parked is non-empty");
        if self.ws.try_acquire(target, ctx).is_err() {
            // Unreachable block: everything waiting on it dies typed
            // instead of the rank spinning on the same failing load.
            for mut sl in self.parked.remove(&target).expect("key just found") {
                self.ws.terminate_unavailable(&mut sl);
                self.finished.push(sl);
            }
        } else if self.check_memory(ctx) {
            return;
        }
        ctx.wake_after(0.0, WAKE_ROUND);
    }

    /// Work just drained. Alone there is nothing to wait for; otherwise
    /// sweep the lifelines once, then go quiescent until a diffusion report
    /// or a transfer re-activates this rank.
    fn enter_idle(&mut self, ctx: &mut dyn Context<Msg>) {
        if self.n_ranks == 1 {
            // A lone rank is done only once every ingest epoch has been
            // observed; otherwise it idles until the next `Ingest` event.
            if self.extra_ingested + 1 >= self.n_epochs {
                self.done = true;
            }
            return;
        }
        if !self.hunting && !self.hunted_since_idle && !self.neighbors.is_empty() {
            self.hunted_since_idle = true;
            self.hunting = true;
            self.hunt_cursor = 0;
            let to = self.neighbors[0];
            self.note_probe(to, ctx.now());
            self.send_basic(to, Msg::StealRequest, ctx);
        }
    }

    /// A probe was refused: try the next lifeline, or give up the sweep.
    fn advance_hunt(&mut self, ctx: &mut dyn Context<Msg>) {
        self.hunt_cursor += 1;
        if self.hunt_cursor < self.neighbors.len() {
            let to = self.neighbors[self.hunt_cursor];
            self.note_probe(to, ctx.now());
            self.send_basic(to, Msg::StealRequest, ctx);
        } else {
            self.hunting = false;
        }
    }

    fn arm_tick(&mut self, ctx: &mut dyn Context<Msg>) {
        if !self.tick_armed && self.n_ranks > 1 {
            self.tick_armed = true;
            ctx.wake_after(self.params.diffusion_period, WAKE_TICK);
        }
    }

    /// Diffusion tick: report load to every lifeline while busy. Idle ranks
    /// stop ticking — the cluster is event-driven at the end of a run, which
    /// keeps the event count bounded by useful work.
    fn on_tick(&mut self, ctx: &mut dyn Context<Msg>) {
        self.tick_armed = false;
        let load = self.my_load();
        if load == 0 {
            return;
        }
        for i in 0..self.neighbors.len() {
            let to = self.neighbors[i];
            self.send_basic(to, Msg::LoadReport { load: load as u32 }, ctx);
        }
        self.arm_tick(ctx);
    }

    /// A neighbor advertised its load. If this rank is under-loaded by at
    /// least a batch, pull with a single-victim probe (this is also how a
    /// quiescent rank is re-activated after a failed sweep).
    fn on_load_report(&mut self, from: usize, load: u32, ctx: &mut dyn Context<Msg>) {
        self.recv_basic(from);
        if self.done || self.hunting {
            return;
        }
        if self.my_load() + self.params.steal_batch <= load as usize {
            self.hunting = true;
            self.hunt_cursor = self.neighbors.len();
            self.note_probe(from, ctx.now());
            self.send_basic(from, Msg::StealRequest, ctx);
        }
    }

    /// Pick the grant for a steal request: up to `steal_batch` streamlines
    /// from the blocks this rank would visit last, always keeping at least
    /// one streamline so victim and thief cannot swap the same work forever.
    fn grant_batch(&mut self) -> Vec<(BlockId, Streamline)> {
        let total = self.my_load();
        if total <= 1 {
            return Vec::new();
        }
        let mut budget = self.params.steal_batch.min(total - 1);
        let mut out = Vec::new();
        while budget > 0 {
            // Mirror of round()'s priority: fewest waiters first, ties to
            // the highest block id — the work this rank needs last.
            let Some((&block, _)) =
                self.parked.iter().min_by_key(|(id, v)| (v.len(), std::cmp::Reverse(id.0)))
            else {
                break;
            };
            let list = self.parked.get_mut(&block).expect("key just found");
            while budget > 0 {
                let Some(sl) = list.pop() else { break };
                self.ws.release(&sl);
                out.push((block, sl));
                budget -= 1;
            }
            if list.is_empty() {
                self.parked.remove(&block);
            }
        }
        out
    }

    fn on_steal_request(&mut self, from: usize, ctx: &mut dyn Context<Msg>) {
        self.recv_basic(from);
        let sls = self.grant_batch();
        self.send_basic(from, Msg::WorkTransfer { sls }, ctx);
    }

    fn on_work_transfer(
        &mut self,
        from: usize,
        sls: Vec<(BlockId, Streamline)>,
        ctx: &mut dyn Context<Msg>,
    ) {
        self.recv_basic(from);
        if self.resil.as_ref().is_some_and(|r| r.probe_target == Some(from)) {
            self.clear_probe();
        }
        if sls.is_empty() {
            // A refusal: continue the sweep (or give up).
            if self.hunting {
                self.advance_hunt(ctx);
            }
            return;
        }
        self.hunting = false;
        self.hunted_since_idle = false;
        let now = ctx.now();
        for (block, sl) in sls {
            self.note_arrival(sl.id, now);
            self.ws.admit(&sl);
            self.parked.entry(block).or_default().push(sl);
        }
        if self.check_memory(ctx) {
            return;
        }
        self.arm_tick(ctx);
        ctx.wake_after(0.0, WAKE_ROUND);
    }

    /// Safra token rules, applied after every event. A held token moves the
    /// moment this rank is passive; the initiator (rank 0, or after its
    /// death the lowest live rank) additionally launches fresh tokens and
    /// evaluates returning ones.
    fn maybe_advance_token(&mut self, ctx: &mut dyn Context<Msg>) {
        if self.done || self.failed_oom || self.n_ranks < 2 || !self.passive() {
            return;
        }
        // Sole survivor: nobody left to count with — local quiescence is
        // global quiescence (once every ingest epoch has been delivered).
        if self.resil.as_ref().is_some_and(|r| r.dead.len() + 1 >= self.n_ranks)
            && self.extra_ingested + 1 >= self.n_epochs
        {
            self.done = true;
            ctx.stop_all();
            return;
        }
        let held_dead = |s: &mut Self| {
            s.resil.as_mut().map_or_else(Vec::new, |r| std::mem::take(&mut r.held_dead))
        };
        if self.is_initiator() {
            if let Some((count, black)) = self.held_token.take() {
                let tdead = held_dead(self);
                // The circulation only counts if every rank folded the same
                // membership we hold now; a view change mid-hold dirties it.
                let consistent = self.resil.as_ref().is_none_or(|r| r.dead == tdead);
                // Every live rank must have observed every ingest epoch —
                // the token carries the minimum fold, so a wave that beat an
                // arrival to any rank cannot declare termination.
                let all_ingested = self.held_extra.min(self.extra_ingested) + 1 >= self.n_epochs;
                if !black
                    && !self.black
                    && consistent
                    && all_ingested
                    && count + self.current_balance() == 0
                {
                    // White token, clean initiator, zero global balance: no
                    // work and no messages exist anywhere among the living.
                    self.done = true;
                    ctx.stop_all();
                } else {
                    // Dirty circulation: retry after a diffusion period so
                    // token traffic stays bounded.
                    self.token_out = false;
                    if !self.retry_armed {
                        self.retry_armed = true;
                        ctx.wake_after(self.params.diffusion_period, WAKE_TOKEN_RETRY);
                    }
                }
            } else if !self.token_out && !self.retry_armed {
                self.token_out = true;
                self.black = false;
                let extra = self.extra_ingested;
                self.send_token(0, false, extra, ctx);
            }
        } else if let Some((count, black)) = self.held_token.take() {
            let _ = held_dead(self);
            let fwd = count + self.current_balance();
            let dirty = black || self.black;
            let fold = self.held_extra.min(self.extra_ingested);
            self.black = false;
            self.send_token(fwd, dirty, fold, ctx);
        }
    }
}

impl Process<Msg> for StealProc {
    fn on_event(&mut self, ev: Event<Msg>, ctx: &mut dyn Context<Msg>) {
        match ev {
            Event::Start => {
                let now = ctx.now();
                for (id, seed) in std::mem::take(&mut self.seeds) {
                    self.note_arrival(id, now);
                    let mut sl = Streamline::new_lean(id, seed, self.h0);
                    self.ws.admit(&sl);
                    match self.ws.locate(seed) {
                        Some(b) => self.parked.entry(b).or_default().push(sl),
                        None => {
                            sl.terminate(Termination::ExitedDomain);
                            self.ws.terminated += 1;
                            self.ws.retire_object();
                            self.finished.push(sl);
                        }
                    }
                }
                if self.resil.is_some() && self.n_ranks > 1 {
                    self.rewatch(ctx.now());
                    self.arm_resil(ctx);
                }
                self.round(ctx);
            }
            Event::Wake(WAKE_ROUND) => self.round(ctx),
            Event::Wake(WAKE_TICK) => self.on_tick(ctx),
            Event::Wake(WAKE_TOKEN_RETRY) => self.retry_armed = false,
            Event::Wake(WAKE_RESIL) => self.on_resil_tick(ctx),
            Event::Wake(_) => {}
            Event::Message { from, msg } => {
                // Any message is proof of life from its sender.
                if let Some(r) = self.resil.as_mut() {
                    r.monitor.beat(from, ctx.now());
                }
                match msg {
                    Msg::LoadReport { load } => self.on_load_report(from, load, ctx),
                    Msg::StealRequest => self.on_steal_request(from, ctx),
                    Msg::WorkTransfer { sls } => self.on_work_transfer(from, sls, ctx),
                    Msg::Ingest { epoch, seeds } => {
                        // External arrival — not a basic message, so it never
                        // touches the Safra balance; it does blacken the rank
                        // so a token that beat the arrival circulates dirty.
                        self.extra_ingested = self.extra_ingested.max(epoch);
                        self.black = true;
                        let now = ctx.now();
                        let had_seeds = !seeds.is_empty();
                        for (id, seed) in seeds {
                            self.note_arrival(id, now);
                            let mut sl = Streamline::new_lean(id, seed, self.h0);
                            self.ws.admit(&sl);
                            match self.ws.locate(seed) {
                                Some(b) => self.parked.entry(b).or_default().push(sl),
                                None => {
                                    sl.terminate(Termination::ExitedDomain);
                                    self.ws.terminated += 1;
                                    self.ws.retire_object();
                                    self.finished.push(sl);
                                }
                            }
                        }
                        if self.check_memory(ctx) {
                            return;
                        }
                        if had_seeds {
                            self.hunted_since_idle = false;
                            self.arm_tick(ctx);
                            ctx.wake_after(0.0, WAKE_ROUND);
                        } else if self.n_ranks == 1 && self.parked.is_empty() {
                            // A lone rank may have been waiting on this
                            // (empty) final epoch to declare itself done.
                            self.enter_idle(ctx);
                        }
                    }
                    Msg::TermToken { count, black, dead, extra_ingested } => {
                        // A token carrying a different membership view than
                        // ours dirties this circulation (either side may be
                        // ahead) before the views merge.
                        if self.resil.as_ref().is_some_and(|r| r.dead != dead) {
                            self.black = true;
                        }
                        self.merge_dead(&dead, ctx.now(), ctx);
                        let merged = self.resil.as_ref().map_or_else(Vec::new, |r| r.dead.clone());
                        self.held_token = Some((count, black));
                        self.held_extra = extra_ingested;
                        if let Some(r) = self.resil.as_mut() {
                            r.held_dead = merged;
                        }
                    }
                    Msg::Beat { .. } => {}
                    // Protocol messages of the other drivers never reach a
                    // steal rank.
                    _ => {}
                }
            }
        }
        self.note_retirements(ctx.now());
        self.maybe_advance_token(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{uniform_x_dataset, NullCtx};
    use std::sync::Arc;
    use streamline_integrate::StepLimits;
    use streamline_iosim::{DiskModel, MemoryStore};

    fn proc_with(seeds: Vec<(StreamlineId, Vec3)>, n_ranks: usize, rank: usize) -> StealProc {
        let ds = uniform_x_dataset();
        let store = Arc::new(MemoryStore::build(&ds));
        let ws = Workspace::new(
            ds.decomp,
            store,
            8,
            DiskModel::paper_scale(),
            StepLimits::default(),
            1e-6,
        );
        StealProc::new(
            rank,
            n_ranks,
            ws,
            seeds,
            MemoryBudget::unlimited(),
            true,
            1e-2,
            StealParams::default(),
        )
    }

    fn run_rounds(p: &mut StealProc, ctx: &mut NullCtx) {
        p.on_event(Event::Start, ctx);
        while let Some((_, token)) = ctx.take_wake() {
            p.on_event(Event::Wake(token), ctx);
        }
    }

    #[test]
    fn lifeline_topology_is_ring_plus_hypercube_chords() {
        // j = 0 gives the ring successor; higher j double the stride.
        assert_eq!(lifeline_neighbors(0, 8, 3), vec![1, 2, 4]);
        assert_eq!(lifeline_neighbors(6, 8, 3), vec![7, 0, 2]);
        // Wrap-around strides deduplicate and never point at self.
        assert_eq!(lifeline_neighbors(0, 2, 3), vec![1]);
        assert_eq!(lifeline_neighbors(0, 1, 4), Vec::<usize>::new());
        for r in 0..5 {
            let n = lifeline_neighbors(r, 5, 3);
            assert!(!n.contains(&r));
            assert_eq!(n[0], (r + 1) % 5, "ring edge must be first");
        }
    }

    #[test]
    fn single_rank_completes_without_messages() {
        let seeds = (0..6)
            .map(|i| (StreamlineId(i), Vec3::new(0.1, 0.08 + 0.14 * i as f64, 0.3)))
            .collect();
        let mut p = proc_with(seeds, 1, 0);
        let mut ctx = NullCtx::default();
        run_rounds(&mut p, &mut ctx);
        assert!(p.done);
        assert_eq!(p.finished.len(), 6);
        assert!(ctx.sent.is_empty(), "a lone rank has nobody to balance with");
        assert_eq!(p.balance_msgs, 0);
    }

    #[test]
    fn idle_rank_sweeps_its_lifelines_then_goes_quiescent() {
        // NullCtx reports n_ranks = 1, so build the proc as 1-of-4 manually.
        let mut p = proc_with(Vec::new(), 4, 1);
        let mut ctx = NullCtx::default();
        p.on_event(Event::Start, &mut ctx);
        // First probe went to the first lifeline.
        assert!(p.hunting);
        assert_eq!(ctx.sent.len(), 1);
        assert!(matches!(ctx.sent[0], (2, Msg::StealRequest, 8)));
        // A refusal advances to the next lifeline; the final refusal ends
        // the sweep and the rank is passive.
        p.on_event(Event::Message { from: 2, msg: Msg::WorkTransfer { sls: vec![] } }, &mut ctx);
        assert!(matches!(ctx.sent[1], (3, Msg::StealRequest, 8)));
        p.on_event(Event::Message { from: 3, msg: Msg::WorkTransfer { sls: vec![] } }, &mut ctx);
        assert!(!p.hunting);
        assert!(p.passive());
        assert_eq!(ctx.sent.len(), 2, "a quiescent rank stops probing");
        // Sent two probes, received two refusals: balance is back to zero.
        assert_eq!(p.msg_balance, 0);
        assert!(p.black, "basic receives must blacken the rank");
    }

    #[test]
    fn grant_keeps_at_least_one_streamline() {
        let mut p = proc_with(Vec::new(), 4, 0);
        // Park three streamlines on one block, bypassing Start.
        let block = BlockId(7);
        for i in 0..3 {
            let sl = Streamline::new_lean(StreamlineId(i), Vec3::new(0.8, 0.8, 0.8), 1e-2);
            p.ws.admit(&sl);
            p.parked.entry(block).or_default().push(sl);
        }
        let mut ctx = NullCtx::default();
        p.on_event(Event::Message { from: 2, msg: Msg::StealRequest }, &mut ctx);
        let (to, msg, _) = ctx.sent.last().expect("a grant must be sent");
        assert_eq!(*to, 2);
        match msg {
            Msg::WorkTransfer { sls } => {
                assert_eq!(sls.len(), 2, "batch of 8 capped at load - 1");
                assert!(sls.iter().all(|(b, _)| *b == block));
            }
            other => panic!("expected WorkTransfer, got {other:?}"),
        }
        assert_eq!(p.my_load(), 1, "the victim must keep work for itself");

        // With a single streamline left, the next request is refused.
        p.on_event(Event::Message { from: 3, msg: Msg::StealRequest }, &mut ctx);
        match &ctx.sent.last().unwrap().1 {
            Msg::WorkTransfer { sls } => assert!(sls.is_empty()),
            other => panic!("expected refusal, got {other:?}"),
        }
    }

    #[test]
    fn pingpong_detected_once_per_returning_streamline() {
        let mut p = proc_with(Vec::new(), 4, 0);
        p.note_arrival(StreamlineId(5), 0.1);
        assert!(p.pingponged().is_empty(), "first ownership is not a ping-pong");
        p.note_arrival(StreamlineId(5), 0.2);
        p.note_arrival(StreamlineId(5), 0.3);
        assert_eq!(p.pingponged().len(), 1);
        assert_eq!(p.pingpong_times(), &[0.2], "counted at first return only");
        p.note_arrival(StreamlineId(9), 0.4);
        assert_eq!(p.pingponged().len(), 1);
    }

    #[test]
    fn transfer_restarts_a_quiescent_rank() {
        let mut p = proc_with(Vec::new(), 4, 1);
        let mut ctx = NullCtx::default();
        p.on_event(Event::Start, &mut ctx);
        p.on_event(Event::Message { from: 2, msg: Msg::WorkTransfer { sls: vec![] } }, &mut ctx);
        p.on_event(Event::Message { from: 3, msg: Msg::WorkTransfer { sls: vec![] } }, &mut ctx);
        assert!(p.passive());
        ctx.wakes.clear();
        // A real transfer arrives: the rank admits the work and wakes.
        let sl = Streamline::new_lean(StreamlineId(0), Vec3::new(0.1, 0.2, 0.2), 1e-2);
        let block = BlockId(0);
        p.on_event(
            Event::Message { from: 2, msg: Msg::WorkTransfer { sls: vec![(block, sl)] } },
            &mut ctx,
        );
        assert_eq!(p.my_load(), 1);
        assert!(!p.passive());
        // Pump to completion: the streamline integrates and terminates.
        while let Some((_, token)) = ctx.take_wake() {
            p.on_event(Event::Wake(token), &mut ctx);
        }
        assert_eq!(p.finished.len(), 1);
    }

    #[test]
    fn snapshot_round_trips() {
        let seeds: Vec<(StreamlineId, Vec3)> =
            (0..4).map(|i| (StreamlineId(i), Vec3::new(0.1, 0.1 + 0.2 * i as f64, 0.4))).collect();
        let mut p = proc_with(seeds.clone(), 4, 0);
        let mut ctx = NullCtx::default();
        p.on_event(Event::Start, &mut ctx);
        if let Some((_, token)) = ctx.take_wake() {
            p.on_event(Event::Wake(token), &mut ctx);
        }
        p.note_arrival(StreamlineId(0), 0.5);
        let snap = p.snapshot();
        let mut q = proc_with(seeds, 4, 0);
        q.restore(&snap).expect("store has every block");
        assert_eq!(q.snapshot(), snap, "restore must reproduce the cut");
    }
}
