//! Post-run streamline statistics — the §3.1 "statistical analysis of
//! integral curves" consumer, and the quickest way to sanity-check a run.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use streamline_integrate::{Streamline, StreamlineStatus};
use streamline_math::stats::{Histogram, Summary};

/// Distributional summary of a set of finished streamlines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamlineStats {
    pub count: usize,
    /// Termination reason → count.
    pub terminated_by: BTreeMap<String, usize>,
    pub steps: Option<Summary>,
    pub arc_length: Option<Summary>,
    /// 16-bin histogram of steps per streamline.
    pub steps_hist: Option<Histogram>,
}

/// Summarize finished streamlines.
pub fn summarize(finished: &[Streamline]) -> StreamlineStats {
    let mut terminated_by: BTreeMap<String, usize> = BTreeMap::new();
    let mut steps = Vec::with_capacity(finished.len());
    let mut arcs = Vec::with_capacity(finished.len());
    for s in finished {
        let label = match s.status {
            StreamlineStatus::Active => "Active".to_string(),
            StreamlineStatus::Terminated(t) => format!("{t:?}"),
        };
        *terminated_by.entry(label).or_insert(0) += 1;
        steps.push(s.state.steps as f64);
        arcs.push(s.state.arc_length);
    }
    let steps_hist = (!steps.is_empty()).then(|| {
        let max = steps.iter().cloned().fold(0.0f64, f64::max);
        let mut h = Histogram::new(0.0, max.max(1.0) * 1.0001, 16);
        for &v in &steps {
            h.push(v);
        }
        h
    });
    StreamlineStats {
        count: finished.len(),
        terminated_by,
        steps: Summary::of(&steps),
        arc_length: Summary::of(&arcs),
        steps_hist,
    }
}

impl std::fmt::Display for StreamlineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} streamlines", self.count)?;
        for (reason, n) in &self.terminated_by {
            writeln!(f, "  {reason:<16} {n}")?;
        }
        if let Some(s) = &self.steps {
            writeln!(
                f,
                "  steps: mean {:.0}, p50 {:.0}, p95 {:.0}, max {:.0}",
                s.mean, s.p50, s.p95, s.max
            )?;
        }
        if let Some(s) = &self.arc_length {
            writeln!(
                f,
                "  arc length: mean {:.3}, p50 {:.3}, p95 {:.3}, max {:.3}",
                s.mean, s.p50, s.p95, s.max
            )?;
        }
        if let Some(h) = &self.steps_hist {
            writeln!(f, "  steps distribution: {}", h.sparkline())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_integrate::{StreamlineId, Termination};
    use streamline_math::Vec3;

    fn finished(n: usize) -> Vec<Streamline> {
        (0..n)
            .map(|i| {
                let mut s = Streamline::new_lean(StreamlineId(i as u32), Vec3::ZERO, 0.01);
                for k in 0..=i {
                    s.push_step(Vec3::splat(k as f64 * 0.1), 0.1);
                }
                s.terminate(if i % 2 == 0 {
                    Termination::ExitedDomain
                } else {
                    Termination::MaxSteps
                });
                s
            })
            .collect()
    }

    #[test]
    fn counts_by_reason() {
        let stats = summarize(&finished(10));
        assert_eq!(stats.count, 10);
        assert_eq!(stats.terminated_by["ExitedDomain"], 5);
        assert_eq!(stats.terminated_by["MaxSteps"], 5);
    }

    #[test]
    fn summaries_cover_ranges() {
        let stats = summarize(&finished(10));
        let steps = stats.steps.unwrap();
        assert_eq!(steps.min, 1.0);
        assert_eq!(steps.max, 10.0);
        let hist = stats.steps_hist.unwrap();
        assert_eq!(hist.total, 10);
    }

    #[test]
    fn empty_input_is_fine() {
        let stats = summarize(&[]);
        assert_eq!(stats.count, 0);
        assert!(stats.steps.is_none());
        assert!(stats.steps_hist.is_none());
        // Display must not panic.
        let _ = stats.to_string();
    }

    #[test]
    fn display_mentions_everything() {
        let s = summarize(&finished(6)).to_string();
        assert!(s.contains("6 streamlines"));
        assert!(s.contains("ExitedDomain"));
        assert!(s.contains("steps:"));
        assert!(s.contains("arc length:"));
    }
}
