//! Per-run results — exactly the quantities the paper's figures plot:
//! wall-clock time, total I/O time, total communication time (§5's metrics)
//! and block efficiency `E = (B_L − B_P)/B_L` (Eq. 2).

use crate::config::Algorithm;
use serde::{Deserialize, Serialize};
use streamline_desim::ProcMetrics;

/// Whether the run completed or died (Figure 13: "the Static Allocation
/// algorithm ran out of memory and was unable to run").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    Completed,
    OutOfMemory {
        rank: usize,
    },
    /// A hybrid master rank died mid-run: its group cannot complete, so the
    /// run ends with a typed failure instead of a hang. `rank` is the first
    /// master to die.
    MasterLost {
        rank: usize,
    },
}

impl RunOutcome {
    pub fn completed(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }
}

/// Everything measured in one run of one algorithm on one problem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    pub algorithm: Algorithm,
    pub n_procs: usize,
    pub dataset: String,
    pub seeding: String,
    pub n_seeds: usize,
    pub outcome: RunOutcome,
    /// Wall clock (virtual seconds on the simulation).
    pub wall: f64,
    /// Total time spent reading blocks, summed over ranks (Figures 6/10/14).
    pub io_time: f64,
    /// Total communication time, summed over ranks (Figures 8/11/15).
    pub comm_time: f64,
    /// Total integration time, summed over ranks.
    pub compute_time: f64,
    /// Total idle time, summed over ranks (starvation indicator, §8).
    pub idle_time: f64,
    /// Blocks loaded, B_L.
    pub blocks_loaded: u64,
    /// Blocks purged, B_P.
    pub blocks_purged: u64,
    pub msgs: u64,
    pub bytes_sent: u64,
    /// Streamlines terminated (must equal `n_seeds` on completed runs).
    pub terminated: u64,
    /// Accepted integration steps over all ranks.
    pub total_steps: u64,
    /// Cell-sampler stencil-cache hits over all ranks (field evaluations
    /// that skipped the 8-corner gather).
    #[serde(default)]
    pub sampler_hits: u64,
    /// Cell-sampler stencil gathers over all ranks.
    #[serde(default)]
    pub sampler_misses: u64,
    /// Streamlines advanced through the batch kernel
    /// ([`crate::advance::advance_batch_in_block`]), counted once per
    /// batched block-advance each lane participated in. Zero on scalar runs.
    #[serde(default)]
    pub batched_lanes: u64,
    /// Mean filled fraction of the configured batch width over every
    /// batched block-advance (1.0 = every batch ran full; 0.0 = no batch
    /// kernel calls).
    #[serde(default)]
    pub batch_occupancy: f64,
    /// Block loads retried after transient store errors, over all ranks.
    #[serde(default)]
    pub load_retries: u64,
    /// Block loads abandoned after exhausting retries, over all ranks.
    #[serde(default)]
    pub load_failures: u64,
    /// Streamlines terminated `BlockUnavailable` (including hybrid pool
    /// seeds discarded by block quarantine).
    #[serde(default)]
    pub unavailable_terminations: u64,
    /// Distinct streamlines that returned to a rank that had owned them
    /// before — the "ping pong particles" diagnostic of the follow-up
    /// load-balancing literature. Zero for Load On Demand (no migration).
    #[serde(default)]
    pub pingpong_streamlines: u64,
    /// Load-balancing protocol messages (steal probes, diffusion reports,
    /// work transfers, termination tokens), over all ranks.
    #[serde(default)]
    pub balance_msgs: u64,
    /// Bytes in load-balancing protocol messages, over all ranks.
    #[serde(default)]
    pub balance_bytes: u64,
    /// `(rank, virtual kill time)` of every fail-stop rank death actually
    /// applied during the run, in kill order.
    #[serde(default)]
    pub rank_deaths: Vec<(usize, f64)>,
    /// Streamlines terminated `RankLost`: their in-flight state died with a
    /// rank and only the seed is known. On any run,
    /// `terminated == n_seeds` still holds — completed, unavailable and
    /// rank-lost buckets partition the seed set.
    #[serde(default)]
    pub rank_lost_streamlines: u64,
    /// Streamlines re-queued/re-seeded on survivors after a rank death
    /// (recovery work, not additional seeds).
    #[serde(default)]
    pub reassigned_streamlines: u64,
    /// Mean virtual seconds from a rank's death to the first survivor
    /// suspecting it (0.0 when no death was detected).
    #[serde(default)]
    pub detection_latency_mean: f64,
    /// Max virtual seconds from a rank's death to first suspicion.
    #[serde(default)]
    pub detection_latency_max: f64,
    /// Simulator events silently dropped because their target or sender
    /// rank was dead.
    #[serde(default)]
    pub dropped_events: u64,
    /// Ingest epochs in the run's seed schedule (0 on reports from the
    /// closed entry points, which predate streaming ingestion; 1 for a
    /// closed source run through the open entry points).
    #[serde(default)]
    pub ingest_epochs: u32,
    /// Epochs the folded per-rank frontier ledgers confirmed fully retired
    /// — equals `ingest_epochs` on a completed frontier-detector run, 0
    /// under the closed-set detector (no per-epoch ledger).
    #[serde(default)]
    pub ingest_frontier_epochs: u32,
    /// Virtual arrival time of each ingest epoch.
    #[serde(default)]
    pub ingest_epoch_arrivals: Vec<f64>,
    /// Virtual time each confirmed epoch completed (frontier order, so
    /// monotone non-decreasing; length `ingest_frontier_epochs`).
    #[serde(default)]
    pub ingest_epoch_completions: Vec<f64>,
    /// Mean arrival→completion lag over confirmed epochs (virtual seconds).
    #[serde(default)]
    pub ingest_lag_mean: f64,
    /// Max arrival→completion lag over confirmed epochs.
    #[serde(default)]
    pub ingest_lag_max: f64,
    /// Runtime events processed.
    pub events: u64,
    pub per_rank: Vec<ProcMetrics>,
}

impl RunReport {
    /// Block efficiency `E = (B_L − B_P)/B_L` (Eq. 2); 1.0 when no loads.
    ///
    /// Computed in `f64` rather than by `u64` subtraction: a report merged
    /// from partial per-worker snapshots can transiently show
    /// `blocks_purged > blocks_loaded`, and the unsigned subtraction
    /// panicked in debug builds.
    pub fn block_efficiency(&self) -> f64 {
        if self.blocks_loaded == 0 {
            1.0
        } else {
            (self.blocks_loaded as f64 - self.blocks_purged as f64) / self.blocks_loaded as f64
        }
    }

    /// Fraction of field evaluations served from the cell sampler's cached
    /// stencil; 0.0 when nothing was sampled.
    pub fn sampler_hit_rate(&self) -> f64 {
        let total = self.sampler_hits + self.sampler_misses;
        if total == 0 {
            0.0
        } else {
            self.sampler_hits as f64 / total as f64
        }
    }

    /// Max-over-mean busy time across ranks (1.0 = perfectly balanced).
    ///
    /// An all-idle run (every rank's busy time is zero — e.g. every seed
    /// was pruned before any rank did work) and an empty `per_rank` are
    /// both trivially balanced: 1.0, never NaN/inf in the summary line.
    /// Non-finite per-rank samples are excluded rather than poisoning the
    /// ratio.
    pub fn load_imbalance(&self) -> f64 {
        let busy: Vec<f64> =
            self.per_rank.iter().map(|m| m.busy()).filter(|b| b.is_finite() && *b >= 0.0).collect();
        let sum: f64 = busy.iter().sum();
        if busy.is_empty() || sum <= 0.0 {
            return 1.0;
        }
        let mean = sum / busy.len() as f64;
        busy.iter().cloned().fold(0.0, f64::max) / mean
    }

    /// Mean participation: the fraction of the run each rank spent actually
    /// integrating, averaged over ranks (1.0 = every rank computed for the
    /// whole run). The follow-up literature's headline scheduling metric.
    pub fn participation(&self) -> f64 {
        if self.wall <= 0.0 || self.per_rank.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .per_rank
            .iter()
            .map(|m| (m.compute / self.wall).clamp(0.0, 1.0))
            .filter(|v| v.is_finite())
            .sum();
        sum / self.per_rank.len() as f64
    }

    /// Share of total rank-time spent communicating (0.0 when idle ranks
    /// dominate this stays small; a master-bottlenecked or steal-happy run
    /// pushes it up).
    pub fn comm_overhead_share(&self) -> f64 {
        let denom = self.n_procs as f64 * self.wall;
        if denom <= 0.0 {
            return 0.0;
        }
        (self.comm_time / denom).clamp(0.0, 1.0)
    }

    /// Mirror the report into `registry` under the stable
    /// `streamline_run_*` names (the paper's §5 quantities).
    pub fn export_into(&self, registry: &streamline_obs::MetricsRegistry) {
        use streamline_obs::names;
        registry.set_gauge(names::RUN_WALL_SECONDS, self.wall);
        registry.set_gauge(names::RUN_COMPUTE_SECONDS, self.compute_time);
        registry.set_gauge(names::RUN_IO_SECONDS, self.io_time);
        registry.set_gauge(names::RUN_COMM_SECONDS, self.comm_time);
        registry.set_gauge(names::RUN_IDLE_SECONDS, self.idle_time);
        registry.set_gauge(names::RUN_RANKS, self.n_procs as f64);
        registry.set_counter(names::RUN_EVENTS_TOTAL, self.events);
        registry.set_counter(names::RUN_MSGS_TOTAL, self.msgs);
        registry.set_counter(names::RUN_BYTES_SENT_TOTAL, self.bytes_sent);
        registry.set_counter(names::RUN_BLOCKS_LOADED_TOTAL, self.blocks_loaded);
        registry.set_counter(names::RUN_BLOCKS_PURGED_TOTAL, self.blocks_purged);
        registry.set_counter(names::RUN_STEPS_TOTAL, self.total_steps);
        registry.set_counter(names::RUN_STREAMLINES_TERMINATED_TOTAL, self.terminated);
        registry.set_counter(names::RUN_SAMPLER_HITS_TOTAL, self.sampler_hits);
        registry.set_counter(names::RUN_SAMPLER_MISSES_TOTAL, self.sampler_misses);
        registry.set_counter(names::RUN_BATCHED_LANES_TOTAL, self.batched_lanes);
        registry.set_gauge(names::RUN_BATCH_OCCUPANCY, self.batch_occupancy);
        registry.set_counter(names::RUN_LOAD_RETRIES_TOTAL, self.load_retries);
        registry.set_counter(names::RUN_LOAD_FAILURES_TOTAL, self.load_failures);
        registry
            .set_counter(names::RUN_UNAVAILABLE_TERMINATIONS_TOTAL, self.unavailable_terminations);
        registry.set_gauge(names::RUN_BLOCK_EFFICIENCY, self.block_efficiency());
        registry.set_gauge(names::RUN_LOAD_IMBALANCE, self.load_imbalance());
        registry.set_counter(names::RUN_PINGPONG_STREAMLINES_TOTAL, self.pingpong_streamlines);
        registry.set_counter(names::RUN_BALANCE_MSGS_TOTAL, self.balance_msgs);
        registry.set_counter(names::RUN_BALANCE_BYTES_TOTAL, self.balance_bytes);
        registry.set_gauge(names::RUN_PARTICIPATION_RATIO, self.participation());
        registry.set_gauge(names::RUN_COMM_OVERHEAD_SHARE, self.comm_overhead_share());
        registry.set_counter(names::RUN_INGEST_EPOCHS, self.ingest_epochs as u64);
        registry.set_counter(names::RUN_FRONTIER_EPOCHS, self.ingest_frontier_epochs as u64);
        registry.set_gauge(names::RUN_FRONTIER_LAG_MEAN_SECONDS, self.ingest_lag_mean);
        registry.set_gauge(names::RUN_FRONTIER_LAG_MAX_SECONDS, self.ingest_lag_max);
        registry.set_counter(names::FAULTS_RANK_DEATHS_TOTAL, self.rank_deaths.len() as u64);
        registry.set_counter(names::FAULTS_RANK_LOST_STREAMLINES_TOTAL, self.rank_lost_streamlines);
        registry.set_counter(
            names::FAULTS_RANK_REASSIGNED_STREAMLINES_TOTAL,
            self.reassigned_streamlines,
        );
        registry.set_counter(names::FAULTS_RANK_DROPPED_EVENTS_TOTAL, self.dropped_events);
        registry.set_gauge(
            names::FAULTS_RANK_DETECTION_LATENCY_MEAN_SECONDS,
            self.detection_latency_mean,
        );
        registry.set_gauge(
            names::FAULTS_RANK_DETECTION_LATENCY_MAX_SECONDS,
            self.detection_latency_max,
        );
    }

    /// [`Self::export_into`] a fresh registry.
    pub fn to_registry(&self) -> streamline_obs::MetricsRegistry {
        let registry = streamline_obs::MetricsRegistry::new();
        self.export_into(&registry);
        registry
    }

    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        match self.outcome {
            RunOutcome::Completed => format!(
                "{:<16} p={:<4} wall={:>9.3}s io={:>9.3}s comm={:>9.4}s E={:>5.3} msgs={}",
                self.algorithm.label(),
                self.n_procs,
                self.wall,
                self.io_time,
                self.comm_time,
                self.block_efficiency(),
                self.msgs,
            ),
            RunOutcome::OutOfMemory { rank } => format!(
                "{:<16} p={:<4} OUT OF MEMORY (rank {rank})",
                self.algorithm.label(),
                self.n_procs,
            ),
            RunOutcome::MasterLost { rank } => format!(
                "{:<16} p={:<4} MASTER LOST (rank {rank}) deaths={} rank_lost={}",
                self.algorithm.label(),
                self.n_procs,
                self.rank_deaths.len(),
                self.rank_lost_streamlines,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            algorithm: Algorithm::HybridMasterSlave,
            n_procs: 4,
            dataset: "test".into(),
            seeding: "sparse".into(),
            n_seeds: 10,
            outcome: RunOutcome::Completed,
            wall: 1.0,
            io_time: 0.5,
            comm_time: 0.1,
            compute_time: 2.0,
            idle_time: 0.2,
            blocks_loaded: 10,
            blocks_purged: 4,
            msgs: 7,
            bytes_sent: 1000,
            terminated: 10,
            total_steps: 100,
            sampler_hits: 75,
            sampler_misses: 25,
            batched_lanes: 40,
            batch_occupancy: 0.625,
            load_retries: 0,
            load_failures: 0,
            unavailable_terminations: 0,
            pingpong_streamlines: 2,
            balance_msgs: 5,
            balance_bytes: 400,
            rank_deaths: vec![(1, 0.5)],
            rank_lost_streamlines: 1,
            reassigned_streamlines: 3,
            detection_latency_mean: 0.9,
            detection_latency_max: 1.2,
            dropped_events: 6,
            ingest_epochs: 2,
            ingest_frontier_epochs: 2,
            ingest_epoch_arrivals: vec![0.0, 0.3],
            ingest_epoch_completions: vec![0.4, 0.8],
            ingest_lag_mean: 0.45,
            ingest_lag_max: 0.5,
            events: 12,
            per_rank: vec![
                ProcMetrics { compute: 1.0, ..Default::default() },
                ProcMetrics { compute: 3.0, ..Default::default() },
            ],
        }
    }

    #[test]
    fn efficiency_eq2() {
        let r = report();
        assert!((r.block_efficiency() - 0.6).abs() < 1e-12);
        let mut r2 = r;
        r2.blocks_loaded = 0;
        r2.blocks_purged = 0;
        assert_eq!(r2.block_efficiency(), 1.0);
    }

    #[test]
    fn sampler_hit_rate_from_counters() {
        let mut r = report();
        assert!((r.sampler_hit_rate() - 0.75).abs() < 1e-12);
        r.sampler_hits = 0;
        r.sampler_misses = 0;
        assert_eq!(r.sampler_hit_rate(), 0.0);
    }

    #[test]
    fn deserializes_reports_without_sampler_counters() {
        // Reports written before the counters existed must still load.
        let json = serde_json::to_string(&report()).unwrap();
        let stripped =
            json.replace("\"sampler_hits\":75,", "").replace("\"sampler_misses\":25,", "");
        assert_ne!(json, stripped, "test must actually remove the fields");
        let r: RunReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(r.sampler_hits, 0);
        assert_eq!(r.sampler_misses, 0);
        assert_eq!(r.total_steps, 100);
    }

    #[test]
    fn deserializes_reports_without_resilience_counters() {
        let mut r = report();
        r.load_retries = 3;
        let json = serde_json::to_string(&r).unwrap();
        let stripped = json
            .replace("\"load_retries\":3,", "")
            .replace("\"load_failures\":0,", "")
            .replace("\"unavailable_terminations\":0,", "");
        assert_ne!(json, stripped, "test must actually remove the fields");
        let back: RunReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.load_retries, 0);
        assert_eq!(back.load_failures, 0);
        assert_eq!(back.unavailable_terminations, 0);
    }

    #[test]
    fn deserializes_reports_without_batch_counters() {
        // Reports written before the batch kernel existed must still load.
        let json = serde_json::to_string(&report()).unwrap();
        let stripped =
            json.replace("\"batched_lanes\":40,", "").replace("\"batch_occupancy\":0.625,", "");
        assert_ne!(json, stripped, "test must actually remove the fields");
        let back: RunReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.batched_lanes, 0);
        assert_eq!(back.batch_occupancy, 0.0);
        assert_eq!(back.total_steps, 100);
    }

    #[test]
    fn deserializes_reports_without_scheduling_diagnostics() {
        let json = serde_json::to_string(&report()).unwrap();
        let stripped = json
            .replace("\"pingpong_streamlines\":2,", "")
            .replace("\"balance_msgs\":5,", "")
            .replace("\"balance_bytes\":400,", "");
        assert_ne!(json, stripped, "test must actually remove the fields");
        let back: RunReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.pingpong_streamlines, 0);
        assert_eq!(back.balance_msgs, 0);
        assert_eq!(back.balance_bytes, 0);
    }

    #[test]
    fn deserializes_reports_without_rank_fault_fields() {
        // Reports written before rank fail-stop faults existed must load.
        let json = serde_json::to_string(&report()).unwrap();
        let stripped = json
            .replace("\"rank_deaths\":[[1,0.5]],", "")
            .replace("\"rank_lost_streamlines\":1,", "")
            .replace("\"reassigned_streamlines\":3,", "")
            .replace("\"detection_latency_mean\":0.9,", "")
            .replace("\"detection_latency_max\":1.2,", "")
            .replace("\"dropped_events\":6,", "");
        assert_ne!(json, stripped, "test must actually remove the fields");
        let back: RunReport = serde_json::from_str(&stripped).unwrap();
        assert!(back.rank_deaths.is_empty());
        assert_eq!(back.rank_lost_streamlines, 0);
        assert_eq!(back.reassigned_streamlines, 0);
        assert_eq!(back.detection_latency_mean, 0.0);
        assert_eq!(back.detection_latency_max, 0.0);
        assert_eq!(back.dropped_events, 0);
    }

    #[test]
    fn summary_mentions_master_lost() {
        let mut r = report();
        r.outcome = RunOutcome::MasterLost { rank: 0 };
        assert!(!r.outcome.completed());
        let s = r.summary();
        assert!(s.contains("MASTER LOST"), "{s}");
        assert!(s.contains("rank 0"), "{s}");
    }

    #[test]
    fn registry_mirrors_rank_fault_counters() {
        use streamline_obs::{names, MetricValue};
        let r = report();
        let reg = r.to_registry();
        assert_eq!(reg.get(names::FAULTS_RANK_DEATHS_TOTAL), Some(MetricValue::Counter(1)));
        assert_eq!(
            reg.get(names::FAULTS_RANK_LOST_STREAMLINES_TOTAL),
            Some(MetricValue::Counter(r.rank_lost_streamlines))
        );
        assert_eq!(
            reg.get(names::FAULTS_RANK_REASSIGNED_STREAMLINES_TOTAL),
            Some(MetricValue::Counter(r.reassigned_streamlines))
        );
        assert_eq!(
            reg.get(names::FAULTS_RANK_DROPPED_EVENTS_TOTAL),
            Some(MetricValue::Counter(r.dropped_events))
        );
        let MetricValue::Gauge(lat) =
            reg.get(names::FAULTS_RANK_DETECTION_LATENCY_MAX_SECONDS).unwrap()
        else {
            panic!("latency is a gauge")
        };
        assert_eq!(lat.to_bits(), r.detection_latency_max.to_bits());
    }

    #[test]
    fn participation_and_overhead_shares() {
        let r = report();
        // Ranks computed 1.0s and 3.0s of a 1.0s wall → (1.0 + 1.0)/2
        // after clamping the over-busy rank.
        assert!((r.participation() - 1.0).abs() < 1e-12);
        // comm 0.1s over 4 ranks × 1.0s wall.
        assert!((r.comm_overhead_share() - 0.025).abs() < 1e-12);
        let mut dead = r.clone();
        dead.wall = 0.0;
        assert_eq!(dead.participation(), 0.0);
        assert_eq!(dead.comm_overhead_share(), 0.0);
        let mut empty = r;
        empty.per_rank.clear();
        assert_eq!(empty.participation(), 0.0);
    }

    #[test]
    fn imbalance_max_over_mean() {
        let r = report();
        assert!((r.load_imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn efficiency_survives_purged_exceeding_loaded() {
        // Partial per-worker snapshots merged mid-drain can purge more than
        // they loaded; the old u64 subtraction panicked in debug builds.
        let mut r = report();
        r.blocks_loaded = 2;
        r.blocks_purged = 5;
        let e = r.block_efficiency();
        assert!(e.is_finite());
        assert!((e - (-1.5)).abs() < 1e-12, "E = (2-5)/2, got {e}");
        assert!(r.summary().contains("E="), "summary must still format");
    }

    #[test]
    fn imbalance_of_all_idle_run_is_balanced() {
        let mut r = report();
        r.per_rank = vec![ProcMetrics::default(); 4];
        let imb = r.load_imbalance();
        assert!(imb.is_finite(), "all-idle run must not be NaN/inf, got {imb}");
        assert_eq!(imb, 1.0);
    }

    #[test]
    fn imbalance_of_empty_report_is_balanced() {
        let mut r = report();
        r.per_rank.clear();
        assert_eq!(r.load_imbalance(), 1.0);
    }

    #[test]
    fn imbalance_ignores_non_finite_ranks() {
        let mut r = report();
        r.per_rank.push(ProcMetrics { compute: f64::NAN, ..Default::default() });
        let imb = r.load_imbalance();
        assert!(imb.is_finite(), "one poisoned rank must not break the metric");
        assert!((imb - 1.5).abs() < 1e-12, "finite ranks still balance to 1.5, got {imb}");
    }

    #[test]
    fn registry_mirror_matches_report_bit_for_bit() {
        use streamline_obs::{names, MetricValue};
        let r = report();
        let reg = r.to_registry();
        assert_eq!(reg.get(names::RUN_EVENTS_TOTAL), Some(MetricValue::Counter(r.events)));
        assert_eq!(
            reg.get(names::RUN_BLOCKS_LOADED_TOTAL),
            Some(MetricValue::Counter(r.blocks_loaded))
        );
        let MetricValue::Gauge(wall) = reg.get(names::RUN_WALL_SECONDS).unwrap() else {
            panic!("wall is a gauge")
        };
        assert_eq!(wall.to_bits(), r.wall.to_bits());
        let MetricValue::Gauge(e) = reg.get(names::RUN_BLOCK_EFFICIENCY).unwrap() else {
            panic!("efficiency is a gauge")
        };
        assert_eq!(e.to_bits(), r.block_efficiency().to_bits());
        assert_eq!(
            reg.get(names::RUN_BATCHED_LANES_TOTAL),
            Some(MetricValue::Counter(r.batched_lanes))
        );
        let MetricValue::Gauge(occ) = reg.get(names::RUN_BATCH_OCCUPANCY).unwrap() else {
            panic!("occupancy is a gauge")
        };
        assert_eq!(occ.to_bits(), r.batch_occupancy.to_bits());
    }

    #[test]
    fn summary_mentions_oom() {
        let mut r = report();
        r.outcome = RunOutcome::OutOfMemory { rank: 2 };
        assert!(r.summary().contains("OUT OF MEMORY"));
    }

    #[test]
    fn report_serializes() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_procs, 4);
        assert!(back.outcome.completed());
    }
}
