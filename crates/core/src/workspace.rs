//! Per-rank machinery shared by all three algorithms: the block cache, the
//! advection loop, and logical memory accounting.

use crate::advance::StreamlineBatch;
use crate::config::BatchParams;
use crate::msg::Msg;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use streamline_desim::Context;
use streamline_field::block::{Block, BlockId};
use streamline_field::decomp::BlockDecomposition;
use streamline_integrate::{Dopri5, StepLimits, Streamline, Termination};
use streamline_iosim::{BlockStore, CacheStats, DiskModel, LruCache, StoreError};

/// Serializable image of a [`Workspace`]'s mutable state: the LRU residency
/// manifest (coldest first), the cache counters, and every accounting
/// counter. Block *contents* are not stored — on restore they are reloaded
/// from the block store, which holds the identical immutable data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkspaceSnapshot {
    /// Resident blocks, coldest first (insertion in this order reproduces
    /// the exact future eviction sequence).
    pub resident: Vec<BlockId>,
    pub cache_stats: CacheStats,
    pub geom_vertices: u64,
    pub resident_streams: u64,
    pub terminated: u64,
    pub total_steps: u64,
    pub sampler_hits: u64,
    pub sampler_misses: u64,
    pub load_retries: u64,
    pub load_failures: u64,
    pub unavailable: u64,
    /// Streamlines advanced through the batch kernel (absent in snapshots
    /// from before the kernel existed — defaults keep them readable).
    #[serde(default)]
    pub batched_lanes: u64,
    /// Batch-kernel invocations.
    #[serde(default)]
    pub batch_calls: u64,
}

/// Where a streamline went after being advanced inside one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockExit {
    /// Still active, now inside this other block.
    MovedTo(BlockId),
    /// Terminated (status already set on the streamline).
    Done(Termination),
}

/// One rank's cache, tracer and accounting.
pub struct Workspace {
    pub decomp: BlockDecomposition,
    store: Arc<dyn BlockStore>,
    cache: LruCache,
    disk: DiskModel,
    limits: StepLimits,
    sec_per_step: f64,
    stepper: Dopri5,
    /// Logical bytes charged per resident curve vertex (see
    /// [`crate::config::MemoryBudget::vertex_bytes`]).
    vertex_bytes: f64,
    /// Logical bytes charged per resident streamline object (see
    /// [`crate::config::MemoryBudget::stream_bytes`]).
    stream_bytes: f64,
    /// Curve vertices resident on this rank (active + locally terminated).
    geom_vertices: u64,
    /// Streamline objects resident on this rank.
    resident_streams: u64,
    /// Streamlines this rank has terminated (cumulative).
    pub terminated: u64,
    /// Accepted integration steps performed by this rank.
    pub total_steps: u64,
    /// Cell-sampler stencil-cache hits across all advances on this rank.
    pub sampler_hits: u64,
    /// Cell-sampler stencil gathers across all advances on this rank.
    pub sampler_misses: u64,
    /// Block loads retried after a transient store error.
    pub load_retries: u64,
    /// Block loads abandoned after exhausting the retry budget.
    pub load_failures: u64,
    /// Streamlines terminated with [`Termination::BlockUnavailable`].
    pub unavailable: u64,
    /// Streamlines advanced through the batch kernel on this rank.
    pub batched_lanes: u64,
    /// Batch-kernel invocations on this rank.
    pub batch_calls: u64,
    /// Load attempts per block before giving up (>= 1).
    max_load_attempts: u32,
    /// Maximum lanes per [`Workspace::advance_batch_in`] group; the
    /// driver's drain loops chunk their per-block queues to this.
    batch_lanes: usize,
    /// Reusable SoA scratch for the batch kernel.
    batch: StreamlineBatch,
}

impl Workspace {
    pub fn new(
        decomp: BlockDecomposition,
        store: Arc<dyn BlockStore>,
        cache_blocks: usize,
        disk: DiskModel,
        limits: StepLimits,
        sec_per_step: f64,
    ) -> Self {
        Workspace {
            decomp,
            store,
            cache: LruCache::new(cache_blocks),
            disk,
            limits,
            sec_per_step,
            stepper: Dopri5,
            vertex_bytes: 24.0,
            stream_bytes: 0.0,
            geom_vertices: 0,
            resident_streams: 0,
            terminated: 0,
            total_steps: 0,
            sampler_hits: 0,
            sampler_misses: 0,
            load_retries: 0,
            load_failures: 0,
            unavailable: 0,
            batched_lanes: 0,
            batch_calls: 0,
            max_load_attempts: 3,
            batch_lanes: BatchParams::AUTO_LANES,
            batch: StreamlineBatch::new(),
        }
    }

    /// Override the batch-kernel lane bound (default
    /// [`BatchParams::AUTO_LANES`]; must be >= 1).
    pub fn set_batch_lanes(&mut self, lanes: usize) {
        assert!(lanes >= 1, "need at least one batch lane");
        self.batch_lanes = lanes;
    }

    /// Maximum lanes per batch advance — drivers chunk their per-block
    /// queues to this.
    pub fn batch_lanes(&self) -> usize {
        self.batch_lanes
    }

    /// Override the per-block load-attempt budget (default 3; must be >= 1).
    pub fn set_max_load_attempts(&mut self, attempts: u32) {
        assert!(attempts >= 1, "need at least one load attempt");
        self.max_load_attempts = attempts;
    }

    /// Override the logical per-vertex geometry cost (default 24 B — bare
    /// positions).
    pub fn set_vertex_bytes(&mut self, bytes: f64) {
        self.vertex_bytes = bytes;
    }

    /// Override the logical per-streamline-object cost (default 0).
    pub fn set_stream_bytes(&mut self, bytes: f64) {
        self.stream_bytes = bytes;
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    pub fn resident_blocks(&self) -> Vec<BlockId> {
        self.cache.resident()
    }

    pub fn is_resident(&self, id: BlockId) -> bool {
        self.cache.contains(id)
    }

    /// Get a resident block or load it, charging the disk model's load time.
    /// Panics on a store error — for setups known to be fault-free; the
    /// drivers use [`Workspace::try_acquire`].
    pub fn acquire(&mut self, id: BlockId, ctx: &mut dyn Context<Msg>) -> Arc<Block> {
        self.try_acquire(id, ctx).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Get a resident block or load it with a bounded retry budget, charging
    /// the disk model's load time for *every* attempt (a failed read still
    /// occupied the I/O system). Transient store faults are retried up to
    /// `max_load_attempts` times; exhaustion is counted in `load_failures`
    /// and the cache records a failed (non-)load.
    pub fn try_acquire(
        &mut self,
        id: BlockId,
        ctx: &mut dyn Context<Msg>,
    ) -> Result<Arc<Block>, StoreError> {
        if let Some(b) = self.cache.get(id) {
            return Ok(b);
        }
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            ctx.charge_io(self.disk.block_load_time());
            match self.store.try_load(id) {
                Ok(b) => {
                    self.cache.insert(Arc::clone(&b));
                    return Ok(b);
                }
                Err(e) => {
                    if attempt >= self.max_load_attempts {
                        self.cache.record_failed();
                        self.load_failures += 1;
                        return Err(e);
                    }
                    self.load_retries += 1;
                }
            }
        }
    }

    /// Terminate `sl` because its block cannot be produced: sets
    /// [`Termination::BlockUnavailable`], updates the termination and
    /// residency accounting exactly like a normal in-block termination so
    /// global active counts still converge.
    pub fn terminate_unavailable(&mut self, sl: &mut Streamline) {
        sl.terminate(Termination::BlockUnavailable);
        self.terminated += 1;
        self.unavailable += 1;
        self.resident_streams = self.resident_streams.saturating_sub(1);
    }

    /// Account a streamline becoming resident on this rank (seeded here or
    /// received by hand-off).
    pub fn admit(&mut self, sl: &Streamline) {
        self.geom_vertices += sl.vertex_count();
        self.resident_streams += 1;
    }

    /// Account a streamline leaving this rank (handed off elsewhere).
    pub fn release(&mut self, sl: &Streamline) {
        debug_assert!(self.geom_vertices >= sl.vertex_count());
        self.geom_vertices = self.geom_vertices.saturating_sub(sl.vertex_count());
        self.resident_streams = self.resident_streams.saturating_sub(1);
    }

    /// Account a streamline terminating here: the solver object is freed,
    /// the geometry stays resident (it is the visualization product).
    pub fn retire_object(&mut self) {
        self.resident_streams = self.resident_streams.saturating_sub(1);
    }

    /// Advance `sl` inside resident block `id` until it exits the block or
    /// terminates. Charges compute time; updates geometry accounting. The
    /// advance itself is [`crate::advance::advance_in_block`], shared with
    /// the query service.
    pub fn advance_in(
        &mut self,
        sl: &mut Streamline,
        id: BlockId,
        ctx: &mut dyn Context<Msg>,
    ) -> BlockExit {
        let block = self.cache.get(id).expect("advance_in requires a resident block");
        let (exit, stats) =
            crate::advance::advance_in_block(sl, &block, &self.decomp, &self.limits, &self.stepper);
        ctx.charge_compute(stats.steps as f64 * self.sec_per_step);
        self.geom_vertices += stats.steps;
        self.total_steps += stats.steps;
        self.sampler_hits += stats.sampler_hits;
        self.sampler_misses += stats.sampler_misses;
        if let BlockExit::Done(_) = exit {
            self.terminated += 1;
            self.resident_streams = self.resident_streams.saturating_sub(1);
        }
        exit
    }

    /// Advance every streamline of `group` inside resident block `id` with
    /// the batch kernel — bit-identical per streamline to calling
    /// [`Workspace::advance_in`] on each in isolation, with the same
    /// summed compute charge and accounting. Returns one exit per lane in
    /// input order.
    pub fn advance_batch_in(
        &mut self,
        group: &mut [Streamline],
        id: BlockId,
        ctx: &mut dyn Context<Msg>,
    ) -> Vec<BlockExit> {
        let block = self.cache.get(id).expect("advance_batch_in requires a resident block");
        let (exits, stats) = crate::advance::advance_batch_in_block(
            group,
            &block,
            &self.decomp,
            &self.limits,
            &mut self.batch,
        );
        ctx.charge_compute(stats.steps as f64 * self.sec_per_step);
        self.geom_vertices += stats.steps;
        self.total_steps += stats.steps;
        self.sampler_hits += stats.sampler_hits;
        self.sampler_misses += stats.sampler_misses;
        self.batched_lanes += stats.batched_lanes;
        self.batch_calls += 1;
        for exit in &exits {
            if let BlockExit::Done(_) = exit {
                self.terminated += 1;
                self.resident_streams = self.resident_streams.saturating_sub(1);
            }
        }
        exits
    }

    /// Logical bytes resident on this rank: cached blocks at paper scale
    /// plus streamline geometry (per-curve overhead is folded into the
    /// per-vertex cost).
    pub fn memory_bytes(&self) -> f64 {
        self.cache.len() as f64 * self.disk.logical_block_bytes
            + self.geom_vertices as f64 * self.vertex_bytes
            + self.resident_streams as f64 * self.stream_bytes
    }

    /// Which block owns a seed; `None` if outside the domain.
    pub fn locate(&self, p: streamline_math::Vec3) -> Option<BlockId> {
        self.decomp.locate(p)
    }

    /// Capture this workspace's mutable state for a checkpoint.
    pub fn snapshot(&self) -> WorkspaceSnapshot {
        WorkspaceSnapshot {
            resident: self.cache.manifest(),
            cache_stats: self.cache.stats(),
            geom_vertices: self.geom_vertices,
            resident_streams: self.resident_streams,
            terminated: self.terminated,
            total_steps: self.total_steps,
            sampler_hits: self.sampler_hits,
            sampler_misses: self.sampler_misses,
            load_retries: self.load_retries,
            load_failures: self.load_failures,
            unavailable: self.unavailable,
            batched_lanes: self.batched_lanes,
            batch_calls: self.batch_calls,
        }
    }

    /// Restore a snapshot taken by [`Self::snapshot`]. Resident blocks are
    /// reloaded straight from the store — no simulated I/O time is charged
    /// and no cache counters move (the snapshot's counters are installed
    /// verbatim), because the restore itself is outside the simulated run.
    pub fn restore(&mut self, snap: &WorkspaceSnapshot) -> Result<(), StoreError> {
        let mut blocks = Vec::with_capacity(snap.resident.len());
        for &id in &snap.resident {
            blocks.push(self.store.try_load(id)?);
        }
        self.cache.restore(blocks, snap.cache_stats);
        self.geom_vertices = snap.geom_vertices;
        self.resident_streams = snap.resident_streams;
        self.terminated = snap.terminated;
        self.total_steps = snap.total_steps;
        self.sampler_hits = snap.sampler_hits;
        self.sampler_misses = snap.sampler_misses;
        self.load_retries = snap.load_retries;
        self.load_failures = snap.load_failures;
        self.unavailable = snap.unavailable;
        self.batched_lanes = snap.batched_lanes;
        self.batch_calls = snap.batch_calls;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{uniform_x_dataset, NullCtx};
    use streamline_integrate::{StreamlineId, StreamlineStatus};
    use streamline_iosim::MemoryStore;
    use streamline_math::Vec3;

    fn workspace(cache_blocks: usize) -> Workspace {
        let ds = uniform_x_dataset();
        let store = Arc::new(MemoryStore::build(&ds));
        Workspace::new(
            ds.decomp,
            store,
            cache_blocks,
            DiskModel::paper_scale(),
            StepLimits::default(),
            1e-6,
        )
    }

    #[test]
    fn acquire_charges_io_once_then_hits() {
        let mut ws = workspace(4);
        let mut ctx = NullCtx::default();
        ws.acquire(BlockId(0), &mut ctx);
        ws.acquire(BlockId(0), &mut ctx);
        assert!((ctx.io - DiskModel::paper_scale().block_load_time()).abs() < 1e-12);
        let stats = ws.cache_stats();
        assert_eq!(stats.loaded, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn advance_crosses_into_next_block() {
        // uniform +x field over [0,1]^3 decomposed 2x2x2: a streamline in
        // block (0,*,*) must exit into block (1,*,*).
        let mut ws = workspace(8);
        let mut ctx = NullCtx::default();
        let seed = Vec3::new(0.25, 0.25, 0.25);
        let start = ws.locate(seed).unwrap();
        ws.acquire(start, &mut ctx);
        let mut sl = Streamline::new(StreamlineId(0), seed, 1e-2);
        ws.admit(&sl);
        match ws.advance_in(&mut sl, start, &mut ctx) {
            BlockExit::MovedTo(next) => {
                assert_ne!(next, start);
                assert!(ws.decomp.block_bounds(next).contains_eps(sl.state.position, 1e-9));
            }
            other => panic!("expected block crossing, got {other:?}"),
        }
        assert!(ctx.compute > 0.0);
        assert!(ws.total_steps > 0);
    }

    #[test]
    fn advance_terminates_at_domain_exit() {
        let mut ws = workspace(8);
        let mut ctx = NullCtx::default();
        let seed = Vec3::new(0.75, 0.25, 0.25);
        let start = ws.locate(seed).unwrap();
        ws.acquire(start, &mut ctx);
        let mut sl = Streamline::new(StreamlineId(0), seed, 1e-2);
        ws.admit(&sl);
        let exit = ws.advance_in(&mut sl, start, &mut ctx);
        assert_eq!(exit, BlockExit::Done(Termination::ExitedDomain));
        assert_eq!(sl.status, StreamlineStatus::Terminated(Termination::ExitedDomain));
        assert_eq!(ws.terminated, 1);
    }

    #[test]
    fn batch_advance_matches_scalar_charges_and_counters() {
        let seeds =
            [Vec3::new(0.05, 0.25, 0.25), Vec3::new(0.20, 0.40, 0.10), Vec3::new(0.75, 0.25, 0.25)];
        let make = |i: usize, s: Vec3| Streamline::new(StreamlineId(i as u32), s, 1e-2);

        let mut scalar_ws = workspace(8);
        let mut scalar_ctx = NullCtx::default();
        let mut scalar_exits = Vec::new();
        let mut scalar_sls = Vec::new();
        for (i, &s) in seeds.iter().enumerate() {
            let start = scalar_ws.locate(s).unwrap();
            scalar_ws.acquire(start, &mut scalar_ctx);
            let mut sl = make(i, s);
            scalar_ws.admit(&sl);
            scalar_exits.push(scalar_ws.advance_in(&mut sl, start, &mut scalar_ctx));
            scalar_sls.push(sl);
        }

        let mut batch_ws = workspace(8);
        let mut batch_ctx = NullCtx::default();
        // All three seeds start in distinct blocks; group the two that
        // share a block-advance anyway by advancing per starting block.
        let mut exits = Vec::new();
        let mut group_all: Vec<Streamline> =
            seeds.iter().enumerate().map(|(i, &s)| make(i, s)).collect();
        for sl in &group_all {
            batch_ws.admit(sl);
        }
        // Advance each lane's own starting block as a single-block batch of
        // the lanes that live there.
        let mut by_block: std::collections::BTreeMap<BlockId, Vec<usize>> = Default::default();
        for (i, sl) in group_all.iter().enumerate() {
            by_block.entry(batch_ws.locate(sl.state.position).unwrap()).or_default().push(i);
        }
        let mut exit_by_lane = vec![None; group_all.len()];
        for (block, lanes) in by_block {
            batch_ws.acquire(block, &mut batch_ctx);
            let mut group: Vec<Streamline> = Vec::new();
            for &i in &lanes {
                group.push(group_all[i].clone());
            }
            let ex = batch_ws.advance_batch_in(&mut group, block, &mut batch_ctx);
            for ((&i, sl), e) in lanes.iter().zip(group).zip(ex) {
                group_all[i] = sl;
                exit_by_lane[i] = Some(e);
            }
        }
        for e in exit_by_lane {
            exits.push(e.unwrap());
        }

        assert_eq!(exits, scalar_exits);
        for (a, b) in scalar_sls.iter().zip(&group_all) {
            assert_eq!(a, b, "lane {:?} diverged", a.id);
        }
        assert_eq!(batch_ws.total_steps, scalar_ws.total_steps);
        assert_eq!(batch_ws.sampler_hits, scalar_ws.sampler_hits);
        assert_eq!(batch_ws.sampler_misses, scalar_ws.sampler_misses);
        assert_eq!(batch_ws.terminated, scalar_ws.terminated);
        assert!((batch_ctx.compute - scalar_ctx.compute).abs() < 1e-15);
        assert_eq!(batch_ws.batched_lanes, seeds.len() as u64);
        assert!(batch_ws.batch_calls >= 1);
        assert_eq!(scalar_ws.batched_lanes, 0);
    }

    #[test]
    fn memory_accounting_tracks_admit_release() {
        let mut ws = workspace(2);
        let mut ctx = NullCtx::default();
        let base = ws.memory_bytes();
        assert_eq!(base, 0.0);
        ws.acquire(BlockId(0), &mut ctx);
        let with_block = ws.memory_bytes();
        assert!((with_block - DiskModel::paper_scale().logical_block_bytes).abs() < 1.0);
        let mut sl = Streamline::new(StreamlineId(0), Vec3::splat(0.25), 1e-2);
        for i in 0..10 {
            sl.push_step(Vec3::splat(0.25 + i as f64 * 1e-3), 1e-3);
        }
        ws.admit(&sl);
        assert!((ws.memory_bytes() - with_block - 11.0 * 24.0).abs() < 1.0);
        ws.release(&sl);
        assert!((ws.memory_bytes() - with_block).abs() < 1.0);
    }

    #[test]
    fn try_acquire_retries_transient_faults_and_charges_each_attempt() {
        let ds = uniform_x_dataset();
        let store = Arc::new(MemoryStore::build(&ds));
        let plan = streamline_iosim::FaultPlan::new().transient(BlockId(0), 2);
        let faulty = Arc::new(streamline_iosim::FaultStore::new(store, plan));
        let mut ws = Workspace::new(
            ds.decomp,
            faulty,
            4,
            DiskModel::paper_scale(),
            StepLimits::default(),
            1e-6,
        );
        let mut ctx = NullCtx::default();
        let b = ws.try_acquire(BlockId(0), &mut ctx).expect("third attempt succeeds");
        assert_eq!(b.id, BlockId(0));
        assert_eq!(ws.load_retries, 2);
        assert_eq!(ws.load_failures, 0);
        // All three attempts hit the (simulated) disk.
        let per_load = DiskModel::paper_scale().block_load_time();
        assert!((ctx.io - 3.0 * per_load).abs() < 1e-12);
        assert_eq!(ws.cache_stats().loaded, 1);
        assert_eq!(ws.cache_stats().failed, 0);
    }

    #[test]
    fn try_acquire_gives_up_on_permanent_faults() {
        let ds = uniform_x_dataset();
        let store = Arc::new(MemoryStore::build(&ds));
        let plan = streamline_iosim::FaultPlan::new().permanent(BlockId(1));
        let faulty = Arc::new(streamline_iosim::FaultStore::new(store, plan));
        let mut ws = Workspace::new(
            ds.decomp,
            faulty,
            4,
            DiskModel::paper_scale(),
            StepLimits::default(),
            1e-6,
        );
        let mut ctx = NullCtx::default();
        assert!(ws.try_acquire(BlockId(1), &mut ctx).is_err());
        assert_eq!(ws.load_retries, 2, "3 attempts = 2 retries");
        assert_eq!(ws.load_failures, 1);
        let stats = ws.cache_stats();
        assert_eq!(stats.loaded, 0, "a failed load must not count as a load");
        assert_eq!(stats.failed, 1);
        // An unaffected block still loads fine afterwards.
        assert!(ws.try_acquire(BlockId(0), &mut ctx).is_ok());
    }

    #[test]
    fn terminate_unavailable_keeps_accounting_consistent() {
        let mut ws = workspace(2);
        let mut sl = Streamline::new(StreamlineId(3), Vec3::splat(0.25), 1e-2);
        ws.admit(&sl);
        ws.terminate_unavailable(&mut sl);
        assert_eq!(sl.status, StreamlineStatus::Terminated(Termination::BlockUnavailable));
        assert_eq!(ws.terminated, 1);
        assert_eq!(ws.unavailable, 1);
        // Geometry stays resident (it is the product); the object is freed.
        assert!(ws.memory_bytes() > 0.0);
    }

    #[test]
    fn snapshot_restore_reproduces_cache_and_counters() {
        let mut ws = workspace(2);
        let mut ctx = NullCtx::default();
        ws.acquire(BlockId(0), &mut ctx);
        ws.acquire(BlockId(1), &mut ctx);
        ws.acquire(BlockId(0), &mut ctx); // block 1 is now the LRU victim
        ws.terminated = 3;
        ws.total_steps = 99;
        let snap = ws.snapshot();

        let mut fresh = workspace(2);
        fresh.restore(&snap).expect("store has every block");
        assert_eq!(fresh.snapshot(), snap, "snapshot must round-trip exactly");
        assert_eq!(fresh.cache_stats(), ws.cache_stats());
        // Same future eviction: loading block 2 purges block 1 in both.
        let mut ctx2 = NullCtx::default();
        ws.acquire(BlockId(2), &mut ctx);
        fresh.acquire(BlockId(2), &mut ctx2);
        let mut a = ws.resident_blocks();
        let mut b = fresh.resident_blocks();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(!fresh.is_resident(BlockId(1)));
    }

    #[test]
    fn lru_eviction_applies_under_pressure() {
        let mut ws = workspace(1);
        let mut ctx = NullCtx::default();
        ws.acquire(BlockId(0), &mut ctx);
        ws.acquire(BlockId(1), &mut ctx);
        let stats = ws.cache_stats();
        assert_eq!(stats.loaded, 2);
        assert_eq!(stats.purged, 1);
        assert!(!ws.is_resident(BlockId(0)));
    }
}
