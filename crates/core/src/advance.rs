//! The block-local advance step shared by every execution engine.
//!
//! [`Workspace::advance_in`](crate::workspace::Workspace::advance_in) (the
//! simulated-cluster ranks) and the `streamline-serve` query service both
//! advance a streamline through one resident block with *exactly* this
//! function, so a streamline computed by the service is bit-identical to
//! one computed by the single-shot drivers: same stepper, same limits, same
//! shared-face nudge, same termination decisions.

use crate::workspace::BlockExit;
use streamline_field::block::Block;
use streamline_field::decomp::BlockDecomposition;
use streamline_integrate::tracer::{advect, AdvectOutcome};
use streamline_integrate::{Dopri5, StepLimits, Streamline, Termination};

/// Advance `sl` inside `block` until it exits the block or terminates,
/// then resolve which block owns it next. Returns the exit disposition and
/// the number of accepted integration steps taken.
///
/// When the integrator stops exactly on a shared block face, the position
/// is nudged along the local velocity by `1e-9` of the domain scale so
/// ownership is unambiguous; a streamline that cannot leave the face even
/// after the nudge is terminated with [`Termination::StepUnderflow`].
pub fn advance_in_block(
    sl: &mut Streamline,
    block: &Block,
    decomp: &BlockDecomposition,
    limits: &StepLimits,
    stepper: &Dopri5,
) -> (BlockExit, u64) {
    let id = block.id;
    let bounds = block.bounds;
    let sample = |p| block.sample(p);
    let region = move |p| bounds.contains(p);
    let r = advect(sl, &sample, &region, limits, stepper);
    let exit = match r.outcome {
        AdvectOutcome::Terminated(t) => BlockExit::Done(t),
        AdvectOutcome::LeftRegion => {
            let pos = sl.state.position;
            match decomp.locate(pos) {
                Some(next) if next != id => BlockExit::MovedTo(next),
                Some(_) => {
                    // Numerically on the shared face: nudge along the
                    // local velocity so ownership is unambiguous.
                    let scale = decomp.domain.size().max_abs_component();
                    if let Some(dir) = block.sample(pos).and_then(|v| v.normalized()) {
                        sl.state.position = pos + dir * (1e-9 * scale);
                    }
                    match decomp.locate(sl.state.position) {
                        Some(next) if next != id => BlockExit::MovedTo(next),
                        Some(_) => {
                            sl.terminate(Termination::StepUnderflow);
                            BlockExit::Done(Termination::StepUnderflow)
                        }
                        None => {
                            sl.terminate(Termination::ExitedDomain);
                            BlockExit::Done(Termination::ExitedDomain)
                        }
                    }
                }
                None => {
                    sl.terminate(Termination::ExitedDomain);
                    BlockExit::Done(Termination::ExitedDomain)
                }
            }
        }
    };
    (exit, r.steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::uniform_x_dataset;
    use streamline_integrate::{StreamlineId, StreamlineStatus};
    use streamline_math::Vec3;

    #[test]
    fn crosses_block_face_in_uniform_flow() {
        let ds = uniform_x_dataset();
        let seed = Vec3::new(0.25, 0.25, 0.25);
        let start = ds.decomp.locate(seed).unwrap();
        let block = ds.build_block(start);
        let mut sl = Streamline::new(StreamlineId(0), seed, 1e-2);
        let (exit, steps) =
            advance_in_block(&mut sl, &block, &ds.decomp, &StepLimits::default(), &Dopri5);
        assert!(steps > 0);
        match exit {
            BlockExit::MovedTo(next) => assert_ne!(next, start),
            other => panic!("expected a block crossing, got {other:?}"),
        }
    }

    #[test]
    fn terminates_leaving_the_domain() {
        let ds = uniform_x_dataset();
        let seed = Vec3::new(0.75, 0.25, 0.25);
        let start = ds.decomp.locate(seed).unwrap();
        let block = ds.build_block(start);
        let mut sl = Streamline::new(StreamlineId(0), seed, 1e-2);
        let (exit, _) =
            advance_in_block(&mut sl, &block, &ds.decomp, &StepLimits::default(), &Dopri5);
        assert_eq!(exit, BlockExit::Done(Termination::ExitedDomain));
        assert_eq!(sl.status, StreamlineStatus::Terminated(Termination::ExitedDomain));
    }
}
