//! The block-local advance step shared by every execution engine.
//!
//! [`Workspace::advance_in`](crate::workspace::Workspace::advance_in) (the
//! simulated-cluster ranks) and the `streamline-serve` query service both
//! advance a streamline through one resident block with *exactly* this
//! function, so a streamline computed by the service is bit-identical to
//! one computed by the single-shot drivers: same stepper, same limits, same
//! shared-face nudge, same termination decisions.

use crate::workspace::BlockExit;
use streamline_field::block::Block;
use streamline_field::decomp::BlockDecomposition;
use streamline_field::sampler::CellSampler;
use streamline_integrate::tracer::{advect, AdvectOutcome};
use streamline_integrate::{Dopri5, StepLimits, Streamline, Termination};

/// Work accounting for one [`advance_in_block`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvanceStats {
    /// Accepted integration steps.
    pub steps: u64,
    /// Field evaluations served from the cell sampler's cached stencil.
    pub sampler_hits: u64,
    /// Field evaluations that gathered a fresh 8-corner stencil.
    pub sampler_misses: u64,
}

/// Advance `sl` inside `block` until it exits the block or terminates,
/// then resolve which block owns it next. Returns the exit disposition and
/// the work performed ([`AdvanceStats`]).
///
/// Field evaluations go through a [`CellSampler`] scoped to this call —
/// bit-identical to `block.sample` but skipping the 8-corner gather when
/// consecutive evaluations land in the same cell.
///
/// When the integrator stops exactly on a shared block face, the position
/// is nudged along the local velocity by `1e-9` of the domain scale so
/// ownership is unambiguous; a streamline that cannot leave the face even
/// after the nudge is terminated with [`Termination::StepUnderflow`].
pub fn advance_in_block(
    sl: &mut Streamline,
    block: &Block,
    decomp: &BlockDecomposition,
    limits: &StepLimits,
    stepper: &Dopri5,
) -> (BlockExit, AdvanceStats) {
    let id = block.id;
    let bounds = block.bounds;
    let mut sampler = CellSampler::new(block);
    let mut sample = |p| sampler.sample(p);
    let region = move |p| bounds.contains(p);
    let r = advect(sl, &mut sample, &region, limits, stepper);
    let sampler_stats = sampler.stats();
    let exit = match r.outcome {
        AdvectOutcome::Terminated(t) => BlockExit::Done(t),
        AdvectOutcome::LeftRegion => {
            let pos = sl.state.position;
            match decomp.locate(pos) {
                Some(next) if next != id => BlockExit::MovedTo(next),
                Some(_) => {
                    // Numerically on the shared face: nudge along the
                    // local velocity so ownership is unambiguous.
                    let scale = decomp.domain.size().max_abs_component();
                    if let Some(dir) = block.sample(pos).and_then(|v| v.normalized()) {
                        sl.state.position = pos + dir * (1e-9 * scale);
                    }
                    match decomp.locate(sl.state.position) {
                        Some(next) if next != id => BlockExit::MovedTo(next),
                        Some(_) => {
                            sl.terminate(Termination::StepUnderflow);
                            BlockExit::Done(Termination::StepUnderflow)
                        }
                        None => {
                            sl.terminate(Termination::ExitedDomain);
                            BlockExit::Done(Termination::ExitedDomain)
                        }
                    }
                }
                None => {
                    sl.terminate(Termination::ExitedDomain);
                    BlockExit::Done(Termination::ExitedDomain)
                }
            }
        }
    };
    (
        exit,
        AdvanceStats {
            steps: r.steps,
            sampler_hits: sampler_stats.hits,
            sampler_misses: sampler_stats.misses,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::uniform_x_dataset;
    use streamline_integrate::{StreamlineId, StreamlineStatus};
    use streamline_math::Vec3;

    #[test]
    fn crosses_block_face_in_uniform_flow() {
        let ds = uniform_x_dataset();
        let seed = Vec3::new(0.25, 0.25, 0.25);
        let start = ds.decomp.locate(seed).unwrap();
        let block = ds.build_block(start);
        let mut sl = Streamline::new(StreamlineId(0), seed, 1e-2);
        let (exit, stats) =
            advance_in_block(&mut sl, &block, &ds.decomp, &StepLimits::default(), &Dopri5);
        assert!(stats.steps > 0);
        assert!(
            stats.sampler_hits + stats.sampler_misses > 0,
            "every accepted step samples the field"
        );
        assert!(stats.sampler_hits > 0, "RK stages revisiting a cell must hit the stencil cache");
        match exit {
            BlockExit::MovedTo(next) => assert_ne!(next, start),
            other => panic!("expected a block crossing, got {other:?}"),
        }
    }

    #[test]
    fn terminates_leaving_the_domain() {
        let ds = uniform_x_dataset();
        let seed = Vec3::new(0.75, 0.25, 0.25);
        let start = ds.decomp.locate(seed).unwrap();
        let block = ds.build_block(start);
        let mut sl = Streamline::new(StreamlineId(0), seed, 1e-2);
        let (exit, _) =
            advance_in_block(&mut sl, &block, &ds.decomp, &StepLimits::default(), &Dopri5);
        assert_eq!(exit, BlockExit::Done(Termination::ExitedDomain));
        assert_eq!(sl.status, StreamlineStatus::Terminated(Termination::ExitedDomain));
    }
}
