//! The block-local advance step shared by every execution engine.
//!
//! [`Workspace::advance_in`](crate::workspace::Workspace::advance_in) (the
//! simulated-cluster ranks) and the `streamline-serve` query service both
//! advance a streamline through one resident block with *exactly* this
//! function, so a streamline computed by the service is bit-identical to
//! one computed by the single-shot drivers: same stepper, same limits, same
//! shared-face nudge, same termination decisions.
//!
//! [`advance_batch_in_block`] is the batched (SoA) counterpart: it advances
//! a whole group of streamlines through one block with the stage-major
//! kernel in [`streamline_integrate::batch`], one [`CellSampler`] and one
//! FSAL memo per lane, and resolves each lane's exit with the identical
//! shared-face nudge — bit-identical per streamline to the scalar path,
//! stencil counters included.

use crate::workspace::BlockExit;
use streamline_field::block::Block;
use streamline_field::decomp::BlockDecomposition;
use streamline_field::group::GroupSampler;
use streamline_field::sampler::CellSampler;
use streamline_integrate::batch::advect_batch_rounds;
use streamline_integrate::tracer::{advect, AdvectOutcome};
use streamline_integrate::{Dopri5, StepLimits, Streamline, Termination};

pub use streamline_integrate::batch::StreamlineBatch;

/// Work accounting for one [`advance_in_block`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvanceStats {
    /// Accepted integration steps.
    pub steps: u64,
    /// Field evaluations served from the cell sampler's cached stencil.
    pub sampler_hits: u64,
    /// Field evaluations that gathered a fresh 8-corner stencil.
    pub sampler_misses: u64,
    /// Streamlines advanced through the batch kernel by this call (0 for
    /// the scalar path, the lane count for [`advance_batch_in_block`]).
    pub batched_lanes: u64,
}

/// Resolve a streamline's exit after the tracer returned: decide which
/// block owns it next, nudging off a shared face through `sample` (the
/// call's stencil-cached sampler — scalar or one group lane) when the
/// integrator stopped exactly on one. Shared verbatim by the scalar and
/// batched paths so their nudge decisions (and stencil counters) cannot
/// diverge.
fn resolve_exit(
    sl: &mut Streamline,
    outcome: AdvectOutcome,
    id: streamline_field::block::BlockId,
    decomp: &BlockDecomposition,
    sample: &mut dyn FnMut(streamline_math::Vec3) -> Option<streamline_math::Vec3>,
) -> BlockExit {
    match outcome {
        AdvectOutcome::Terminated(t) => BlockExit::Done(t),
        AdvectOutcome::LeftRegion => {
            let pos = sl.state.position;
            match decomp.locate(pos) {
                Some(next) if next != id => BlockExit::MovedTo(next),
                Some(_) => {
                    // Numerically on the shared face: nudge along the
                    // local velocity so ownership is unambiguous. The
                    // sample goes through the call's cell sampler, reusing
                    // the stencil the tracer just warmed and keeping the
                    // evaluation in the hit/miss totals.
                    let scale = decomp.domain.size().max_abs_component();
                    if let Some(dir) = sample(pos).and_then(|v| v.normalized()) {
                        sl.state.position = pos + dir * (1e-9 * scale);
                    }
                    match decomp.locate(sl.state.position) {
                        Some(next) if next != id => BlockExit::MovedTo(next),
                        Some(_) => {
                            sl.terminate(Termination::StepUnderflow);
                            BlockExit::Done(Termination::StepUnderflow)
                        }
                        None => {
                            sl.terminate(Termination::ExitedDomain);
                            BlockExit::Done(Termination::ExitedDomain)
                        }
                    }
                }
                None => {
                    sl.terminate(Termination::ExitedDomain);
                    BlockExit::Done(Termination::ExitedDomain)
                }
            }
        }
    }
}

/// Advance `sl` inside `block` until it exits the block or terminates,
/// then resolve which block owns it next. Returns the exit disposition and
/// the work performed ([`AdvanceStats`]).
///
/// Field evaluations go through a [`CellSampler`] scoped to this call —
/// bit-identical to `block.sample` but skipping the 8-corner gather when
/// consecutive evaluations land in the same cell.
///
/// When the integrator stops exactly on a shared block face, the position
/// is nudged along the local velocity by `1e-9` of the domain scale so
/// ownership is unambiguous; a streamline that cannot leave the face even
/// after the nudge is terminated with [`Termination::StepUnderflow`].
pub fn advance_in_block(
    sl: &mut Streamline,
    block: &Block,
    decomp: &BlockDecomposition,
    limits: &StepLimits,
    stepper: &Dopri5,
) -> (BlockExit, AdvanceStats) {
    let id = block.id;
    let bounds = block.bounds;
    let mut sampler = CellSampler::new(block);
    let r = {
        let mut sample = |p| sampler.sample(p);
        let region = move |p| bounds.contains(p);
        advect(sl, &mut sample, &region, limits, stepper)
    };
    let exit = {
        let mut nudge = |p| sampler.sample(p);
        resolve_exit(sl, r.outcome, id, decomp, &mut nudge)
    };
    let sampler_stats = sampler.stats();
    (
        exit,
        AdvanceStats {
            steps: r.steps,
            sampler_hits: sampler_stats.hits,
            sampler_misses: sampler_stats.misses,
            batched_lanes: 0,
        },
    )
}

/// Advance every streamline of `group` inside `block` until each exits the
/// block or terminates, using the batched stage-major kernel with one
/// [`GroupSampler`] lane (a SIMD-laid stencil cache) and one FSAL memo per
/// lane. Returns one [`BlockExit`] per lane (input order) and the summed
/// work.
///
/// Bit-identical per streamline to calling [`advance_in_block`] on each
/// lane in isolation: per-lane adaptive step control makes the same
/// stepper decisions, the per-lane sampler caches see the same evaluation
/// sequence (so the hit/miss totals are the scalar sums), and the exit
/// resolution — shared-face nudge included — is the same code.
pub fn advance_batch_in_block(
    group: &mut [Streamline],
    block: &Block,
    decomp: &BlockDecomposition,
    limits: &StepLimits,
    batch: &mut StreamlineBatch,
) -> (Vec<BlockExit>, AdvanceStats) {
    let (exits, stats) =
        advance_batch_in_block_rounds(group, block, decomp, limits, batch, u64::MAX);
    (exits.into_iter().map(|e| e.expect("uncapped advance resolves every lane")).collect(), stats)
}

/// [`advance_batch_in_block`] with a round budget: lanes whose in-block fate
/// is still undecided after `max_rounds` accepted steps report `None`
/// instead of a [`BlockExit`]. A `None` lane is mid-flight inside `block`;
/// re-advancing it later — alone or batched with other lanes — continues
/// bit-identically (the round boundary is an accepted-step boundary and the
/// per-lane caches are value-transparent, merely cold after re-entry).
/// Schedulers use the cap to re-pack batches whose occupancy has decayed:
/// survivors merge with newly arrived streamlines instead of draining a
/// nearly-empty batch to the last straggler.
pub fn advance_batch_in_block_rounds(
    group: &mut [Streamline],
    block: &Block,
    decomp: &BlockDecomposition,
    limits: &StepLimits,
    batch: &mut StreamlineBatch,
    max_rounds: u64,
) -> (Vec<Option<BlockExit>>, AdvanceStats) {
    let id = block.id;
    let bounds = block.bounds;
    let mut sampler = GroupSampler::new(block, group.len());
    let r = {
        let region = move |p| bounds.contains(p);
        advect_batch_rounds(group, batch, &mut sampler, &region, limits, max_rounds)
    };
    let mut exits = Vec::with_capacity(group.len());
    for (lane, (sl, &outcome)) in group.iter_mut().zip(&r.outcomes).enumerate() {
        let mut nudge = |p| sampler.sample_lane(lane, p);
        exits.push(outcome.map(|o| resolve_exit(sl, o, id, decomp, &mut nudge)));
    }
    let totals = sampler.stats();
    (
        exits,
        AdvanceStats {
            steps: r.steps,
            sampler_hits: totals.hits,
            sampler_misses: totals.misses,
            batched_lanes: group.len() as u64,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::uniform_x_dataset;
    use streamline_integrate::{StreamlineId, StreamlineStatus};
    use streamline_math::Vec3;

    #[test]
    fn crosses_block_face_in_uniform_flow() {
        let ds = uniform_x_dataset();
        let seed = Vec3::new(0.25, 0.25, 0.25);
        let start = ds.decomp.locate(seed).unwrap();
        let block = ds.build_block(start);
        let mut sl = Streamline::new(StreamlineId(0), seed, 1e-2);
        let (exit, stats) =
            advance_in_block(&mut sl, &block, &ds.decomp, &StepLimits::default(), &Dopri5);
        assert!(stats.steps > 0);
        assert!(
            stats.sampler_hits + stats.sampler_misses > 0,
            "every accepted step samples the field"
        );
        assert!(stats.sampler_hits > 0, "RK stages revisiting a cell must hit the stencil cache");
        assert_eq!(stats.batched_lanes, 0, "the scalar path batches nothing");
        match exit {
            BlockExit::MovedTo(next) => assert_ne!(next, start),
            other => panic!("expected a block crossing, got {other:?}"),
        }
    }

    #[test]
    fn terminates_leaving_the_domain() {
        let ds = uniform_x_dataset();
        let seed = Vec3::new(0.75, 0.25, 0.25);
        let start = ds.decomp.locate(seed).unwrap();
        let block = ds.build_block(start);
        let mut sl = Streamline::new(StreamlineId(0), seed, 1e-2);
        let (exit, _) =
            advance_in_block(&mut sl, &block, &ds.decomp, &StepLimits::default(), &Dopri5);
        assert_eq!(exit, BlockExit::Done(Termination::ExitedDomain));
        assert_eq!(sl.status, StreamlineStatus::Terminated(Termination::ExitedDomain));
    }

    /// The shared-face nudge samples through the call's `CellSampler`, so
    /// the extra field evaluation shows up in the hit/miss totals. Pinned:
    /// a position a hair past the domain's upper face is outside the block
    /// bounds (`LeftRegion` before any step) but within `locate`'s
    /// tolerance, which maps it back to the same block — the nudge fires on
    /// a cold sampler and must count exactly one stencil gather.
    #[test]
    fn face_nudge_is_counted_by_the_cell_sampler() {
        let ds = uniform_x_dataset();
        // Upper-x boundary block; its bounds end at the domain face x = 1.
        let pos = Vec3::new(1.0 + 1e-13, 0.75, 0.75);
        let id = ds.decomp.locate(pos).expect("within locate tolerance");
        let block = ds.build_block(id);
        assert!(!block.bounds.contains(pos), "outside the block core bounds");
        let mut sl = Streamline::new(StreamlineId(0), pos, 1e-2);
        let (exit, stats) =
            advance_in_block(&mut sl, &block, &ds.decomp, &StepLimits::default(), &Dopri5);
        // The +x field pushes the nudge out of the domain.
        assert_eq!(exit, BlockExit::Done(Termination::ExitedDomain));
        assert_eq!(stats.steps, 0, "no integration happened");
        assert_eq!(
            stats,
            AdvanceStats { steps: 0, sampler_hits: 0, sampler_misses: 1, batched_lanes: 0 },
            "the nudge's field evaluation must be a counted stencil gather"
        );
    }

    /// Bit-identity of the batched path against the scalar path on real
    /// block data, counters included.
    #[test]
    fn batch_matches_scalar_in_block_bitwise() {
        let ds = uniform_x_dataset();
        let seeds: Vec<Vec3> = vec![
            Vec3::new(0.05, 0.25, 0.25),
            Vec3::new(0.25, 0.30, 0.40),
            Vec3::new(0.45, 0.10, 0.20),
            Vec3::new(0.10, 0.45, 0.45),
            Vec3::new(0.30, 0.05, 0.35),
        ];
        let start = ds.decomp.locate(seeds[0]).unwrap();
        let block = ds.build_block(start);
        let limits = StepLimits::default();

        let mut scalar: Vec<Streamline> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| Streamline::new(StreamlineId(i as u32), s, limits.h0))
            .collect();
        let mut scalar_exits = Vec::new();
        let mut scalar_stats = AdvanceStats::default();
        for sl in &mut scalar {
            let (exit, stats) = advance_in_block(sl, &block, &ds.decomp, &limits, &Dopri5);
            scalar_exits.push(exit);
            scalar_stats.steps += stats.steps;
            scalar_stats.sampler_hits += stats.sampler_hits;
            scalar_stats.sampler_misses += stats.sampler_misses;
        }

        let mut batched: Vec<Streamline> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| Streamline::new(StreamlineId(i as u32), s, limits.h0))
            .collect();
        let mut scratch = StreamlineBatch::new();
        let (exits, stats) =
            advance_batch_in_block(&mut batched, &block, &ds.decomp, &limits, &mut scratch);

        assert_eq!(exits, scalar_exits);
        assert_eq!(stats.steps, scalar_stats.steps);
        assert_eq!(stats.sampler_hits, scalar_stats.sampler_hits);
        assert_eq!(stats.sampler_misses, scalar_stats.sampler_misses);
        assert_eq!(stats.batched_lanes, seeds.len() as u64);
        for (a, b) in scalar.iter().zip(&batched) {
            assert_eq!(a, b, "lane {:?} diverged from the scalar path", a.id);
        }
    }
}
