//! The §6 heuristic decision guidelines, as an executable advisor.
//!
//! "Load On Demand ... is well suited to datasets that can fit largely in
//! memory or that exhibit flow that is free of vortex-type features larger
//! than the block size. ... Static Allocation ... is well suited to datasets
//! were I/O is expensive and seed point sets and flow that distributes
//! streamline computation uniformly throughout the dataset. ... Hybrid
//! Master/Slave ... is best suited for a wide variety of situations and is
//! the recommended algorithm ... particularly ... when the flow field is not
//! well understood. Once the nature of the flow is well understood, the
//! Static Allocation or Load On Demand algorithms are suggested, if they are
//! able to optimize their strengths."

use crate::classify::ProblemProfile;
use crate::config::Algorithm;
use serde::{Deserialize, Serialize};

/// What the user knows about the flow a priori (§6: the advisor's pivot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowKnowledge {
    /// Nothing is known — the common case.
    Unknown,
    /// The flow distributes streamlines roughly uniformly over the data
    /// (e.g. the toroidal circulation of the fusion dataset).
    Uniform,
    /// The flow localizes streamlines (sources/sinks/attractors) or the
    /// workload stays near the seeds.
    Localized,
}

/// A recommendation with its §6 rationale.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recommendation {
    pub algorithm: Algorithm,
    pub rationale: &'static str,
}

/// Apply the §6 guidelines.
pub fn recommend(profile: &ProblemProfile, knowledge: FlowKnowledge) -> Recommendation {
    // Data that fits in memory removes Load On Demand's only weakness
    // (redundant I/O) while keeping its zero communication.
    if profile.fits_in_memory {
        return Recommendation {
            algorithm: Algorithm::LoadOnDemand,
            rationale: "dataset fits in memory: parallelize over streamlines with no \
                        communication and no redundant I/O",
        };
    }
    match knowledge {
        FlowKnowledge::Unknown => Recommendation {
            algorithm: Algorithm::HybridMasterSlave,
            rationale: "flow not well understood: the hybrid scheme adapts to the flow \
                        at runtime (the paper's general recommendation)",
        },
        FlowKnowledge::Uniform => {
            if profile.seeds_dense {
                // Uniform flow but concentrated seeding still floods the
                // block owners initially — keep the adaptive scheme.
                Recommendation {
                    algorithm: Algorithm::HybridMasterSlave,
                    rationale: "dense seeding concentrates initial work on a few block \
                                owners; dynamic balancing is required",
                }
            } else {
                Recommendation {
                    algorithm: Algorithm::StaticAllocation,
                    rationale: "uniform streamline distribution with expensive I/O: \
                                static allocation loads every block exactly once",
                }
            }
        }
        FlowKnowledge::Localized => {
            if profile.seeds_dense {
                Recommendation {
                    algorithm: Algorithm::LoadOnDemand,
                    rationale: "localized flow and dense seeds: the working set of \
                                blocks is small, so redundant I/O is negligible and \
                                communication-free parallelism over streamlines wins \
                                (the thermal-hydraulics dense case)",
                }
            } else {
                Recommendation {
                    algorithm: Algorithm::HybridMasterSlave,
                    rationale: "localized flow with scattered seeds causes load \
                                imbalance that only dynamic assignment absorbs",
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(fits: bool, dense: bool) -> ProblemProfile {
        ProblemProfile {
            data_bytes: 6e9,
            fits_in_memory: fits,
            seed_count: 10_000,
            seed_set_small: false,
            seed_extent_fraction: if dense { 0.1 } else { 0.9 },
            seeds_dense: dense,
            seeded_block_fraction: if dense { 0.02 } else { 0.8 },
        }
    }

    #[test]
    fn in_memory_data_prefers_lod() {
        let r = recommend(&profile(true, false), FlowKnowledge::Unknown);
        assert_eq!(r.algorithm, Algorithm::LoadOnDemand);
    }

    #[test]
    fn unknown_flow_prefers_hybrid() {
        let r = recommend(&profile(false, false), FlowKnowledge::Unknown);
        assert_eq!(r.algorithm, Algorithm::HybridMasterSlave);
    }

    #[test]
    fn uniform_flow_sparse_seeds_prefers_static() {
        let r = recommend(&profile(false, false), FlowKnowledge::Uniform);
        assert_eq!(r.algorithm, Algorithm::StaticAllocation);
    }

    #[test]
    fn dense_localized_prefers_lod() {
        // The thermal-hydraulics dense configuration of §5.3.
        let r = recommend(&profile(false, true), FlowKnowledge::Localized);
        assert_eq!(r.algorithm, Algorithm::LoadOnDemand);
    }

    #[test]
    fn dense_uniform_keeps_hybrid() {
        let r = recommend(&profile(false, true), FlowKnowledge::Uniform);
        assert_eq!(r.algorithm, Algorithm::HybridMasterSlave);
    }

    #[test]
    fn rationales_are_nonempty() {
        for fits in [true, false] {
            for dense in [true, false] {
                for k in [FlowKnowledge::Unknown, FlowKnowledge::Uniform, FlowKnowledge::Localized]
                {
                    assert!(!recommend(&profile(fits, dense), k).rationale.is_empty());
                }
            }
        }
    }
}
