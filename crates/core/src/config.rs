//! Run configuration: which algorithm, how many processors, and every cost
//! and tuning knob of §4.

use serde::{Deserialize, Serialize};
use streamline_desim::NetModel;
use streamline_integrate::StepLimits;
use streamline_iosim::DiskModel;

/// The three parallelization strategies of §4, plus the decentralized
/// work-stealing driver from the follow-up load-balancing literature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// §4.1 — parallelize over blocks, communicate streamlines.
    StaticAllocation,
    /// §4.2 — parallelize over streamlines, load blocks on demand.
    LoadOnDemand,
    /// §4.3 — the paper's contribution: masters dynamically assign both.
    HybridMasterSlave,
    /// Masterless peer-to-peer balancing: idle ranks steal seed batches from
    /// lifeline neighbors, busy ranks advertise load diffusively, and a
    /// Safra-style termination token replaces the master's global count.
    WorkStealing,
}

impl Algorithm {
    pub const ALL: [Algorithm; 4] = [
        Algorithm::StaticAllocation,
        Algorithm::LoadOnDemand,
        Algorithm::HybridMasterSlave,
        Algorithm::WorkStealing,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Algorithm::StaticAllocation => "static",
            Algorithm::LoadOnDemand => "load-on-demand",
            Algorithm::HybridMasterSlave => "hybrid",
            Algorithm::WorkStealing => "steal",
        }
    }
}

/// Tuning parameters of the Hybrid Master/Slave algorithm, with the paper's
/// §4.3 values as defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridParams {
    /// `N` — seeds per assignment ("Initially, each slave is assigned
    /// N = 10 streamlines").
    pub n_assign: usize,
    /// `N_O = overload_factor × N` — a slave's workload is not raised above
    /// this by reassignment ("we typically choose as N_O = 20 × N").
    pub overload_factor: usize,
    /// `N_L` — a slave with at least this many streamlines parked in one
    /// unloaded block loads the block itself rather than migrating them
    /// ("we have obtained good results with N_L = 40").
    pub n_load: usize,
    /// `W` — slaves per master ("We typically use one master per W = 32
    /// slaves").
    pub slaves_per_master: usize,
}

impl Default for HybridParams {
    fn default() -> Self {
        HybridParams { n_assign: 10, overload_factor: 20, n_load: 40, slaves_per_master: 32 }
    }
}

impl HybridParams {
    /// The overload limit `N_O`.
    pub fn overload_limit(&self) -> usize {
        self.overload_factor * self.n_assign
    }

    /// Number of master ranks for `n_procs` total ranks: one per `W` slaves,
    /// at least one, and always at least one slave.
    pub fn n_masters(&self, n_procs: usize) -> usize {
        assert!(n_procs >= 2, "hybrid needs at least one master and one slave");
        let m = n_procs.div_ceil(self.slaves_per_master + 1);
        m.min(n_procs - 1).max(1)
    }
}

/// A steal/diffusion knob combination the driver cannot run with. Surfaced
/// as a typed error (not a panic) so the CLI can reject bad invocations
/// with a usage message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StealConfigError {
    /// `neighbor_degree` must be at least 1 — a rank with no lifeline
    /// neighbors can neither steal nor pass the termination token.
    ZeroNeighborDegree,
    /// `diffusion_period` must be a positive, finite virtual-seconds value;
    /// zero would busy-spin the event simulation.
    BadDiffusionPeriod,
    /// `steal_batch` must be at least 1 — otherwise every steal request is
    /// a refusal and idle ranks can never acquire work.
    ZeroStealBatch,
}

impl std::fmt::Display for StealConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StealConfigError::ZeroNeighborDegree => {
                write!(f, "steal neighbor degree must be >= 1")
            }
            StealConfigError::BadDiffusionPeriod => {
                write!(f, "steal diffusion period must be a positive, finite number of seconds")
            }
            StealConfigError::ZeroStealBatch => write!(f, "steal batch size must be >= 1"),
        }
    }
}

impl std::error::Error for StealConfigError {}

/// Tuning parameters of the decentralized work-stealing driver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StealParams {
    /// Lifeline out-degree: rank `r` is linked to `(r + 2^j) mod n` for
    /// `j in 0..neighbor_degree` (a hypercube-style lifeline graph whose
    /// `j = 0` edges form the ring the termination token travels).
    pub neighbor_degree: usize,
    /// Virtual seconds between diffusion ticks: busy ranks report their
    /// load to neighbors and rank 0 paces termination-token retries.
    pub diffusion_period: f64,
    /// Maximum streamlines per steal grant or diffusion transfer.
    pub steal_batch: usize,
}

impl Default for StealParams {
    fn default() -> Self {
        StealParams { neighbor_degree: 2, diffusion_period: 5e-3, steal_batch: 8 }
    }
}

impl StealParams {
    /// Check the knobs are runnable; the CLI surfaces the error as a usage
    /// message instead of letting the driver panic mid-run.
    pub fn validate(&self) -> Result<(), StealConfigError> {
        if self.neighbor_degree == 0 {
            return Err(StealConfigError::ZeroNeighborDegree);
        }
        if !(self.diffusion_period.is_finite() && self.diffusion_period > 0.0) {
            return Err(StealConfigError::BadDiffusionPeriod);
        }
        if self.steal_batch == 0 {
            return Err(StealConfigError::ZeroStealBatch);
        }
        Ok(())
    }
}

/// A batch-kernel knob combination the drivers cannot run with, surfaced
/// as a typed error so the CLI can reject bad invocations with a usage
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchConfigError {
    /// `lanes` must be at least 1 — a zero-lane batch advances nothing and
    /// every driver drain loop would spin forever.
    ZeroBatchLanes,
}

impl std::fmt::Display for BatchConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchConfigError::ZeroBatchLanes => write!(f, "batch size must be >= 1"),
        }
    }
}

impl std::error::Error for BatchConfigError {}

/// Tuning of the SoA batch advection kernel every driver and the serve
/// worker pool advance streamlines with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct BatchParams {
    /// Maximum streamlines advanced per batch-kernel call. `None` (the
    /// default) resolves to [`BatchParams::AUTO_LANES`]. Batch size never
    /// changes results — every lane is bit-identical to the scalar path —
    /// only how much independent work the kernel overlaps.
    pub lanes: Option<usize>,
}

impl BatchParams {
    /// The `lanes` value `None` resolves to: wide enough to amortize the
    /// dispatch and fill the pipeline, small enough that a partially-filled
    /// last batch stays cheap on the paper's workloads.
    pub const AUTO_LANES: usize = 16;

    /// Check the knobs are runnable; the CLI surfaces the error as a usage
    /// message instead of letting a driver spin.
    pub fn validate(&self) -> Result<(), BatchConfigError> {
        match self.lanes {
            Some(0) => Err(BatchConfigError::ZeroBatchLanes),
            _ => Ok(()),
        }
    }

    /// The effective lane count (auto resolved).
    pub fn resolve(&self) -> usize {
        self.lanes.unwrap_or(Self::AUTO_LANES)
    }
}

/// Rank fail-stop chaos: a seeded death schedule plus the failure-detector
/// cadence the drivers use to suspect dead peers. `Some(..)` switches every
/// driver into resilient mode (heartbeats, adoption, membership-aware
/// termination); `None` (the default) leaves the protocols untouched so
/// fault-free runs stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankChaos {
    /// Seed for the random death schedule ([`RankFaultPlan`] stream).
    pub seed: u64,
    /// Probability each rank is killed at all.
    pub kill_prob: f64,
    /// Kill times are uniform in `[window.0, window.1]` virtual seconds.
    pub window: (f64, f64),
    /// Overrides the random schedule with exactly one `(rank, time)` kill.
    #[serde(default)]
    pub kill: Option<(usize, f64)>,
    /// Virtual seconds between liveness heartbeats.
    pub heartbeat_period: f64,
    /// Virtual seconds of silence before a watched peer is suspected dead.
    pub suspect_timeout: f64,
}

impl RankChaos {
    /// Random schedule from `seed` with the default knobs.
    pub fn seeded(seed: u64) -> Self {
        // A busy rank defers beat processing for as long as one handler
        // charges — block loads are ~28 ms and a drain sweep can charge
        // many of them — so the timeout is generous to keep false suspicion
        // rare (a false suspicion is safe, merely wasteful).
        RankChaos {
            seed,
            kill_prob: 0.5,
            window: (0.0, 1.0),
            kill: None,
            heartbeat_period: 0.1,
            suspect_timeout: 1.0,
        }
    }

    /// Exactly one kill, for targeted tests and the CI smoke.
    pub fn one_kill(rank: usize, time: f64) -> Self {
        RankChaos { kill: Some((rank, time)), ..RankChaos::seeded(0) }
    }

    /// Check the knobs are runnable; surfaces the same typed errors as the
    /// block-fault chaos config.
    pub fn validate(&self) -> Result<(), streamline_iosim::ChaosConfigError> {
        if let Some((_, time)) = self.kill {
            if !(time.is_finite() && time >= 0.0) {
                return Err(streamline_iosim::ChaosConfigError::Window { start: time, end: time });
            }
        }
        streamline_iosim::RankChaosParams { kill_prob: self.kill_prob, window: self.window }
            .validate()?;
        let ok = |v: f64| v.is_finite() && v > 0.0;
        if !ok(self.heartbeat_period) {
            return Err(streamline_iosim::ChaosConfigError::Probability {
                name: "heartbeat_period",
                value: self.heartbeat_period,
            });
        }
        if !ok(self.suspect_timeout) {
            return Err(streamline_iosim::ChaosConfigError::Probability {
                name: "suspect_timeout",
                value: self.suspect_timeout,
            });
        }
        Ok(())
    }

    /// The death schedule for `n_ranks` ranks: either the explicit kill or
    /// the seeded random plan. Panics on invalid knobs — call
    /// [`RankChaos::validate`] at the config boundary first.
    pub fn plan(&self, n_ranks: usize) -> Vec<(usize, f64)> {
        match self.kill {
            Some((rank, time)) if rank < n_ranks => vec![(rank, time)],
            Some(_) => Vec::new(),
            None => {
                let params = streamline_iosim::RankChaosParams {
                    kill_prob: self.kill_prob,
                    window: self.window,
                };
                streamline_iosim::RankFaultPlan::random(self.seed, n_ranks, &params)
                    .expect("rank-chaos knobs validated at the config boundary")
                    .deaths
            }
        }
    }

    /// Virtual time past which resilience heartbeats stop re-arming: late
    /// enough that any chain of suspicions triggered by deaths inside the
    /// window can unwind (one timeout per hop), yet finite, so no death
    /// schedule can keep the event queue alive forever.
    pub fn beat_deadline(&self, n_ranks: usize) -> f64 {
        let window_end = match self.kill {
            Some((_, time)) => self.window.1.max(time),
            None => self.window.1,
        };
        window_end + (n_ranks as f64 + 2.0) * (self.suspect_timeout + 2.0 * self.heartbeat_period)
    }
}

/// Per-rank memory budget (logical bytes: resident blocks at paper scale
/// plus streamline geometry). `None` disables the check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBudget {
    pub bytes: Option<f64>,
    /// Logical bytes per stored curve vertex. A visualization pipeline keeps
    /// more than the bare position per vertex (time, scalar attributes,
    /// cell bookkeeping), which is what makes geometry the memory hazard the
    /// paper hits in §5.3.
    pub vertex_bytes: f64,
    /// Logical bytes per resident streamline *object* — solver workspace,
    /// attribute buffers, pipeline bookkeeping. This fixed overhead is what
    /// makes "all 22,000 seed points being processed on a single processor"
    /// (§5.3) fatal for Static Allocation regardless of how far each curve
    /// is integrated.
    pub stream_bytes: f64,
}

impl MemoryBudget {
    /// The default models one JaguarPF core's share of node memory.
    pub fn paper_scale() -> Self {
        MemoryBudget { bytes: Some(1.2e9), vertex_bytes: 64.0, stream_bytes: 64.0 * 1024.0 }
    }

    pub fn unlimited() -> Self {
        MemoryBudget { bytes: None, vertex_bytes: 64.0, stream_bytes: 64.0 * 1024.0 }
    }

    pub fn exceeded(&self, used: f64) -> bool {
        self.bytes.is_some_and(|b| used > b)
    }
}

/// Cost model tying the scaled-down in-memory run back to paper scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Charged seconds per accepted integration step (per-step cost of
    /// RK4(5) stages + interpolation on a 1M-cell block).
    pub sec_per_step: f64,
    pub disk: DiskModel,
    pub net: NetModel,
}

impl CostModel {
    pub fn paper_scale() -> Self {
        CostModel {
            sec_per_step: 5e-6,
            disk: DiskModel::paper_scale(),
            net: NetModel::paper_scale(),
        }
    }
}

/// Everything a run needs besides the dataset and seeds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RunConfig {
    pub algorithm: Algorithm,
    pub n_procs: usize,
    #[serde(skip, default)]
    pub limits: StepLimits,
    pub cost: CostModel,
    /// LRU capacity in blocks for Load On Demand and Hybrid slaves.
    pub cache_blocks: usize,
    pub memory: MemoryBudget,
    pub hybrid: HybridParams,
    #[serde(default)]
    pub steal: StealParams,
    /// Batch advection kernel tuning (resolved lane count feeds every
    /// driver's workspace and is part of the checkpoint SPEC).
    #[serde(default)]
    pub batch: BatchParams,
    /// Communicate full streamline geometry (the measured configuration;
    /// §8 discusses the compact solver-state alternative).
    pub comm_geometry: bool,
    /// Block-to-rank mapping for Static Allocation (§4.1 uses contiguous).
    pub static_partition: crate::static_alloc::StaticPartition,
    /// Fail-stop rank chaos. `None` (the default) runs every driver
    /// bit-identically to the pre-resilience code paths.
    #[serde(default)]
    pub rank_chaos: Option<RankChaos>,
    /// Which global-termination detector the run uses. `ClosedSet` (the
    /// default) is the paper's communicated-count; `Frontier` tracks
    /// per-ingest-epoch completion for open-loop runs. On a closed
    /// workload the two are bit-identical.
    #[serde(default)]
    pub detector: crate::termination::DetectorKind,
}

impl RunConfig {
    pub fn new(algorithm: Algorithm, n_procs: usize) -> Self {
        RunConfig {
            algorithm,
            n_procs,
            limits: StepLimits::default(),
            cost: CostModel::paper_scale(),
            cache_blocks: 32,
            memory: MemoryBudget::paper_scale(),
            hybrid: HybridParams::default(),
            steal: StealParams::default(),
            batch: BatchParams::default(),
            comm_geometry: true,
            static_partition: crate::static_alloc::StaticPartition::Contiguous,
            rank_chaos: None,
            detector: crate::termination::DetectorKind::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let h = HybridParams::default();
        assert_eq!(h.n_assign, 10);
        assert_eq!(h.overload_limit(), 200);
        assert_eq!(h.n_load, 40);
        assert_eq!(h.slaves_per_master, 32);
    }

    #[test]
    fn master_counts() {
        let h = HybridParams::default();
        // 33 ranks = 1 master + 32 slaves.
        assert_eq!(h.n_masters(33), 1);
        assert_eq!(h.n_masters(2), 1);
        assert_eq!(h.n_masters(64), 2);
        assert_eq!(h.n_masters(512), 16);
        // Degenerate: more masters would leave no slaves.
        assert_eq!(h.n_masters(3), 1);
    }

    #[test]
    fn memory_budget() {
        let b = MemoryBudget { bytes: Some(100.0), vertex_bytes: 64.0, stream_bytes: 65536.0 };
        assert!(b.exceeded(101.0));
        assert!(!b.exceeded(100.0));
        assert!(!MemoryBudget::unlimited().exceeded(f64::MAX));
    }

    #[test]
    fn algorithm_labels_unique() {
        let labels: std::collections::HashSet<_> =
            Algorithm::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn steal_params_validate() {
        assert_eq!(StealParams::default().validate(), Ok(()));
        let p = StealParams { neighbor_degree: 0, ..StealParams::default() };
        assert_eq!(p.validate(), Err(StealConfigError::ZeroNeighborDegree));
        let p = StealParams { diffusion_period: 0.0, ..StealParams::default() };
        assert_eq!(p.validate(), Err(StealConfigError::BadDiffusionPeriod));
        let p = StealParams { diffusion_period: f64::NAN, ..StealParams::default() };
        assert_eq!(p.validate(), Err(StealConfigError::BadDiffusionPeriod));
        let p = StealParams { steal_batch: 0, ..StealParams::default() };
        assert_eq!(p.validate(), Err(StealConfigError::ZeroStealBatch));
        // The errors render as usage text, not Debug noise.
        assert!(StealConfigError::ZeroStealBatch.to_string().contains("batch"));
    }

    #[test]
    fn rank_chaos_validate_and_plan() {
        assert_eq!(RankChaos::seeded(7).validate(), Ok(()));
        let bad = RankChaos { kill_prob: 1.5, ..RankChaos::seeded(0) };
        assert!(bad.validate().is_err());
        let bad = RankChaos { window: (3.0, 1.0), ..RankChaos::seeded(0) };
        assert!(bad.validate().is_err());
        let bad = RankChaos { heartbeat_period: 0.0, ..RankChaos::seeded(0) };
        assert!(bad.validate().is_err());
        let bad = RankChaos { suspect_timeout: f64::NAN, ..RankChaos::seeded(0) };
        assert!(bad.validate().is_err());
        // Deterministic plan; explicit kill overrides it.
        let rc = RankChaos::seeded(7);
        assert_eq!(rc.plan(64), rc.plan(64));
        let one = RankChaos::one_kill(3, 2e-3);
        assert_eq!(one.plan(8), vec![(3, 2e-3)]);
        assert!(one.plan(2).is_empty(), "kill of an absent rank is dropped");
        // The beat deadline is finite and past the kill window.
        assert!(rc.beat_deadline(64).is_finite());
        assert!(rc.beat_deadline(64) > rc.window.1);
        assert!(one.beat_deadline(8) > 2e-3);
    }

    #[test]
    fn batch_params_validate() {
        assert_eq!(BatchParams::default().validate(), Ok(()));
        assert_eq!(BatchParams::default().resolve(), BatchParams::AUTO_LANES);
        let p = BatchParams { lanes: Some(4) };
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.resolve(), 4);
        let p = BatchParams { lanes: Some(0) };
        assert_eq!(p.validate(), Err(BatchConfigError::ZeroBatchLanes));
        assert!(BatchConfigError::ZeroBatchLanes.to_string().contains(">= 1"));
    }
}
