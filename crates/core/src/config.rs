//! Run configuration: which algorithm, how many processors, and every cost
//! and tuning knob of §4.

use serde::{Deserialize, Serialize};
use streamline_desim::NetModel;
use streamline_integrate::StepLimits;
use streamline_iosim::DiskModel;

/// The three parallelization strategies of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// §4.1 — parallelize over blocks, communicate streamlines.
    StaticAllocation,
    /// §4.2 — parallelize over streamlines, load blocks on demand.
    LoadOnDemand,
    /// §4.3 — the paper's contribution: masters dynamically assign both.
    HybridMasterSlave,
}

impl Algorithm {
    pub const ALL: [Algorithm; 3] =
        [Algorithm::StaticAllocation, Algorithm::LoadOnDemand, Algorithm::HybridMasterSlave];

    pub fn label(self) -> &'static str {
        match self {
            Algorithm::StaticAllocation => "static",
            Algorithm::LoadOnDemand => "load-on-demand",
            Algorithm::HybridMasterSlave => "hybrid",
        }
    }
}

/// Tuning parameters of the Hybrid Master/Slave algorithm, with the paper's
/// §4.3 values as defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridParams {
    /// `N` — seeds per assignment ("Initially, each slave is assigned
    /// N = 10 streamlines").
    pub n_assign: usize,
    /// `N_O = overload_factor × N` — a slave's workload is not raised above
    /// this by reassignment ("we typically choose as N_O = 20 × N").
    pub overload_factor: usize,
    /// `N_L` — a slave with at least this many streamlines parked in one
    /// unloaded block loads the block itself rather than migrating them
    /// ("we have obtained good results with N_L = 40").
    pub n_load: usize,
    /// `W` — slaves per master ("We typically use one master per W = 32
    /// slaves").
    pub slaves_per_master: usize,
}

impl Default for HybridParams {
    fn default() -> Self {
        HybridParams { n_assign: 10, overload_factor: 20, n_load: 40, slaves_per_master: 32 }
    }
}

impl HybridParams {
    /// The overload limit `N_O`.
    pub fn overload_limit(&self) -> usize {
        self.overload_factor * self.n_assign
    }

    /// Number of master ranks for `n_procs` total ranks: one per `W` slaves,
    /// at least one, and always at least one slave.
    pub fn n_masters(&self, n_procs: usize) -> usize {
        assert!(n_procs >= 2, "hybrid needs at least one master and one slave");
        let m = n_procs.div_ceil(self.slaves_per_master + 1);
        m.min(n_procs - 1).max(1)
    }
}

/// Per-rank memory budget (logical bytes: resident blocks at paper scale
/// plus streamline geometry). `None` disables the check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBudget {
    pub bytes: Option<f64>,
    /// Logical bytes per stored curve vertex. A visualization pipeline keeps
    /// more than the bare position per vertex (time, scalar attributes,
    /// cell bookkeeping), which is what makes geometry the memory hazard the
    /// paper hits in §5.3.
    pub vertex_bytes: f64,
    /// Logical bytes per resident streamline *object* — solver workspace,
    /// attribute buffers, pipeline bookkeeping. This fixed overhead is what
    /// makes "all 22,000 seed points being processed on a single processor"
    /// (§5.3) fatal for Static Allocation regardless of how far each curve
    /// is integrated.
    pub stream_bytes: f64,
}

impl MemoryBudget {
    /// The default models one JaguarPF core's share of node memory.
    pub fn paper_scale() -> Self {
        MemoryBudget { bytes: Some(1.2e9), vertex_bytes: 64.0, stream_bytes: 64.0 * 1024.0 }
    }

    pub fn unlimited() -> Self {
        MemoryBudget { bytes: None, vertex_bytes: 64.0, stream_bytes: 64.0 * 1024.0 }
    }

    pub fn exceeded(&self, used: f64) -> bool {
        self.bytes.is_some_and(|b| used > b)
    }
}

/// Cost model tying the scaled-down in-memory run back to paper scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Charged seconds per accepted integration step (per-step cost of
    /// RK4(5) stages + interpolation on a 1M-cell block).
    pub sec_per_step: f64,
    pub disk: DiskModel,
    pub net: NetModel,
}

impl CostModel {
    pub fn paper_scale() -> Self {
        CostModel {
            sec_per_step: 5e-6,
            disk: DiskModel::paper_scale(),
            net: NetModel::paper_scale(),
        }
    }
}

/// Everything a run needs besides the dataset and seeds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RunConfig {
    pub algorithm: Algorithm,
    pub n_procs: usize,
    #[serde(skip, default)]
    pub limits: StepLimits,
    pub cost: CostModel,
    /// LRU capacity in blocks for Load On Demand and Hybrid slaves.
    pub cache_blocks: usize,
    pub memory: MemoryBudget,
    pub hybrid: HybridParams,
    /// Communicate full streamline geometry (the measured configuration;
    /// §8 discusses the compact solver-state alternative).
    pub comm_geometry: bool,
    /// Block-to-rank mapping for Static Allocation (§4.1 uses contiguous).
    pub static_partition: crate::static_alloc::StaticPartition,
}

impl RunConfig {
    pub fn new(algorithm: Algorithm, n_procs: usize) -> Self {
        RunConfig {
            algorithm,
            n_procs,
            limits: StepLimits::default(),
            cost: CostModel::paper_scale(),
            cache_blocks: 32,
            memory: MemoryBudget::paper_scale(),
            hybrid: HybridParams::default(),
            comm_geometry: true,
            static_partition: crate::static_alloc::StaticPartition::Contiguous,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let h = HybridParams::default();
        assert_eq!(h.n_assign, 10);
        assert_eq!(h.overload_limit(), 200);
        assert_eq!(h.n_load, 40);
        assert_eq!(h.slaves_per_master, 32);
    }

    #[test]
    fn master_counts() {
        let h = HybridParams::default();
        // 33 ranks = 1 master + 32 slaves.
        assert_eq!(h.n_masters(33), 1);
        assert_eq!(h.n_masters(2), 1);
        assert_eq!(h.n_masters(64), 2);
        assert_eq!(h.n_masters(512), 16);
        // Degenerate: more masters would leave no slaves.
        assert_eq!(h.n_masters(3), 1);
    }

    #[test]
    fn memory_budget() {
        let b = MemoryBudget { bytes: Some(100.0), vertex_bytes: 64.0, stream_bytes: 65536.0 };
        assert!(b.exceeded(101.0));
        assert!(!b.exceeded(100.0));
        assert!(!MemoryBudget::unlimited().exceeded(f64::MAX));
    }

    #[test]
    fn algorithm_labels_unique() {
        let labels: std::collections::HashSet<_> =
            Algorithm::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), 3);
    }
}
