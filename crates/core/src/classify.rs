//! Problem classification along the four axes of §3.1: data set size, seed
//! set size, seed set distribution, and vector field complexity.

use crate::config::RunConfig;
use serde::{Deserialize, Serialize};
use streamline_field::dataset::Dataset;
use streamline_field::seeds::SeedSet;

/// Quantified §3.1 characteristics of one problem instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProblemProfile {
    /// Total dataset size at paper scale, bytes.
    pub data_bytes: f64,
    /// Whether one rank's cache could hold the entire dataset
    /// ("small in the sense that it fits into main memory in its entirety").
    pub fits_in_memory: bool,
    pub seed_count: usize,
    /// "a few tens to a hundred streamlines" — interactive-exploration scale.
    pub seed_set_small: bool,
    /// Largest extent of the seed bounding box relative to the domain.
    pub seed_extent_fraction: f64,
    /// Dense: seeds concentrated in a small part of the domain.
    pub seeds_dense: bool,
    /// Fraction of blocks containing at least one seed.
    pub seeded_block_fraction: f64,
}

/// Seed-extent threshold below which a seed set counts as dense.
pub const DENSE_EXTENT_THRESHOLD: f64 = 0.25;

/// Classify a problem instance under a run configuration's memory model.
pub fn classify(dataset: &Dataset, seeds: &SeedSet, cfg: &RunConfig) -> ProblemProfile {
    let n_blocks = dataset.decomp.num_blocks();
    let data_bytes = n_blocks as f64 * cfg.cost.disk.logical_block_bytes;
    let cache_bytes = cfg.cache_blocks as f64 * cfg.cost.disk.logical_block_bytes;
    let fits_in_memory = data_bytes <= cache_bytes;

    let domain_extent = dataset.decomp.domain.size().max_abs_component();
    let seed_extent_fraction =
        seeds.bounds().map(|b| b.size().max_abs_component() / domain_extent).unwrap_or(0.0);

    let mut seeded = std::collections::HashSet::new();
    for &p in &seeds.points {
        if let Some(b) = dataset.decomp.locate(p) {
            seeded.insert(b);
        }
    }

    ProblemProfile {
        data_bytes,
        fits_in_memory,
        seed_count: seeds.len(),
        seed_set_small: seeds.len() <= 100,
        seed_extent_fraction,
        seeds_dense: seed_extent_fraction < DENSE_EXTENT_THRESHOLD,
        seeded_block_fraction: seeded.len() as f64 / n_blocks as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, RunConfig};
    use streamline_field::dataset::{DatasetConfig, Seeding};

    fn cfg() -> RunConfig {
        RunConfig::new(Algorithm::HybridMasterSlave, 8)
    }

    #[test]
    fn dense_vs_sparse_detected() {
        let ds = Dataset::thermal_hydraulics(DatasetConfig::tiny());
        let dense = classify(&ds, &ds.seeds_with_count(Seeding::Dense, 500), &cfg());
        let sparse = classify(&ds, &ds.seeds_with_count(Seeding::Sparse, 512), &cfg());
        assert!(dense.seeds_dense);
        assert!(!sparse.seeds_dense);
        assert!(dense.seeded_block_fraction < sparse.seeded_block_fraction);
    }

    #[test]
    fn small_seed_set_flag() {
        let ds = Dataset::thermal_hydraulics(DatasetConfig::tiny());
        assert!(classify(&ds, &ds.seeds_with_count(Seeding::Sparse, 50), &cfg()).seed_set_small);
        assert!(!classify(&ds, &ds.seeds_with_count(Seeding::Sparse, 5000), &cfg()).seed_set_small);
    }

    #[test]
    fn fits_in_memory_depends_on_cache() {
        let ds = Dataset::thermal_hydraulics(DatasetConfig::tiny()); // 64 blocks
        let mut c = cfg();
        c.cache_blocks = 8;
        assert!(!classify(&ds, &ds.seeds_with_count(Seeding::Sparse, 10), &c).fits_in_memory);
        c.cache_blocks = 64;
        assert!(classify(&ds, &ds.seeds_with_count(Seeding::Sparse, 10), &c).fits_in_memory);
    }
}
