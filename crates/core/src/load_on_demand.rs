//! Load On Demand (§4.2): parallelize across streamlines.
//!
//! "We split up the initial seed points evenly among the processors ...
//! grouped by block to enhance data locality. Each processor integrates the
//! streamlines assigned to it until streamline termination. As streamlines
//! move between blocks, each processor loads the appropriate block into
//! memory into an LRU cache. In order to minimize I/O, each processor
//! integrates all streamlines to the edge of the loaded blocks, loading a
//! block from disk only when there is no more work to be done on the
//! in-memory blocks. ... Each processor terminates independently when all of
//! its streamlines have terminated." No communication at all.

use crate::config::MemoryBudget;
use crate::msg::Msg;
use crate::workspace::{BlockExit, Workspace};
use std::collections::BTreeMap;
use streamline_desim::{Context, Event, Process};
use streamline_field::block::BlockId;
use streamline_integrate::{Streamline, StreamlineId, Termination};
use streamline_math::Vec3;

/// One Load On Demand rank.
pub struct LodProc {
    ws: Workspace,
    seeds: Vec<(StreamlineId, Vec3)>,
    pub finished: Vec<Streamline>,
    memory: MemoryBudget,
    h0: f64,
    pub done: bool,
    pub failed_oom: bool,
}

impl LodProc {
    pub fn new(
        ws: Workspace,
        seeds: Vec<(StreamlineId, Vec3)>,
        memory: MemoryBudget,
        h0: f64,
    ) -> Self {
        LodProc { ws, seeds, finished: Vec::new(), memory, h0, done: false, failed_oom: false }
    }

    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }

    fn check_memory(&mut self, ctx: &mut dyn Context<Msg>) -> bool {
        if self.memory.exceeded(self.ws.memory_bytes()) {
            self.failed_oom = true;
            ctx.stop_all();
            return true;
        }
        false
    }

    fn run_to_completion(&mut self, ctx: &mut dyn Context<Msg>) {
        // Streamlines waiting for their block, keyed by block for
        // deterministic iteration.
        let mut parked: BTreeMap<BlockId, Vec<Streamline>> = BTreeMap::new();
        for (id, seed) in std::mem::take(&mut self.seeds) {
            let mut sl = Streamline::new_lean(id, seed, self.h0);
            self.ws.admit(&sl);
            match self.ws.locate(seed) {
                Some(b) => parked.entry(b).or_default().push(sl),
                None => {
                    sl.terminate(Termination::ExitedDomain);
                    self.ws.terminated += 1;
                    self.ws.retire_object();
                    self.finished.push(sl);
                }
            }
        }

        while !parked.is_empty() {
            // Advance everything whose block is resident ("integrate all
            // streamlines to the edge of the loaded blocks").
            while let Some(block) = parked.keys().copied().find(|&b| self.ws.is_resident(b)) {
                let mut list = parked.remove(&block).expect("key just found");
                while let Some(mut sl) = list.pop() {
                    let mut cur = block;
                    loop {
                        match self.ws.advance_in(&mut sl, cur, ctx) {
                            BlockExit::MovedTo(next) => {
                                if self.ws.is_resident(next) {
                                    cur = next;
                                } else {
                                    parked.entry(next).or_default().push(sl);
                                    break;
                                }
                            }
                            BlockExit::Done(_) => {
                                self.finished.push(sl);
                                break;
                            }
                        }
                    }
                    if self.check_memory(ctx) {
                        return;
                    }
                }
            }
            // Nothing advanceable: load the block with the most waiting
            // streamlines (ties to the lowest id — deterministic).
            let Some((&target, _)) =
                parked.iter().max_by_key(|(id, v)| (v.len(), std::cmp::Reverse(id.0)))
            else {
                break;
            };
            if self.ws.try_acquire(target, ctx).is_err() {
                // Unreachable block: everything waiting on it dies typed
                // instead of the rank spinning on the same failing load.
                for mut sl in parked.remove(&target).expect("key just found") {
                    self.ws.terminate_unavailable(&mut sl);
                    self.finished.push(sl);
                }
                continue;
            }
            if self.check_memory(ctx) {
                return;
            }
        }
        self.done = true;
    }
}

impl Process<Msg> for LodProc {
    fn on_event(&mut self, ev: Event<Msg>, ctx: &mut dyn Context<Msg>) {
        if matches!(ev, Event::Start) {
            self.run_to_completion(ctx);
        }
        // Load On Demand exchanges no messages.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{uniform_x_dataset, NullCtx};
    use std::sync::Arc;
    use streamline_integrate::StepLimits;
    use streamline_iosim::{DiskModel, MemoryStore};

    fn proc_with(seeds: Vec<(StreamlineId, Vec3)>, cache_blocks: usize) -> LodProc {
        let ds = uniform_x_dataset();
        let store = Arc::new(MemoryStore::build(&ds));
        let ws = Workspace::new(
            ds.decomp,
            store,
            cache_blocks,
            DiskModel::paper_scale(),
            StepLimits::default(),
            1e-6,
        );
        LodProc::new(ws, seeds, MemoryBudget::unlimited(), 1e-2)
    }

    #[test]
    fn all_streamlines_terminate() {
        let seeds = (0..10)
            .map(|i| (StreamlineId(i), Vec3::new(0.1, 0.05 + 0.09 * i as f64, 0.3)))
            .collect();
        let mut p = proc_with(seeds, 8);
        let mut ctx = NullCtx::default();
        p.on_event(Event::Start, &mut ctx);
        assert!(p.done);
        assert_eq!(p.finished.len(), 10);
        assert!(p.finished.iter().all(|s| s.status
            == streamline_integrate::StreamlineStatus::Terminated(Termination::ExitedDomain)));
        // Uniform +x from x=0.1 crosses 2 blocks per streamline; with a
        // roomy cache each of the blocks touched loads exactly once.
        let stats = p.workspace().cache_stats();
        assert_eq!(stats.purged, 0);
        assert!(ctx.io > 0.0);
        assert!(ctx.sent.is_empty(), "LOD must not communicate");
    }

    #[test]
    fn tiny_cache_forces_reloads() {
        // Seeds in all 8 blocks with a 1-block cache: blocks must be loaded,
        // purged and reloaded — low block efficiency (Figure 7's LOD bars).
        let mut seeds = Vec::new();
        let mut i = 0;
        for x in [0.2, 0.7] {
            for y in [0.2, 0.7] {
                for z in [0.2, 0.7] {
                    seeds.push((StreamlineId(i), Vec3::new(x, y, z)));
                    i += 1;
                }
            }
        }
        let mut p = proc_with(seeds, 1);
        let mut ctx = NullCtx::default();
        p.on_event(Event::Start, &mut ctx);
        assert!(p.done);
        assert_eq!(p.finished.len(), 8);
        let stats = p.workspace().cache_stats();
        assert!(stats.purged > 0);
        assert!(stats.efficiency() < 0.5, "E = {}", stats.efficiency());
    }

    #[test]
    fn groups_by_block_before_loading() {
        // Two seeds in the same block: the block is loaded once, both are
        // integrated through it before any other load.
        let seeds = vec![
            (StreamlineId(0), Vec3::new(0.1, 0.2, 0.2)),
            (StreamlineId(1), Vec3::new(0.15, 0.3, 0.3)),
        ];
        let mut p = proc_with(seeds, 1);
        let mut ctx = NullCtx::default();
        p.on_event(Event::Start, &mut ctx);
        // Blocks on the +x path: (0,0,0) then (1,0,0) — exactly 2 loads even
        // with a single-slot cache.
        assert_eq!(p.workspace().cache_stats().loaded, 2);
    }

    #[test]
    fn oom_aborts_run() {
        let seeds = vec![(StreamlineId(0), Vec3::new(0.1, 0.2, 0.2))];
        let ds = uniform_x_dataset();
        let store = Arc::new(MemoryStore::build(&ds));
        let ws = Workspace::new(
            ds.decomp,
            store,
            8,
            DiskModel::paper_scale(),
            StepLimits::default(),
            1e-6,
        );
        // Budget below one block.
        let mut p = LodProc::new(
            ws,
            seeds,
            MemoryBudget { bytes: Some(1.0), vertex_bytes: 64.0, stream_bytes: 65536.0 },
            1e-2,
        );
        let mut ctx = NullCtx::default();
        p.on_event(Event::Start, &mut ctx);
        assert!(p.failed_oom);
        assert!(ctx.stopped);
    }

    #[test]
    fn seed_outside_domain_terminates_immediately() {
        let seeds = vec![(StreamlineId(0), Vec3::splat(5.0))];
        let mut p = proc_with(seeds, 2);
        let mut ctx = NullCtx::default();
        p.on_event(Event::Start, &mut ctx);
        assert!(p.done);
        assert_eq!(p.finished.len(), 1);
        assert_eq!(p.workspace().cache_stats().loaded, 0);
    }
}
