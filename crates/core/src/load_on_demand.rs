//! Load On Demand (§4.2): parallelize across streamlines.
//!
//! "We split up the initial seed points evenly among the processors ...
//! grouped by block to enhance data locality. Each processor integrates the
//! streamlines assigned to it until streamline termination. As streamlines
//! move between blocks, each processor loads the appropriate block into
//! memory into an LRU cache. In order to minimize I/O, each processor
//! integrates all streamlines to the edge of the loaded blocks, loading a
//! block from disk only when there is no more work to be done on the
//! in-memory blocks. ... Each processor terminates independently when all of
//! its streamlines have terminated." No communication at all.

use crate::config::MemoryBudget;
use crate::msg::Msg;
use crate::workspace::{BlockExit, Workspace, WorkspaceSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use streamline_desim::{Context, Event, Process};
use streamline_field::block::BlockId;
use streamline_integrate::{Streamline, StreamlineId, Termination};
use streamline_iosim::StoreError;
use streamline_math::Vec3;

/// One Load On Demand rank.
///
/// The run proceeds in *rounds*: advance everything whose block is resident,
/// then load exactly one block, then yield back to the runtime with a
/// zero-delay wake. A round per event (instead of the whole run inside
/// `Start`) keeps virtual times and metrics identical while giving the
/// simulation between-event points at which a checkpoint can cut mid-run.
pub struct LodProc {
    ws: Workspace,
    seeds: Vec<(StreamlineId, Vec3)>,
    /// Streamlines waiting for a non-resident block, keyed by block for
    /// deterministic iteration.
    parked: BTreeMap<BlockId, Vec<Streamline>>,
    pub finished: Vec<Streamline>,
    memory: MemoryBudget,
    h0: f64,
    pub done: bool,
    pub failed_oom: bool,
}

/// Serializable image of a [`LodProc`] mid-run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LodSnapshot {
    pub ws: WorkspaceSnapshot,
    pub seeds: Vec<(StreamlineId, Vec3)>,
    pub parked: Vec<(BlockId, Vec<Streamline>)>,
    pub finished: Vec<Streamline>,
    pub done: bool,
    pub failed_oom: bool,
}

impl LodProc {
    pub fn new(
        ws: Workspace,
        seeds: Vec<(StreamlineId, Vec3)>,
        memory: MemoryBudget,
        h0: f64,
    ) -> Self {
        LodProc {
            ws,
            seeds,
            parked: BTreeMap::new(),
            finished: Vec::new(),
            memory,
            h0,
            done: false,
            failed_oom: false,
        }
    }

    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }

    /// Capture this rank's mid-run state for a checkpoint.
    pub fn snapshot(&self) -> LodSnapshot {
        LodSnapshot {
            ws: self.ws.snapshot(),
            seeds: self.seeds.clone(),
            parked: self.parked.iter().map(|(&b, v)| (b, v.clone())).collect(),
            finished: self.finished.clone(),
            done: self.done,
            failed_oom: self.failed_oom,
        }
    }

    /// Restore a snapshot onto a freshly built rank (same config/dataset).
    pub fn restore(&mut self, snap: &LodSnapshot) -> Result<(), StoreError> {
        self.ws.restore(&snap.ws)?;
        self.seeds = snap.seeds.clone();
        self.parked = snap.parked.iter().cloned().collect();
        self.finished = snap.finished.clone();
        self.done = snap.done;
        self.failed_oom = snap.failed_oom;
        Ok(())
    }

    fn check_memory(&mut self, ctx: &mut dyn Context<Msg>) -> bool {
        if self.memory.exceeded(self.ws.memory_bytes()) {
            self.failed_oom = true;
            ctx.stop_all();
            return true;
        }
        false
    }

    /// Advance everything whose block is resident ("integrate all
    /// streamlines to the edge of the loaded blocks"). Returns false when
    /// the run must abort (memory budget exceeded).
    ///
    /// Each resident block's queue is drained through the batch kernel in
    /// chunks of the workspace's batch width; lanes that cross into another
    /// block are re-parked and picked up by the next sweep of the outer
    /// loop, so a lane still traverses every resident block before any
    /// load happens — exactly the scalar chase, in batched order.
    fn drain_resident(&mut self, ctx: &mut dyn Context<Msg>) -> bool {
        let lanes = self.ws.batch_lanes();
        while let Some(block) = self.parked.keys().copied().find(|&b| self.ws.is_resident(b)) {
            let mut list = self.parked.remove(&block).expect("key just found");
            while !list.is_empty() {
                let take = lanes.min(list.len());
                let mut group = list.split_off(list.len() - take);
                // Scalar drained by popping from the end; keep that order
                // within the batch.
                group.reverse();
                let exits = self.ws.advance_batch_in(&mut group, block, ctx);
                for (sl, exit) in group.into_iter().zip(exits) {
                    match exit {
                        BlockExit::MovedTo(next) => self.parked.entry(next).or_default().push(sl),
                        BlockExit::Done(_) => self.finished.push(sl),
                    }
                }
                if self.check_memory(ctx) {
                    return false;
                }
            }
        }
        true
    }

    /// One round: drain resident blocks, then load at most one block and
    /// yield. Terminates the rank when no work remains.
    fn round(&mut self, ctx: &mut dyn Context<Msg>) {
        if self.done || !self.drain_resident(ctx) {
            return;
        }
        if self.parked.is_empty() {
            self.done = true;
            return;
        }
        // Load the block with the most waiting streamlines (ties to the
        // lowest id — deterministic).
        let (&target, _) = self
            .parked
            .iter()
            .max_by_key(|(id, v)| (v.len(), std::cmp::Reverse(id.0)))
            .expect("parked is non-empty");
        if self.ws.try_acquire(target, ctx).is_err() {
            // Unreachable block: everything waiting on it dies typed
            // instead of the rank spinning on the same failing load.
            for mut sl in self.parked.remove(&target).expect("key just found") {
                self.ws.terminate_unavailable(&mut sl);
                self.finished.push(sl);
            }
        } else if self.check_memory(ctx) {
            return;
        }
        // Yield: the next round runs at the same virtual time, but the
        // runtime gets a between-events cut point.
        ctx.wake_after(0.0, 0);
    }
}

impl Process<Msg> for LodProc {
    fn on_event(&mut self, ev: Event<Msg>, ctx: &mut dyn Context<Msg>) {
        match ev {
            Event::Start => {
                for (id, seed) in std::mem::take(&mut self.seeds) {
                    let mut sl = Streamline::new_lean(id, seed, self.h0);
                    self.ws.admit(&sl);
                    match self.ws.locate(seed) {
                        Some(b) => self.parked.entry(b).or_default().push(sl),
                        None => {
                            sl.terminate(Termination::ExitedDomain);
                            self.ws.terminated += 1;
                            self.ws.retire_object();
                            self.finished.push(sl);
                        }
                    }
                }
                self.round(ctx);
            }
            Event::Wake(_) => self.round(ctx),
            // Load On Demand exchanges no messages.
            Event::Message { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{uniform_x_dataset, NullCtx};
    use std::sync::Arc;
    use streamline_integrate::StepLimits;
    use streamline_iosim::{DiskModel, MemoryStore};

    fn proc_with(seeds: Vec<(StreamlineId, Vec3)>, cache_blocks: usize) -> LodProc {
        let ds = uniform_x_dataset();
        let store = Arc::new(MemoryStore::build(&ds));
        let ws = Workspace::new(
            ds.decomp,
            store,
            cache_blocks,
            DiskModel::paper_scale(),
            StepLimits::default(),
            1e-6,
        );
        LodProc::new(ws, seeds, MemoryBudget::unlimited(), 1e-2)
    }

    /// Deliver Start, then pump the zero-delay wakes the rank schedules
    /// between rounds until it stops asking for them.
    fn run_rounds(p: &mut LodProc, ctx: &mut NullCtx) {
        p.on_event(Event::Start, ctx);
        while let Some((_, token)) = ctx.take_wake() {
            p.on_event(Event::Wake(token), ctx);
        }
    }

    #[test]
    fn all_streamlines_terminate() {
        let seeds = (0..10)
            .map(|i| (StreamlineId(i), Vec3::new(0.1, 0.05 + 0.09 * i as f64, 0.3)))
            .collect();
        let mut p = proc_with(seeds, 8);
        let mut ctx = NullCtx::default();
        run_rounds(&mut p, &mut ctx);
        assert!(p.done);
        assert_eq!(p.finished.len(), 10);
        assert!(p.finished.iter().all(|s| s.status
            == streamline_integrate::StreamlineStatus::Terminated(Termination::ExitedDomain)));
        // Uniform +x from x=0.1 crosses 2 blocks per streamline; with a
        // roomy cache each of the blocks touched loads exactly once.
        let stats = p.workspace().cache_stats();
        assert_eq!(stats.purged, 0);
        assert!(ctx.io > 0.0);
        assert!(ctx.sent.is_empty(), "LOD must not communicate");
    }

    #[test]
    fn tiny_cache_forces_reloads() {
        // Seeds in all 8 blocks with a 1-block cache: blocks must be loaded,
        // purged and reloaded — low block efficiency (Figure 7's LOD bars).
        let mut seeds = Vec::new();
        let mut i = 0;
        for x in [0.2, 0.7] {
            for y in [0.2, 0.7] {
                for z in [0.2, 0.7] {
                    seeds.push((StreamlineId(i), Vec3::new(x, y, z)));
                    i += 1;
                }
            }
        }
        let mut p = proc_with(seeds, 1);
        let mut ctx = NullCtx::default();
        run_rounds(&mut p, &mut ctx);
        assert!(p.done);
        assert_eq!(p.finished.len(), 8);
        let stats = p.workspace().cache_stats();
        assert!(stats.purged > 0);
        assert!(stats.efficiency() < 0.5, "E = {}", stats.efficiency());
    }

    #[test]
    fn groups_by_block_before_loading() {
        // Two seeds in the same block: the block is loaded once, both are
        // integrated through it before any other load.
        let seeds = vec![
            (StreamlineId(0), Vec3::new(0.1, 0.2, 0.2)),
            (StreamlineId(1), Vec3::new(0.15, 0.3, 0.3)),
        ];
        let mut p = proc_with(seeds, 1);
        let mut ctx = NullCtx::default();
        run_rounds(&mut p, &mut ctx);
        // Blocks on the +x path: (0,0,0) then (1,0,0) — exactly 2 loads even
        // with a single-slot cache.
        assert_eq!(p.workspace().cache_stats().loaded, 2);
    }

    #[test]
    fn oom_aborts_run() {
        let seeds = vec![(StreamlineId(0), Vec3::new(0.1, 0.2, 0.2))];
        let ds = uniform_x_dataset();
        let store = Arc::new(MemoryStore::build(&ds));
        let ws = Workspace::new(
            ds.decomp,
            store,
            8,
            DiskModel::paper_scale(),
            StepLimits::default(),
            1e-6,
        );
        // Budget below one block.
        let mut p = LodProc::new(
            ws,
            seeds,
            MemoryBudget { bytes: Some(1.0), vertex_bytes: 64.0, stream_bytes: 65536.0 },
            1e-2,
        );
        let mut ctx = NullCtx::default();
        run_rounds(&mut p, &mut ctx);
        assert!(p.failed_oom);
        assert!(ctx.stopped);
    }

    #[test]
    fn snapshot_mid_run_resumes_identically() {
        let seeds: Vec<(StreamlineId, Vec3)> =
            (0..6).map(|i| (StreamlineId(i), Vec3::new(0.1, 0.1 + 0.13 * i as f64, 0.4))).collect();
        // Reference: run straight through.
        let mut reference = proc_with(seeds.clone(), 1);
        let mut rctx = NullCtx::default();
        run_rounds(&mut reference, &mut rctx);
        assert!(reference.done);

        // Interrupted: two rounds, snapshot, restore onto a fresh rank,
        // finish from there.
        let mut first = proc_with(seeds.clone(), 1);
        let mut ctx = NullCtx::default();
        first.on_event(Event::Start, &mut ctx);
        if let Some((_, token)) = ctx.take_wake() {
            first.on_event(Event::Wake(token), &mut ctx);
        }
        let snap = first.snapshot();
        assert!(!snap.done, "test must cut mid-run");

        let mut resumed = proc_with(seeds, 1);
        resumed.restore(&snap).expect("store has every block");
        assert_eq!(resumed.snapshot(), snap, "restore must reproduce the cut");
        // The cut is mid-run, so exactly one zero-delay wake was pending;
        // replay it into the resumed rank and pump from there.
        let (_, pending) = ctx.take_wake().expect("mid-run cut leaves a pending wake");
        let mut ctx2 = NullCtx { compute: ctx.compute, io: ctx.io, ..NullCtx::default() };
        resumed.on_event(Event::Wake(pending), &mut ctx2);
        while let Some((_, token)) = ctx2.take_wake() {
            resumed.on_event(Event::Wake(token), &mut ctx2);
        }
        assert!(resumed.done);
        let mut a = reference.finished;
        let mut b = resumed.finished;
        a.sort_by_key(|s| s.id);
        b.sort_by_key(|s| s.id);
        assert_eq!(a, b, "resumed run must produce identical streamlines");
        assert_eq!(
            (ctx2.compute, ctx2.io),
            (rctx.compute, rctx.io),
            "resumed charges must land where the uninterrupted run's did"
        );
    }

    #[test]
    fn seed_outside_domain_terminates_immediately() {
        let seeds = vec![(StreamlineId(0), Vec3::splat(5.0))];
        let mut p = proc_with(seeds, 2);
        let mut ctx = NullCtx::default();
        run_rounds(&mut p, &mut ctx);
        assert!(p.done);
        assert_eq!(p.finished.len(), 1);
        assert_eq!(p.workspace().cache_stats().loaded, 0);
    }
}
