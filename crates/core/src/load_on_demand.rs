//! Load On Demand (§4.2): parallelize across streamlines.
//!
//! "We split up the initial seed points evenly among the processors ...
//! grouped by block to enhance data locality. Each processor integrates the
//! streamlines assigned to it until streamline termination. As streamlines
//! move between blocks, each processor loads the appropriate block into
//! memory into an LRU cache. In order to minimize I/O, each processor
//! integrates all streamlines to the edge of the loaded blocks, loading a
//! block from disk only when there is no more work to be done on the
//! in-memory blocks. ... Each processor terminates independently when all of
//! its streamlines have terminated." No communication at all.

use crate::config::MemoryBudget;
use crate::ingest::EpochMap;
use crate::msg::Msg;
use crate::termination::{AnyDetector, DetectorKind, TerminationDetector};
use crate::workspace::{BlockExit, Workspace, WorkspaceSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use streamline_desim::{Context, Event, HeartbeatMonitor, Process};
use streamline_field::block::BlockId;
use streamline_integrate::{Streamline, StreamlineId, Termination};
use streamline_iosim::StoreError;
use streamline_math::Vec3;

/// Round wake (the only wake token outside resilient mode).
const WAKE_ROUND: u64 = 0;
/// Resilient mode only: periodic heartbeat-and-sweep tick.
const WAKE_BEAT: u64 = 10;

/// One Load On Demand rank.
///
/// The run proceeds in *rounds*: advance everything whose block is resident,
/// then load exactly one block, then yield back to the runtime with a
/// zero-delay wake. A round per event (instead of the whole run inside
/// `Start`) keeps virtual times and metrics identical while giving the
/// simulation between-event points at which a checkpoint can cut mid-run.
pub struct LodProc {
    ws: Workspace,
    seeds: Vec<(StreamlineId, Vec3)>,
    /// Streamlines waiting for a non-resident block, keyed by block for
    /// deterministic iteration.
    parked: BTreeMap<BlockId, Vec<Streamline>>,
    pub finished: Vec<Streamline>,
    memory: MemoryBudget,
    h0: f64,
    pub done: bool,
    pub failed_oom: bool,
    /// Local termination detector: work opens as it is admitted (start
    /// seeds, ingest batches, adopted chunks) and retires as it finishes.
    /// LOD ranks are independent, so local completion *is* global
    /// completion for this rank's share.
    detector: AnyDetector,
    /// Streamline id → ingest epoch (identity for closed runs).
    emap: EpochMap,
    /// `finished` entries already retired into the detector.
    retired_seen: usize,
    /// This rank's identity — only meaningful in resilient mode (LOD ranks
    /// are otherwise fully independent and never address each other).
    rank: usize,
    n_ranks: usize,
    /// Fail-stop resilience machinery; `None` outside rank-chaos runs so
    /// fault-free schedules are untouched (and the driver stays
    /// communication-free, as §4.2 requires).
    resil: Option<LodResil>,
    /// Every rank's initial seed assignment (shared, read-only): the live
    /// successor of a dead rank re-integrates its chunk. Rebuilt from the
    /// run config, never snapshotted.
    all_seeds: Arc<Vec<Vec<(StreamlineId, Vec3)>>>,
}

/// Per-rank fail-stop resilience state for Load On Demand: a heartbeat ring
/// (each rank beats its live successor and watches its live predecessor).
/// On suspicion the watcher re-integrates the dead rank's entire initial
/// seed chunk — LOD exchanges no work mid-run, so the initial assignment is
/// the complete recovery unit; ids the dead rank already finished are
/// deduplicated at collect time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LodResil {
    /// Virtual seconds between heartbeat ticks.
    pub heartbeat_period: f64,
    /// Ticks stop re-arming past this virtual time, bounding the event
    /// count of any death schedule.
    pub beat_deadline: f64,
    /// Failure detector over this rank's current watch target.
    pub monitor: HeartbeatMonitor,
    /// The live ring predecessor this rank watches for beats.
    pub watch_target: Option<usize>,
    /// A heartbeat tick is armed.
    pub beat_armed: bool,
    /// This rank's view of dead ranks, sorted.
    pub dead: Vec<u32>,
    /// Dead ranks whose initial seeds this rank has already re-integrated.
    pub adopted: Vec<u32>,
    /// `(rank, virtual time)` of each death this rank's monitor detected.
    pub suspected_at: Vec<(usize, f64)>,
    /// Streamlines this rank re-integrated on behalf of dead ranks.
    #[serde(default)]
    pub reassigned: u64,
}

impl LodResil {
    fn new(heartbeat_period: f64, suspect_timeout: f64, beat_deadline: f64) -> Self {
        LodResil {
            heartbeat_period,
            beat_deadline,
            monitor: HeartbeatMonitor::new(suspect_timeout),
            watch_target: None,
            beat_armed: false,
            dead: Vec::new(),
            adopted: Vec::new(),
            suspected_at: Vec::new(),
            reassigned: 0,
        }
    }

    fn is_dead(&self, rank: usize) -> bool {
        self.dead.binary_search(&(rank as u32)).is_ok()
    }
}

/// Serializable image of a [`LodProc`] mid-run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LodSnapshot {
    pub ws: WorkspaceSnapshot,
    pub seeds: Vec<(StreamlineId, Vec3)>,
    pub parked: Vec<(BlockId, Vec<Streamline>)>,
    pub finished: Vec<Streamline>,
    pub done: bool,
    pub failed_oom: bool,
    /// Absent in pre-resilience snapshots.
    #[serde(default)]
    pub resil: Option<LodResil>,
    /// Absent in pre-detector snapshots — reconstructed from the parked /
    /// finished counts.
    #[serde(default)]
    pub detector: Option<AnyDetector>,
}

impl LodProc {
    pub fn new(
        ws: Workspace,
        seeds: Vec<(StreamlineId, Vec3)>,
        memory: MemoryBudget,
        h0: f64,
    ) -> Self {
        let n = seeds.len() as u32;
        let mut detector = AnyDetector::new(DetectorKind::ClosedSet);
        detector.seal(1);
        LodProc {
            ws,
            seeds,
            parked: BTreeMap::new(),
            finished: Vec::new(),
            memory,
            h0,
            done: false,
            failed_oom: false,
            detector,
            emap: EpochMap::closed(n),
            retired_seen: 0,
            rank: 0,
            n_ranks: 1,
            resil: None,
            all_seeds: Arc::new(Vec::new()),
        }
    }

    /// Select the termination detector and ingest plan: `n_epochs` total
    /// ingest epochs will be observed (epoch 0 at start, the rest as
    /// [`Msg::Ingest`] events — one per epoch, even when this rank's share
    /// is empty). Work opens as it is admitted.
    pub fn with_ingest(mut self, kind: DetectorKind, n_epochs: u32, emap: EpochMap) -> Self {
        self.emap = emap;
        self.detector = AnyDetector::new(kind);
        self.detector.seal(n_epochs.max(1));
        self
    }

    /// This rank's termination detector (its own share of the plan).
    pub fn detector(&self) -> &AnyDetector {
        &self.detector
    }

    /// Retire newly finished streamlines into the detector. Called at
    /// every point where `finished` may have grown, so snapshots never
    /// carry unaccounted terminations.
    fn note_retirements(&mut self, now: f64) {
        if self.retired_seen == self.finished.len() {
            return;
        }
        let mut by_epoch: BTreeMap<u32, u64> = BTreeMap::new();
        for sl in &self.finished[self.retired_seen..] {
            *by_epoch.entry(self.emap.epoch_of(sl.id)).or_default() += 1;
        }
        self.retired_seen = self.finished.len();
        for (epoch, n) in by_epoch {
            self.detector.retire(epoch, n, now);
        }
    }

    /// Switch this rank into resilient mode (rank-chaos runs only): ring
    /// heartbeats until `beat_deadline`, a `suspect_timeout` failure
    /// detector, and seed-chunk adoption by the watching successor.
    #[allow(clippy::too_many_arguments)]
    pub fn with_resilience(
        mut self,
        rank: usize,
        n_ranks: usize,
        all_seeds: Arc<Vec<Vec<(StreamlineId, Vec3)>>>,
        heartbeat_period: f64,
        suspect_timeout: f64,
        beat_deadline: f64,
    ) -> Self {
        self.rank = rank;
        self.n_ranks = n_ranks;
        self.resil = Some(LodResil::new(heartbeat_period, suspect_timeout, beat_deadline));
        self.all_seeds = all_seeds;
        self
    }

    /// Deaths this rank's own failure detector observed, as
    /// `(rank, virtual suspicion time)`.
    pub fn suspected_at(&self) -> &[(usize, f64)] {
        self.resil.as_ref().map_or(&[], |r| r.suspected_at.as_slice())
    }

    /// Streamlines this rank re-integrated on behalf of dead ranks.
    pub fn reassigned(&self) -> u64 {
        self.resil.as_ref().map_or(0, |r| r.reassigned)
    }

    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }

    /// Capture this rank's mid-run state for a checkpoint.
    pub fn snapshot(&self) -> LodSnapshot {
        LodSnapshot {
            ws: self.ws.snapshot(),
            seeds: self.seeds.clone(),
            parked: self.parked.iter().map(|(&b, v)| (b, v.clone())).collect(),
            finished: self.finished.clone(),
            done: self.done,
            failed_oom: self.failed_oom,
            resil: self.resil.clone(),
            detector: Some(self.detector.clone()),
        }
    }

    /// Restore a snapshot onto a freshly built rank (same config/dataset).
    pub fn restore(&mut self, snap: &LodSnapshot) -> Result<(), StoreError> {
        self.ws.restore(&snap.ws)?;
        self.seeds = snap.seeds.clone();
        self.parked = snap.parked.iter().cloned().collect();
        self.finished = snap.finished.clone();
        self.done = snap.done;
        self.failed_oom = snap.failed_oom;
        self.resil = snap.resil.clone();
        self.detector = match &snap.detector {
            Some(d) => d.clone(),
            // Pre-detector snapshot (closed run): everything admitted is
            // either parked or finished.
            None => {
                let mut d = AnyDetector::new(DetectorKind::ClosedSet);
                let parked: u64 = self.parked.values().map(|v| v.len() as u64).sum();
                d.open(0, parked + self.finished.len() as u64);
                d.retire(0, self.finished.len() as u64, 0.0);
                d.seal(1);
                d
            }
        };
        self.retired_seen = self.finished.len();
        Ok(())
    }

    /// Ranks this rank believes alive, ascending. Always contains `rank`.
    fn live_ranks(&self) -> Vec<usize> {
        match &self.resil {
            Some(r) => (0..self.n_ranks).filter(|&p| p == self.rank || !r.is_dead(p)).collect(),
            None => (0..self.n_ranks).collect(),
        }
    }

    /// Watch the live ring predecessor (the rank whose beats we receive).
    fn rewatch(&mut self, now: f64) {
        let live = self.live_ranks();
        let m = live.len();
        let i = live.iter().position(|&r| r == self.rank).expect("self is alive");
        let pred = if m >= 2 { Some(live[(i + m - 1) % m]) } else { None };
        let Some(r) = self.resil.as_mut() else { return };
        if r.watch_target != pred {
            if let Some(old) = r.watch_target.take() {
                r.monitor.unwatch(old);
            }
            if let Some(p) = pred {
                r.watch_target = Some(p);
                r.monitor.watch(p, now);
            }
        }
    }

    fn arm_beat(&mut self, ctx: &mut dyn Context<Msg>) {
        if let Some(r) = self.resil.as_mut() {
            if !r.beat_armed {
                r.beat_armed = true;
                ctx.wake_after(r.heartbeat_period, WAKE_BEAT);
            }
        }
    }

    /// Heartbeat tick: sweep the failure detector (adopting the chunk of
    /// any newly dead predecessor), beat the live successor, re-arm until
    /// the deadline.
    fn on_beat_tick(&mut self, ctx: &mut dyn Context<Msg>) {
        let now = ctx.now();
        let newly = {
            let Some(r) = self.resil.as_mut() else { return };
            r.beat_armed = false;
            r.monitor.sweep(now)
        };
        for rank in newly {
            self.apply_death(rank, now, ctx);
            if self.failed_oom {
                return;
            }
        }
        let beating = self.resil.as_ref().is_some_and(|r| now <= r.beat_deadline);
        if beating && self.n_ranks > 1 {
            let live = self.live_ranks();
            if live.len() >= 2 {
                let i = live.iter().position(|&r| r == self.rank).expect("self is alive");
                let m = Msg::Beat { done: self.done };
                let bytes = m.wire_bytes(true);
                ctx.send(live[(i + 1) % live.len()], m, bytes);
            }
            self.arm_beat(ctx);
        }
    }

    /// The watched predecessor is dead: record it, rewatch, and adopt its
    /// entire initial seed chunk (the complete recovery unit — LOD ranks
    /// exchange no work mid-run). Ids the dead rank already finished are
    /// deduplicated at collect time; work it held mid-flight that the chunk
    /// replays is thereby recovered exactly.
    fn apply_death(&mut self, rank: usize, now: f64, ctx: &mut dyn Context<Msg>) {
        let adopt = {
            let Some(r) = self.resil.as_mut() else { return };
            if let Err(i) = r.dead.binary_search(&(rank as u32)) {
                r.dead.insert(i, rank as u32);
                r.suspected_at.push((rank, now));
            }
            match r.adopted.binary_search(&(rank as u32)) {
                Ok(_) => false,
                Err(i) => {
                    r.adopted.insert(i, rank as u32);
                    true
                }
            }
        };
        self.rewatch(now);
        if !adopt {
            return;
        }
        let orphan_seeds = self.all_seeds.get(rank).cloned().unwrap_or_default();
        if orphan_seeds.is_empty() {
            return;
        }
        if let Some(r) = self.resil.as_mut() {
            r.reassigned += orphan_seeds.len() as u64;
        }
        // Adopted work joins this rank's base-epoch ledger so the replayed
        // retirements stay balanced against what was opened here.
        self.detector.open(0, orphan_seeds.len() as u64);
        for (id, seed) in orphan_seeds {
            let mut sl = Streamline::new_lean(id, seed, self.h0);
            self.ws.admit(&sl);
            match self.ws.locate(seed) {
                Some(b) => self.parked.entry(b).or_default().push(sl),
                None => {
                    sl.terminate(Termination::ExitedDomain);
                    self.ws.terminated += 1;
                    self.ws.retire_object();
                    self.finished.push(sl);
                }
            }
        }
        if self.check_memory(ctx) {
            return;
        }
        // The rank may have already declared itself done; adopted work
        // re-opens it.
        self.done = false;
        ctx.wake_after(0.0, WAKE_ROUND);
    }

    fn check_memory(&mut self, ctx: &mut dyn Context<Msg>) -> bool {
        if self.memory.exceeded(self.ws.memory_bytes()) {
            self.failed_oom = true;
            ctx.stop_all();
            return true;
        }
        false
    }

    /// Advance everything whose block is resident ("integrate all
    /// streamlines to the edge of the loaded blocks"). Returns false when
    /// the run must abort (memory budget exceeded).
    ///
    /// Each resident block's queue is drained through the batch kernel in
    /// chunks of the workspace's batch width; lanes that cross into another
    /// block are re-parked and picked up by the next sweep of the outer
    /// loop, so a lane still traverses every resident block before any
    /// load happens — exactly the scalar chase, in batched order.
    fn drain_resident(&mut self, ctx: &mut dyn Context<Msg>) -> bool {
        let lanes = self.ws.batch_lanes();
        while let Some(block) = self.parked.keys().copied().find(|&b| self.ws.is_resident(b)) {
            let mut list = self.parked.remove(&block).expect("key just found");
            while !list.is_empty() {
                let take = lanes.min(list.len());
                let mut group = list.split_off(list.len() - take);
                // Scalar drained by popping from the end; keep that order
                // within the batch.
                group.reverse();
                let exits = self.ws.advance_batch_in(&mut group, block, ctx);
                for (sl, exit) in group.into_iter().zip(exits) {
                    match exit {
                        BlockExit::MovedTo(next) => self.parked.entry(next).or_default().push(sl),
                        BlockExit::Done(_) => self.finished.push(sl),
                    }
                }
                if self.check_memory(ctx) {
                    return false;
                }
            }
        }
        true
    }

    /// One round: drain resident blocks, then load at most one block and
    /// yield. Terminates the rank when no work remains.
    fn round(&mut self, ctx: &mut dyn Context<Msg>) {
        if self.done || !self.drain_resident(ctx) {
            return;
        }
        self.note_retirements(ctx.now());
        if self.parked.is_empty() {
            // Done only when no future ingest epoch can deliver more work;
            // otherwise stay idle — the next `Ingest` restarts the rounds.
            if self.detector.is_done() {
                self.done = true;
            }
            return;
        }
        // Load the block with the most waiting streamlines (ties to the
        // lowest id — deterministic).
        let (&target, _) = self
            .parked
            .iter()
            .max_by_key(|(id, v)| (v.len(), std::cmp::Reverse(id.0)))
            .expect("parked is non-empty");
        if self.ws.try_acquire(target, ctx).is_err() {
            // Unreachable block: everything waiting on it dies typed
            // instead of the rank spinning on the same failing load.
            for mut sl in self.parked.remove(&target).expect("key just found") {
                self.ws.terminate_unavailable(&mut sl);
                self.finished.push(sl);
            }
        } else if self.check_memory(ctx) {
            return;
        }
        // Yield: the next round runs at the same virtual time, but the
        // runtime gets a between-events cut point.
        ctx.wake_after(0.0, 0);
    }
}

impl Process<Msg> for LodProc {
    fn on_event(&mut self, ev: Event<Msg>, ctx: &mut dyn Context<Msg>) {
        match ev {
            Event::Start => {
                if self.resil.is_some() && self.n_ranks > 1 {
                    self.rewatch(ctx.now());
                    self.arm_beat(ctx);
                }
                let seeds = std::mem::take(&mut self.seeds);
                // Open the base epoch even when this rank's share is empty
                // — the frontier cannot pass an unobserved epoch.
                self.detector.open(0, seeds.len() as u64);
                for (id, seed) in seeds {
                    let mut sl = Streamline::new_lean(id, seed, self.h0);
                    self.ws.admit(&sl);
                    match self.ws.locate(seed) {
                        Some(b) => self.parked.entry(b).or_default().push(sl),
                        None => {
                            sl.terminate(Termination::ExitedDomain);
                            self.ws.terminated += 1;
                            self.ws.retire_object();
                            self.finished.push(sl);
                        }
                    }
                }
                self.round(ctx);
                self.note_retirements(ctx.now());
            }
            Event::Wake(WAKE_BEAT) => self.on_beat_tick(ctx),
            Event::Wake(_) => {
                self.round(ctx);
                self.note_retirements(ctx.now());
            }
            Event::Message { msg: Msg::Ingest { epoch, seeds }, .. } => {
                // An open-loop batch for this rank (possibly empty — the
                // epoch is still observed). Admitted work re-opens a rank
                // that had gone idle.
                self.detector.open(epoch, seeds.len() as u64);
                for (id, seed) in seeds {
                    let mut sl = Streamline::new_lean(id, seed, self.h0);
                    self.ws.admit(&sl);
                    match self.ws.locate(seed) {
                        Some(b) => self.parked.entry(b).or_default().push(sl),
                        None => {
                            sl.terminate(Termination::ExitedDomain);
                            self.ws.terminated += 1;
                            self.ws.retire_object();
                            self.finished.push(sl);
                        }
                    }
                }
                if self.check_memory(ctx) {
                    return;
                }
                self.done = false;
                self.round(ctx);
                self.note_retirements(ctx.now());
            }
            // Load On Demand exchanges no work messages; beats are proof of
            // life for the failure detector.
            Event::Message { from, .. } => {
                if let Some(r) = self.resil.as_mut() {
                    r.monitor.beat(from, ctx.now());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{uniform_x_dataset, NullCtx};
    use std::sync::Arc;
    use streamline_integrate::StepLimits;
    use streamline_iosim::{DiskModel, MemoryStore};

    fn proc_with(seeds: Vec<(StreamlineId, Vec3)>, cache_blocks: usize) -> LodProc {
        let ds = uniform_x_dataset();
        let store = Arc::new(MemoryStore::build(&ds));
        let ws = Workspace::new(
            ds.decomp,
            store,
            cache_blocks,
            DiskModel::paper_scale(),
            StepLimits::default(),
            1e-6,
        );
        LodProc::new(ws, seeds, MemoryBudget::unlimited(), 1e-2)
    }

    /// Deliver Start, then pump the zero-delay wakes the rank schedules
    /// between rounds until it stops asking for them.
    fn run_rounds(p: &mut LodProc, ctx: &mut NullCtx) {
        p.on_event(Event::Start, ctx);
        while let Some((_, token)) = ctx.take_wake() {
            p.on_event(Event::Wake(token), ctx);
        }
    }

    #[test]
    fn all_streamlines_terminate() {
        let seeds = (0..10)
            .map(|i| (StreamlineId(i), Vec3::new(0.1, 0.05 + 0.09 * i as f64, 0.3)))
            .collect();
        let mut p = proc_with(seeds, 8);
        let mut ctx = NullCtx::default();
        run_rounds(&mut p, &mut ctx);
        assert!(p.done);
        assert_eq!(p.finished.len(), 10);
        assert!(p.finished.iter().all(|s| s.status
            == streamline_integrate::StreamlineStatus::Terminated(Termination::ExitedDomain)));
        // Uniform +x from x=0.1 crosses 2 blocks per streamline; with a
        // roomy cache each of the blocks touched loads exactly once.
        let stats = p.workspace().cache_stats();
        assert_eq!(stats.purged, 0);
        assert!(ctx.io > 0.0);
        assert!(ctx.sent.is_empty(), "LOD must not communicate");
    }

    #[test]
    fn tiny_cache_forces_reloads() {
        // Seeds in all 8 blocks with a 1-block cache: blocks must be loaded,
        // purged and reloaded — low block efficiency (Figure 7's LOD bars).
        let mut seeds = Vec::new();
        let mut i = 0;
        for x in [0.2, 0.7] {
            for y in [0.2, 0.7] {
                for z in [0.2, 0.7] {
                    seeds.push((StreamlineId(i), Vec3::new(x, y, z)));
                    i += 1;
                }
            }
        }
        let mut p = proc_with(seeds, 1);
        let mut ctx = NullCtx::default();
        run_rounds(&mut p, &mut ctx);
        assert!(p.done);
        assert_eq!(p.finished.len(), 8);
        let stats = p.workspace().cache_stats();
        assert!(stats.purged > 0);
        assert!(stats.efficiency() < 0.5, "E = {}", stats.efficiency());
    }

    #[test]
    fn groups_by_block_before_loading() {
        // Two seeds in the same block: the block is loaded once, both are
        // integrated through it before any other load.
        let seeds = vec![
            (StreamlineId(0), Vec3::new(0.1, 0.2, 0.2)),
            (StreamlineId(1), Vec3::new(0.15, 0.3, 0.3)),
        ];
        let mut p = proc_with(seeds, 1);
        let mut ctx = NullCtx::default();
        run_rounds(&mut p, &mut ctx);
        // Blocks on the +x path: (0,0,0) then (1,0,0) — exactly 2 loads even
        // with a single-slot cache.
        assert_eq!(p.workspace().cache_stats().loaded, 2);
    }

    #[test]
    fn oom_aborts_run() {
        let seeds = vec![(StreamlineId(0), Vec3::new(0.1, 0.2, 0.2))];
        let ds = uniform_x_dataset();
        let store = Arc::new(MemoryStore::build(&ds));
        let ws = Workspace::new(
            ds.decomp,
            store,
            8,
            DiskModel::paper_scale(),
            StepLimits::default(),
            1e-6,
        );
        // Budget below one block.
        let mut p = LodProc::new(
            ws,
            seeds,
            MemoryBudget { bytes: Some(1.0), vertex_bytes: 64.0, stream_bytes: 65536.0 },
            1e-2,
        );
        let mut ctx = NullCtx::default();
        run_rounds(&mut p, &mut ctx);
        assert!(p.failed_oom);
        assert!(ctx.stopped);
    }

    #[test]
    fn snapshot_mid_run_resumes_identically() {
        let seeds: Vec<(StreamlineId, Vec3)> =
            (0..6).map(|i| (StreamlineId(i), Vec3::new(0.1, 0.1 + 0.13 * i as f64, 0.4))).collect();
        // Reference: run straight through.
        let mut reference = proc_with(seeds.clone(), 1);
        let mut rctx = NullCtx::default();
        run_rounds(&mut reference, &mut rctx);
        assert!(reference.done);

        // Interrupted: two rounds, snapshot, restore onto a fresh rank,
        // finish from there.
        let mut first = proc_with(seeds.clone(), 1);
        let mut ctx = NullCtx::default();
        first.on_event(Event::Start, &mut ctx);
        if let Some((_, token)) = ctx.take_wake() {
            first.on_event(Event::Wake(token), &mut ctx);
        }
        let snap = first.snapshot();
        assert!(!snap.done, "test must cut mid-run");

        let mut resumed = proc_with(seeds, 1);
        resumed.restore(&snap).expect("store has every block");
        assert_eq!(resumed.snapshot(), snap, "restore must reproduce the cut");
        // The cut is mid-run, so exactly one zero-delay wake was pending;
        // replay it into the resumed rank and pump from there.
        let (_, pending) = ctx.take_wake().expect("mid-run cut leaves a pending wake");
        let mut ctx2 = NullCtx { compute: ctx.compute, io: ctx.io, ..NullCtx::default() };
        resumed.on_event(Event::Wake(pending), &mut ctx2);
        while let Some((_, token)) = ctx2.take_wake() {
            resumed.on_event(Event::Wake(token), &mut ctx2);
        }
        assert!(resumed.done);
        let mut a = reference.finished;
        let mut b = resumed.finished;
        a.sort_by_key(|s| s.id);
        b.sort_by_key(|s| s.id);
        assert_eq!(a, b, "resumed run must produce identical streamlines");
        assert_eq!(
            (ctx2.compute, ctx2.io),
            (rctx.compute, rctx.io),
            "resumed charges must land where the uninterrupted run's did"
        );
    }

    #[test]
    fn seed_outside_domain_terminates_immediately() {
        let seeds = vec![(StreamlineId(0), Vec3::splat(5.0))];
        let mut p = proc_with(seeds, 2);
        let mut ctx = NullCtx::default();
        run_rounds(&mut p, &mut ctx);
        assert!(p.done);
        assert_eq!(p.finished.len(), 1);
        assert_eq!(p.workspace().cache_stats().loaded, 0);
    }
}
