//! The message protocol shared by the three algorithms.
//!
//! Wire sizes are modelled explicitly because the paper's communication
//! measurements hinge on them — in particular, a streamline hand-off carries
//! its accumulated geometry (§8: "Communicating streamline geometry accounts
//! for a large proportion of communication cost").

use serde::{Deserialize, Serialize};
use streamline_field::block::BlockId;
use streamline_integrate::{Streamline, StreamlineId};
use streamline_math::Vec3;

/// A slave's self-description, sent to its master when it runs out of work
/// (and opportunistically as its state changes). §4.3: "This status message
/// includes the set of streamlines owned by each slave, which blocks those
/// streamlines currently intersect, which blocks are currently loaded into
/// memory on that slave, and how many streamlines are currently being
/// integrated."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaveStatus {
    /// Streamlines currently advanceable or parked, per block.
    pub queued_by_block: Vec<(BlockId, u32)>,
    /// Blocks resident in the slave's cache.
    pub loaded: Vec<BlockId>,
    /// Streamlines currently being integrated (active on this slave).
    pub active: u32,
    /// Cumulative count of streamlines this slave has terminated.
    pub terminated_total: u64,
    /// The slave can do no more work without instruction.
    pub out_of_work: bool,
    /// Cumulative count of master commands this slave has processed. The
    /// master uses it to discard statuses that predate in-flight commands —
    /// without it, a crossed-in-flight status makes the master forget what
    /// it just ordered and re-issue the same command indefinitely.
    pub acked_cmds: u64,
    /// Blocks this slave could not load (retries exhausted), cumulative and
    /// sorted. The master quarantines them so it stops scheduling work that
    /// can never run. Like `terminated_total`, this field is monotone and
    /// safe to fold in even from stale statuses.
    pub failed_blocks: Vec<BlockId>,
}

impl SlaveStatus {
    pub fn wire_bytes(&self) -> usize {
        32 + self.queued_by_block.len() * 8 + (self.loaded.len() + self.failed_blocks.len()) * 4
    }
}

/// A master's instruction to a slave (the five rules of §4.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// Assign-loaded / Assign-unloaded: N seed points in one block. The
    /// slave loads the block if it is not resident.
    AssignSeeds { block: BlockId, seeds: Vec<(StreamlineId, Vec3)> },
    /// Send-force: send your streamlines parked in `block` to slave rank
    /// `to`.
    SendForce { block: BlockId, to: usize },
    /// Send-hint: when appropriate, offload streamlines parked in `blocks`
    /// to slave rank `to`; ignore if nothing applies.
    SendHint { blocks: Vec<BlockId>, to: usize },
    /// Load `block` into the cache.
    Load { block: BlockId },
    /// All streamlines everywhere have terminated.
    Terminate,
}

impl Command {
    pub fn wire_bytes(&self) -> usize {
        match self {
            Command::AssignSeeds { seeds, .. } => 16 + seeds.len() * 28,
            Command::SendForce { .. } => 16,
            Command::SendHint { blocks, .. } => 16 + blocks.len() * 4,
            Command::Load { .. } => 12,
            Command::Terminate => 8,
        }
    }
}

/// Every message any algorithm sends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Msg {
    /// A streamline moving between ranks (Static Allocation hand-off and
    /// Hybrid Send-force/Send-hint migration).
    Handoff { sl: Box<Streamline> },
    /// Static Allocation: `count` more streamlines terminated (sent to the
    /// count rank, which maintains the "globally communicated streamline
    /// count" of §4.1). `by_epoch` splits the same count per ingest epoch
    /// for the frontier detector; empty (and free on the wire) means
    /// "all in epoch 0" — exactly what every closed run sends, so closed
    /// traffic costs what it always did and old checkpoints still load.
    CountDelta {
        count: u32,
        #[serde(default)]
        by_epoch: Vec<(u32, u32)>,
    },
    /// Hybrid: slave → master status.
    Status(SlaveStatus),
    /// Hybrid: master → slave instruction.
    Command(Command),
    /// Hybrid: master → master, this master's group has `remaining`
    /// unfinished streamlines. `extra_ingested` counts ingest epochs this
    /// master has observed beyond the base set (0 for closed runs — the
    /// serde default, keeping old checkpoints loadable), and `by_epoch`
    /// carries cumulative per-epoch terminated counts for the frontier
    /// detector (empty, and free on the wire, for closed runs).
    GroupRemaining {
        remaining: u64,
        #[serde(default)]
        extra_ingested: u32,
        #[serde(default)]
        by_epoch: Vec<(u32, u64)>,
    },
    /// Hybrid: master → master work stealing request.
    WorkRequest,
    /// Hybrid: master → master granted seeds (empty = nothing to give).
    WorkGrant { seeds: Vec<(StreamlineId, Vec3)> },
    /// A rank exceeded its memory budget; the run is aborted.
    OutOfMemory { rank: usize },
    /// Work stealing: diffusive load report to a lifeline neighbor (parked
    /// streamline count at the sender).
    LoadReport { load: u32 },
    /// Work stealing: an idle rank asks a neighbor for a batch of work.
    StealRequest,
    /// Work stealing: granted streamlines, each tagged with the block it is
    /// parked on (empty = refusal). Like `Handoff`, the modelled cost is
    /// dominated by the accumulated geometry of the migrated curves.
    WorkTransfer { sls: Vec<(BlockId, Streamline)> },
    /// Work stealing: the Safra termination token circulating the ring of
    /// `j = 0` lifeline edges (in-flight message balance + dirty bit).
    /// `dead` gossips the sender's view of failed ranks so every survivor
    /// folds the same membership into its balance; empty (and free on the
    /// wire) in fault-free runs — `#[serde(default)]` keeps old checkpoints
    /// loadable.
    TermToken {
        count: i64,
        black: bool,
        #[serde(default)]
        dead: Vec<u32>,
        /// Folded minimum, over the ranks the token has visited this round,
        /// of ingest epochs observed beyond the base set. The initiator may
        /// declare global termination only when this reaches the plan's
        /// epoch count minus one — the frontier generalization of the Safra
        /// condition. 0 for closed runs (the serde default), so old
        /// checkpoints still load and closed tokens are unchanged.
        #[serde(default)]
        extra_ingested: u32,
    },
    /// Liveness heartbeat (resilient mode only). `done` rides along so a
    /// finished rank's beats also advertise that it holds no work — used by
    /// static allocation's drain accounting.
    Beat { done: bool },
    /// Hybrid: master → slave liveness heartbeat (any command also counts
    /// as proof of life; this fills the gaps between commands).
    MasterBeat,
    /// Open-loop seed ingestion: a batch of seeds of ingest epoch `epoch`
    /// arriving from outside the cluster at a scheduled virtual time
    /// (delivered self-addressed by the simulation's arrival queue, so it
    /// carries no modelled inter-rank wire cost). An empty batch still
    /// advances the receiver's ingest epoch count — the frontier cannot
    /// pass an epoch a rank has not observed.
    Ingest { epoch: u32, seeds: Vec<(StreamlineId, Vec3)> },
}

impl Msg {
    /// Modelled wire size. `comm_geometry` selects whether hand-offs carry
    /// full geometry (the paper's measured configuration) or solver state
    /// only (§8's proposed optimization).
    pub fn wire_bytes(&self, comm_geometry: bool) -> usize {
        match self {
            Msg::Handoff { sl } => {
                if comm_geometry {
                    sl.comm_bytes_full()
                } else {
                    Streamline::COMM_BYTES_STATE
                }
            }
            // 12 bytes exactly when `by_epoch` is empty (closed runs);
            // open runs pay 8 bytes per epoch entry.
            Msg::CountDelta { by_epoch, .. } => 12 + by_epoch.len() * 8,
            Msg::Status(s) => s.wire_bytes(),
            Msg::Command(c) => c.wire_bytes(),
            // 16 bytes exactly for closed runs (empty `by_epoch`); the
            // `extra_ingested` word rides in the existing header padding.
            Msg::GroupRemaining { by_epoch, .. } => 16 + by_epoch.len() * 12,
            Msg::WorkRequest => 8,
            Msg::WorkGrant { seeds } => 8 + seeds.len() * 28,
            Msg::OutOfMemory { .. } => 12,
            Msg::LoadReport { .. } => 12,
            Msg::StealRequest => 8,
            Msg::WorkTransfer { sls } => {
                let per_sl = |sl: &Streamline| {
                    if comm_geometry {
                        sl.comm_bytes_full()
                    } else {
                        Streamline::COMM_BYTES_STATE
                    }
                };
                8 + sls.iter().map(|(_, sl)| 4 + per_sl(sl)).sum::<usize>()
            }
            // 24 bytes exactly when `dead` is empty, so fault-free token
            // traffic costs what it always did; `extra_ingested` rides in
            // the existing padding (it is 0 on every closed run anyway).
            Msg::TermToken { dead, .. } => 24 + dead.len() * 4,
            Msg::Beat { .. } => 9,
            Msg::MasterBeat => 8,
            Msg::Ingest { seeds, .. } => 12 + seeds.len() * 28,
        }
    }
}

/// Inter-replica traffic of the serve cluster: the same hand-off economics
/// as [`Msg`], but between sharded service replicas instead of batch ranks.
/// Kept separate from [`Msg`] so the batch drivers' exhaustive matches stay
/// closed; wire sizes mirror the corresponding [`Msg`] variants so the two
/// communication fabrics are directly comparable in reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplicaMsg {
    /// A partial streamline crossing a shard boundary: the sender no longer
    /// owns the block the trajectory entered, so the curve (geometry and
    /// all, exactly like the paper's rank hand-off) moves to the owner.
    Handoff { sl: Box<Streamline> },
    /// A parked streamline evacuated from a replica declared dead, re-routed
    /// to the block's successor on the ring. Same payload as a hand-off;
    /// counted separately because it is recovery traffic, not steady-state.
    Redispatch { sl: Box<Streamline> },
    /// Replica liveness beat (the serving twin of [`Msg::Beat`]).
    Beat,
}

impl ReplicaMsg {
    /// Modelled wire size; `comm_geometry` as in [`Msg::wire_bytes`].
    pub fn wire_bytes(&self, comm_geometry: bool) -> usize {
        let sl_bytes = |sl: &Streamline| {
            if comm_geometry {
                sl.comm_bytes_full()
            } else {
                Streamline::COMM_BYTES_STATE
            }
        };
        match self {
            ReplicaMsg::Handoff { sl } | ReplicaMsg::Redispatch { sl } => sl_bytes(sl),
            ReplicaMsg::Beat => 9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handoff_size_depends_on_geometry_flag() {
        let mut sl = Streamline::new(StreamlineId(1), Vec3::ZERO, 0.01);
        for i in 0..100 {
            sl.push_step(Vec3::splat(i as f64), 0.01);
        }
        let m = Msg::Handoff { sl: Box::new(sl) };
        let full = m.wire_bytes(true);
        let lean = m.wire_bytes(false);
        assert!(full > lean + 100 * 24 - 1);
        assert_eq!(lean, Streamline::COMM_BYTES_STATE);
    }

    #[test]
    fn status_size_scales_with_contents() {
        let small = SlaveStatus {
            queued_by_block: vec![],
            loaded: vec![],
            active: 0,
            terminated_total: 0,
            out_of_work: true,
            acked_cmds: 0,
            failed_blocks: vec![],
        };
        let big = SlaveStatus {
            queued_by_block: (0..10).map(|i| (BlockId(i), 5)).collect(),
            loaded: (0..8).map(BlockId).collect(),
            active: 3,
            terminated_total: 9,
            out_of_work: false,
            acked_cmds: 0,
            failed_blocks: vec![BlockId(7)],
        };
        assert!(big.wire_bytes() > small.wire_bytes());
        // Reporting failed blocks costs wire bytes like loaded blocks do.
        let mut with_failure = small.clone();
        with_failure.failed_blocks = vec![BlockId(3)];
        assert_eq!(with_failure.wire_bytes(), small.wire_bytes() + 4);
    }

    #[test]
    fn steal_message_sizes() {
        assert_eq!(Msg::StealRequest.wire_bytes(true), 8);
        assert_eq!(Msg::LoadReport { load: 9 }.wire_bytes(true), 12);
        assert_eq!(
            Msg::TermToken { count: -3, black: true, dead: vec![], extra_ingested: 0 }
                .wire_bytes(true),
            24,
            "fault-free tokens must cost what they always did"
        );
        assert_eq!(
            Msg::TermToken { count: 0, black: false, dead: vec![1, 5], extra_ingested: 0 }
                .wire_bytes(true),
            32
        );
        assert_eq!(Msg::Beat { done: false }.wire_bytes(true), 9);
        assert_eq!(Msg::MasterBeat.wire_bytes(true), 8);
        // A transfer is a refusal when empty, and costs geometry otherwise.
        assert_eq!(Msg::WorkTransfer { sls: vec![] }.wire_bytes(true), 8);
        let mut sl = Streamline::new(StreamlineId(1), Vec3::ZERO, 0.01);
        for i in 0..50 {
            sl.push_step(Vec3::splat(i as f64), 0.01);
        }
        let full = sl.comm_bytes_full();
        let m = Msg::WorkTransfer { sls: vec![(BlockId(3), sl)] };
        assert_eq!(m.wire_bytes(true), 8 + 4 + full);
        assert_eq!(m.wire_bytes(false), 8 + 4 + Streamline::COMM_BYTES_STATE);
    }

    #[test]
    fn closed_run_messages_cost_what_they_always_did() {
        // The open-loop fields default to their closed-run values and add
        // zero wire bytes there — the invariant that keeps closed schedules
        // bit-identical across detector kinds.
        assert_eq!(Msg::CountDelta { count: 5, by_epoch: vec![] }.wire_bytes(true), 12);
        assert_eq!(
            Msg::CountDelta { count: 5, by_epoch: vec![(0, 2), (1, 3)] }.wire_bytes(true),
            12 + 16
        );
        let closed = Msg::GroupRemaining { remaining: 9, extra_ingested: 0, by_epoch: vec![] };
        assert_eq!(closed.wire_bytes(true), 16);
        let open = Msg::GroupRemaining { remaining: 9, extra_ingested: 2, by_epoch: vec![(1, 4)] };
        assert_eq!(open.wire_bytes(true), 28);
        // Old-format messages (without the new fields) still deserialize.
        let legacy: Msg = serde_json::from_str(r#"{"CountDelta":{"count":3}}"#).unwrap();
        assert_eq!(legacy, Msg::CountDelta { count: 3, by_epoch: vec![] });
        let legacy: Msg =
            serde_json::from_str(r#"{"TermToken":{"count":-1,"black":false}}"#).unwrap();
        assert_eq!(
            legacy,
            Msg::TermToken { count: -1, black: false, dead: vec![], extra_ingested: 0 }
        );
        let legacy: Msg = serde_json::from_str(r#"{"GroupRemaining":{"remaining":7}}"#).unwrap();
        assert_eq!(
            legacy,
            Msg::GroupRemaining { remaining: 7, extra_ingested: 0, by_epoch: vec![] }
        );
    }

    #[test]
    fn ingest_size_scales_with_batch() {
        assert_eq!(Msg::Ingest { epoch: 1, seeds: vec![] }.wire_bytes(true), 12);
        let seeds = (0..4).map(|i| (StreamlineId(i), Vec3::ZERO)).collect();
        assert_eq!(Msg::Ingest { epoch: 1, seeds }.wire_bytes(true), 12 + 4 * 28);
    }

    #[test]
    fn replica_msg_sizes_mirror_rank_msgs() {
        let mut sl = Streamline::new(StreamlineId(2), Vec3::ZERO, 0.01);
        for i in 0..40 {
            sl.push_step(Vec3::splat(i as f64), 0.01);
        }
        let rank = Msg::Handoff { sl: Box::new(sl.clone()) };
        let replica = ReplicaMsg::Handoff { sl: Box::new(sl.clone()) };
        let redispatch = ReplicaMsg::Redispatch { sl: Box::new(sl) };
        // The cluster's hand-off costs exactly what the batch drivers' does,
        // geometry-dominated or state-only alike.
        assert_eq!(replica.wire_bytes(true), rank.wire_bytes(true));
        assert_eq!(replica.wire_bytes(false), Streamline::COMM_BYTES_STATE);
        assert_eq!(redispatch.wire_bytes(true), replica.wire_bytes(true));
        assert_eq!(ReplicaMsg::Beat.wire_bytes(true), Msg::Beat { done: false }.wire_bytes(true));
    }

    #[test]
    fn command_sizes() {
        let assign = Command::AssignSeeds {
            block: BlockId(0),
            seeds: (0..10).map(|i| (StreamlineId(i), Vec3::ZERO)).collect(),
        };
        assert_eq!(assign.wire_bytes(), 16 + 280);
        assert!(Command::Terminate.wire_bytes() < assign.wire_bytes());
    }
}
