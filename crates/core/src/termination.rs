//! Global-termination detection, factored behind a trait.
//!
//! The paper's drivers all assume a *closed* seed set fixed at start, so
//! "done" is simply "the globally communicated streamline count hits zero"
//! (§4.1). A service taking live queries needs *open-loop* operation:
//! seeds keep arriving while earlier ones integrate. Timely dataflow's
//! progress-tracking model gives the right primitive — a frontier that
//! proves "no more work at or before epoch `e` can ever arrive" — and the
//! [`FrontierDetector`] here generalizes the closed-set count to per-epoch
//! accounting: work is *opened* when an ingest epoch delivers seeds,
//! *retired* as streamlines terminate, and an epoch is complete once the
//! frontier passes it (all its work retired and no earlier epoch open).
//!
//! Both implementations answer the same question through the same trait,
//! and on a closed workload (a single epoch, sealed at start) they make the
//! done-transition at exactly the same event — which is what keeps frontier
//! runs bit-identical to closed-set runs on closed seed sets.

use serde::{Deserialize, Serialize};

/// Which termination detector a run uses. `ClosedSet` is the paper's
/// behaviour and the default; `Frontier` adds per-epoch completion
/// tracking for open-loop ingestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DetectorKind {
    /// Single global outstanding-work counter (§4.1's communicated count).
    #[default]
    ClosedSet,
    /// Per-epoch outstanding counters plus a completion frontier.
    Frontier,
}

/// The common interface both detectors implement. All counts are in
/// streamlines; `now` is virtual time and only recorded (never branched on)
/// so closed-set and frontier runs stay schedule-identical.
pub trait TerminationDetector {
    /// `n` streamlines of ingest epoch `epoch` entered the system.
    fn open(&mut self, epoch: u32, n: u64);
    /// `n` streamlines of epoch `epoch` terminated at virtual time `now`.
    fn retire(&mut self, epoch: u32, n: u64, now: f64);
    /// No epoch beyond `n_epochs - 1` will ever arrive. Idempotent.
    fn seal(&mut self, n_epochs: u32);
    /// First epoch not yet known complete (== sealed epoch count once done).
    fn frontier(&self) -> u32;
    /// Streamlines opened but not yet retired, across all epochs.
    fn outstanding(&self) -> u64;
    /// Every epoch has been sealed, opened and fully retired.
    fn is_done(&self) -> bool;
}

/// The paper's detector: one global counter, no epoch structure.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClosedSetDetector {
    outstanding: u64,
    opened: u64,
    retired: u64,
    sealed: Option<u32>,
}

impl TerminationDetector for ClosedSetDetector {
    fn open(&mut self, _epoch: u32, n: u64) {
        self.outstanding += n;
        self.opened += n;
    }

    fn retire(&mut self, _epoch: u32, n: u64, _now: f64) {
        // Saturating, matching the pre-trait counter: resilient re-adoption
        // can double-report a termination and must not wrap.
        self.outstanding = self.outstanding.saturating_sub(n);
        self.retired += n;
    }

    fn seal(&mut self, n_epochs: u32) {
        self.sealed.get_or_insert(n_epochs);
    }

    fn frontier(&self) -> u32 {
        match self.sealed {
            Some(n) if self.outstanding == 0 => n,
            _ => 0,
        }
    }

    fn outstanding(&self) -> u64 {
        self.outstanding
    }

    fn is_done(&self) -> bool {
        self.sealed.is_some() && self.outstanding == 0
    }
}

/// Per-epoch accounting for one ingest epoch.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EpochLedger {
    /// Streamlines opened under this epoch.
    pub opened: u64,
    /// Streamlines of this epoch retired so far.
    pub retired: u64,
    /// Virtual time of the last retirement charged to this epoch.
    pub last_retire: f64,
    /// The epoch's ingest has been observed (even if it carried no seeds).
    /// The frontier cannot pass an undelivered epoch — work for it could
    /// still arrive.
    pub delivered: bool,
}

impl EpochLedger {
    pub fn outstanding(&self) -> u64 {
        self.opened.saturating_sub(self.retired)
    }
}

/// The frontier detector: outstanding work per ingest epoch, and the
/// completion frontier — the first epoch whose work (or any earlier
/// epoch's) is still outstanding or not yet sealed.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FrontierDetector {
    /// Ledger per epoch, indexed by epoch id (grown on demand).
    pub epochs: Vec<EpochLedger>,
    /// Total epoch count once sealed.
    sealed: Option<u32>,
    /// Virtual time each epoch's completion was detected, parallel to
    /// `epochs` once complete (NaN while incomplete).
    completed_at: Vec<f64>,
}

impl FrontierDetector {
    fn ledger(&mut self, epoch: u32) -> &mut EpochLedger {
        let idx = epoch as usize;
        if self.epochs.len() <= idx {
            self.epochs.resize_with(idx + 1, EpochLedger::default);
        }
        &mut self.epochs[idx]
    }

    /// Advance the recorded completion times up to the current frontier.
    fn sweep(&mut self, now: f64) {
        let f = self.frontier() as usize;
        while self.completed_at.len() < f {
            self.completed_at.push(now);
        }
    }

    /// Virtual time epoch `epoch` was detected complete, if it is.
    pub fn completed_at(&self, epoch: u32) -> Option<f64> {
        self.completed_at.get(epoch as usize).copied()
    }

    /// `(opened, retired, last_retire)` per epoch, for driver-level folding.
    pub fn ledgers(&self) -> &[EpochLedger] {
        &self.epochs
    }

    pub fn sealed_epochs(&self) -> Option<u32> {
        self.sealed
    }
}

impl TerminationDetector for FrontierDetector {
    fn open(&mut self, epoch: u32, n: u64) {
        let l = self.ledger(epoch);
        l.opened += n;
        l.delivered = true;
    }

    fn retire(&mut self, epoch: u32, n: u64, now: f64) {
        let l = self.ledger(epoch);
        l.retired = l.retired.saturating_add(n);
        // Same saturating discipline as the closed counter: resilient
        // re-adoption can double-report a termination; never let `retired`
        // run past `opened` once the epoch's size is known.
        if l.opened > 0 {
            l.retired = l.retired.min(l.opened);
        }
        l.last_retire = now;
        self.sweep(now);
    }

    fn seal(&mut self, n_epochs: u32) {
        if self.sealed.is_none() {
            self.sealed = Some(n_epochs);
            if self.epochs.len() < n_epochs as usize {
                self.epochs.resize_with(n_epochs as usize, EpochLedger::default);
            }
        }
    }

    fn frontier(&self) -> u32 {
        let Some(n) = self.sealed else { return 0 };
        let mut f = 0u32;
        while f < n {
            match self.epochs.get(f as usize) {
                Some(l) if l.delivered && l.outstanding() == 0 => f += 1,
                _ => break,
            }
        }
        f
    }

    fn outstanding(&self) -> u64 {
        self.epochs.iter().map(|l| l.outstanding()).sum()
    }

    fn is_done(&self) -> bool {
        self.sealed.is_some_and(|n| self.frontier() == n)
    }
}

/// A concrete, serializable detector — the enum drivers embed in their
/// snapshots (no trait objects on the checkpoint path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnyDetector {
    Closed(ClosedSetDetector),
    Frontier(FrontierDetector),
}

impl AnyDetector {
    pub fn new(kind: DetectorKind) -> Self {
        match kind {
            DetectorKind::ClosedSet => AnyDetector::Closed(ClosedSetDetector::default()),
            DetectorKind::Frontier => AnyDetector::Frontier(FrontierDetector::default()),
        }
    }

    /// Build a detector pre-opened and sealed over a known ingest plan:
    /// `epoch_totals[e]` streamlines in epoch `e`.
    pub fn sealed_over(kind: DetectorKind, epoch_totals: &[u64]) -> Self {
        let mut d = Self::new(kind);
        for (e, &n) in epoch_totals.iter().enumerate() {
            d.open(e as u32, n);
        }
        d.seal(epoch_totals.len() as u32);
        d
    }

    pub fn frontier_detector(&self) -> Option<&FrontierDetector> {
        match self {
            AnyDetector::Frontier(f) => Some(f),
            AnyDetector::Closed(_) => None,
        }
    }
}

impl TerminationDetector for AnyDetector {
    fn open(&mut self, epoch: u32, n: u64) {
        match self {
            AnyDetector::Closed(d) => d.open(epoch, n),
            AnyDetector::Frontier(d) => d.open(epoch, n),
        }
    }

    fn retire(&mut self, epoch: u32, n: u64, now: f64) {
        match self {
            AnyDetector::Closed(d) => d.retire(epoch, n, now),
            AnyDetector::Frontier(d) => d.retire(epoch, n, now),
        }
    }

    fn seal(&mut self, n_epochs: u32) {
        match self {
            AnyDetector::Closed(d) => d.seal(n_epochs),
            AnyDetector::Frontier(d) => d.seal(n_epochs),
        }
    }

    fn frontier(&self) -> u32 {
        match self {
            AnyDetector::Closed(d) => d.frontier(),
            AnyDetector::Frontier(d) => d.frontier(),
        }
    }

    fn outstanding(&self) -> u64 {
        match self {
            AnyDetector::Closed(d) => d.outstanding(),
            AnyDetector::Frontier(d) => d.outstanding(),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            AnyDetector::Closed(d) => d.is_done(),
            AnyDetector::Frontier(d) => d.is_done(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [AnyDetector; 2] {
        [AnyDetector::new(DetectorKind::ClosedSet), AnyDetector::new(DetectorKind::Frontier)]
    }

    #[test]
    fn closed_workload_transitions_identically() {
        for mut d in both() {
            d.open(0, 5);
            d.seal(1);
            assert!(!d.is_done());
            d.retire(0, 3, 1.0);
            assert!(!d.is_done());
            assert_eq!(d.outstanding(), 2);
            d.retire(0, 2, 2.0);
            assert!(d.is_done());
            assert_eq!(d.frontier(), 1);
        }
    }

    #[test]
    fn zero_seed_run_is_done_once_sealed() {
        for mut d in both() {
            assert!(!d.is_done(), "unsealed detector must not claim done");
            d.open(0, 0);
            d.seal(1);
            assert!(d.is_done(), "sealed empty workload is immediately done");
            assert_eq!(d.outstanding(), 0);
        }
    }

    #[test]
    fn frontier_advances_in_epoch_order() {
        let mut d = AnyDetector::new(DetectorKind::Frontier);
        d.open(0, 2);
        d.open(1, 1);
        d.open(2, 0); // an epoch can deliver zero seeds
        d.seal(3);
        assert_eq!(d.frontier(), 0);
        // Out-of-order completion: epoch 1 drains first, frontier holds.
        d.retire(1, 1, 1.0);
        assert_eq!(d.frontier(), 0);
        assert!(!d.is_done());
        d.retire(0, 2, 2.0);
        // Epoch 0 and 1 complete, empty epoch 2 is trivially complete.
        assert_eq!(d.frontier(), 3);
        assert!(d.is_done());
        let f = d.frontier_detector().unwrap();
        assert_eq!(f.completed_at(0), Some(2.0));
        assert_eq!(f.completed_at(1), Some(2.0), "held behind epoch 0");
        assert_eq!(f.completed_at(2), Some(2.0));
    }

    #[test]
    fn sealed_over_builds_a_complete_plan_view() {
        let d = AnyDetector::sealed_over(DetectorKind::Frontier, &[3, 0, 2]);
        assert_eq!(d.outstanding(), 5);
        assert!(!d.is_done());
        let mut d = d;
        d.retire(0, 3, 1.0);
        d.retire(2, 2, 4.0);
        assert!(d.is_done());
    }

    #[test]
    fn closed_retire_saturates() {
        let mut d = AnyDetector::new(DetectorKind::ClosedSet);
        d.open(0, 1);
        d.seal(1);
        d.retire(0, 1, 1.0);
        d.retire(0, 1, 2.0); // resilient double-report
        assert!(d.is_done());
        assert_eq!(d.outstanding(), 0);
    }

    #[test]
    fn detector_round_trips_through_serde() {
        let mut d = AnyDetector::new(DetectorKind::Frontier);
        d.open(0, 4);
        d.retire(0, 1, 0.5);
        d.seal(2);
        let json = serde_json::to_string(&d).unwrap();
        let back: AnyDetector = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
