//! Parallel streamline computation — a faithful implementation of
//! Pugmire, Childs, Garth, Ahern & Weber, *Scalable Computation of
//! Streamlines on Very Large Datasets* (SC 2009).
//!
//! Three parallelization strategies over block-decomposed vector fields:
//!
//! * [`static_alloc`] — **Static Allocation** (§4.1): parallelize over
//!   blocks; streamlines are communicated to block owners; minimal I/O.
//! * [`load_on_demand`] — **Load On Demand** (§4.2): parallelize over
//!   streamlines; blocks are LRU-cached per rank; zero communication.
//! * [`hybrid`] — **Hybrid Master/Slave** (§4.3, the paper's contribution):
//!   masters dynamically assign both streamlines and blocks through five
//!   rules, balancing computation, I/O and communication.
//! * [`steal`] — **Work Stealing** (beyond the paper): masterless peer-to-peer
//!   balancing over a lifeline graph with diffusive load reports and a
//!   Safra-style termination token.
//!
//! [`driver`] runs any of them on the deterministic simulated cluster (or
//! real threads) and produces a [`report::RunReport`] carrying the paper's
//! metrics; [`classify`] and [`advisor`] implement the §3.1 problem
//! classification and the §6 selection heuristics.
//!
//! ```
//! use streamline_core::{Algorithm, RunConfig, run_simulated};
//! use streamline_field::dataset::{Dataset, DatasetConfig, Seeding};
//!
//! let mut dcfg = DatasetConfig::tiny();
//! dcfg.blocks_per_axis = [2, 2, 2];
//! let dataset = Dataset::thermal_hydraulics(dcfg);
//! let seeds = dataset.seeds_with_count(Seeding::Sparse, 64);
//! let mut cfg = RunConfig::new(Algorithm::HybridMasterSlave, 4);
//! cfg.limits.max_steps = 200;
//! let report = run_simulated(&dataset, &seeds, &cfg);
//! assert_eq!(report.terminated, 64);
//! ```

pub mod advance;
pub mod advisor;
pub mod checkpoint;
pub mod classify;
pub mod config;
pub mod driver;
pub mod hybrid;
pub mod ingest;
pub mod load_on_demand;
pub mod msg;
pub mod report;
pub mod runstats;
pub mod static_alloc;
pub mod steal;
pub mod termination;
mod testutil;
pub mod workspace;

pub use advisor::{recommend, FlowKnowledge, Recommendation};
pub use checkpoint::{
    latest_checkpoint, resume_simulated_detailed_with_store,
    resume_simulated_open_detailed_with_store, run_simulated_checkpointed_with_store,
    run_simulated_open_checkpointed_with_store, CheckpointOptions, CheckpointedOutcome,
};
pub use classify::{classify, ProblemProfile};
pub use config::{
    Algorithm, BatchConfigError, BatchParams, CostModel, HybridParams, MemoryBudget, RankChaos,
    RunConfig, StealConfigError, StealParams,
};
pub use driver::{
    build_procs, run_simulated, run_simulated_detailed, run_simulated_detailed_with_store,
    run_simulated_open, run_simulated_open_detailed, run_simulated_open_detailed_with_store,
    run_simulated_open_traced, run_simulated_traced, run_simulated_with_store, run_threaded,
    AnyProc,
};
pub use ingest::{EpochMap, IngestEpoch, IngestError, SeedSource};
pub use msg::{Command, Msg, ReplicaMsg, SlaveStatus};
pub use report::{RunOutcome, RunReport};
pub use runstats::{summarize, StreamlineStats};
pub use static_alloc::StaticPartition;
pub use steal::{lifeline_neighbors, StealProc, StealSnapshot};
pub use termination::{
    AnyDetector, ClosedSetDetector, DetectorKind, FrontierDetector, TerminationDetector,
};
pub use workspace::{BlockExit, Workspace};
