//! Checkpoint/restart for the simulated drivers.
//!
//! A checkpoint is a crash-consistent, between-events cut of a run: the
//! scheduler state (clocks, metrics, undelivered events), every rank's
//! algorithm state (§4.1 static per-rank state and in-flight hand-offs,
//! §4.2 seed queues and LRU residency, §4.3 master assignment tables and
//! slave workloads), the partial trajectories, and — when the store injects
//! faults — the fault schedule position. Resuming from a checkpoint
//! completes **bit-identically** to the uninterrupted run: same streamline
//! geometry, same report, same virtual wall clock.
//!
//! The container format (magic, CRC-framed sections, typed errors) lives in
//! [`streamline_ckpt`]; this module defines the payloads and the drive/resume
//! entry points.

use crate::config::RunConfig;
use crate::driver::{
    apply_ingest_stats, build_arrivals, build_procs, build_procs_planned, collect_report,
    drain_finished, make_sim, AnyProc, IngestPlan,
};
use crate::ingest::SeedSource;
use crate::msg::Msg;
use crate::report::RunReport;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use streamline_ckpt::{write_atomic, CkptError, CkptFile, CkptWriter, Meta, KIND_RUN};
use streamline_desim::{CheckpointControl, Event, PendingEvent, ProcMetrics, SimState};
use streamline_field::dataset::Dataset;
use streamline_field::seeds::SeedSet;
use streamline_integrate::{StepLimits, Streamline};
use streamline_iosim::{BlockStore, FaultState};

/// Section tag: run spec (config + bit-exact step limits).
pub const SPEC_TAG: &str = "SPEC";
/// Section tag: scheduler state (clocks, metrics, pending events).
pub const SIM_TAG: &str = "SIMS";
/// Section tag: per-rank algorithm snapshots.
pub const RANK_TAG: &str = "RANK";
/// Section tag: fault-injection schedule position (optional).
pub const FAULT_TAG: &str = "FALT";

/// [`StepLimits`] + tolerances encoded as IEEE-754 bit patterns. The
/// defaults contain `f64::INFINITY`, which the JSON layer cannot round-trip
/// (non-finite → null); bits always can.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LimitsBits {
    pub max_steps: u64,
    pub max_arc_length: u64,
    pub max_time: u64,
    pub min_speed: u64,
    pub h0: u64,
    pub h_min: u64,
    pub h_max: u64,
    pub tol_abs: u64,
    pub tol_rel: u64,
}

impl LimitsBits {
    pub fn of(l: &StepLimits) -> Self {
        LimitsBits {
            max_steps: l.max_steps,
            max_arc_length: l.max_arc_length.to_bits(),
            max_time: l.max_time.to_bits(),
            min_speed: l.min_speed.to_bits(),
            h0: l.h0.to_bits(),
            h_min: l.h_min.to_bits(),
            h_max: l.h_max.to_bits(),
            tol_abs: l.tol.abs.to_bits(),
            tol_rel: l.tol.rel.to_bits(),
        }
    }
}

/// The ingest schedule of an open-loop run, encoded bit-exactly: each
/// epoch's arrival time as IEEE-754 bits plus its seed count. A resume must
/// rebuild the identical [`SeedSource`] schedule or it is rejected — the
/// undelivered arrival events ride the SIMS cut and replaying them against
/// a different schedule would silently diverge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestSpec {
    /// Arrival time of each epoch as `f64::to_bits` (epoch 0 is t = 0).
    pub arrival_bits: Vec<u64>,
    /// Seeds per epoch.
    pub epoch_totals: Vec<u64>,
}

impl IngestSpec {
    pub fn of(source: &SeedSource) -> Self {
        IngestSpec {
            arrival_bits: source.epoch_arrivals().iter().map(|t| t.to_bits()).collect(),
            epoch_totals: source.epoch_totals(),
        }
    }
}

/// The SPEC section: everything a resume must agree on. `RunConfig`'s serde
/// representation skips `limits` (non-finite defaults), so the bit-encoded
/// [`LimitsBits`] rides alongside. Open-loop runs also record their ingest
/// schedule; the field is skipped entirely on closed runs so closed SPEC
/// sections stay byte-identical to pre-ingestion snapshots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpecSection {
    pub config: RunConfig,
    pub limits: LimitsBits,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ingest: Option<IngestSpec>,
}

impl SpecSection {
    pub fn of(cfg: &RunConfig) -> Self {
        SpecSection { config: *cfg, limits: LimitsBits::of(&cfg.limits), ingest: None }
    }

    /// The SPEC of an open-loop run over `source`.
    pub fn open(cfg: &RunConfig, source: &SeedSource) -> Self {
        SpecSection {
            config: *cfg,
            limits: LimitsBits::of(&cfg.limits),
            ingest: Some(IngestSpec::of(source)),
        }
    }
}

/// Serializable [`Event`] image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventDto {
    Start,
    Message { from: usize, msg: Msg },
    Wake(u64),
}

impl EventDto {
    fn of(ev: &Event<Msg>) -> Self {
        match ev {
            Event::Start => EventDto::Start,
            Event::Message { from, msg } => EventDto::Message { from: *from, msg: msg.clone() },
            Event::Wake(token) => EventDto::Wake(*token),
        }
    }

    fn into_event(self) -> Event<Msg> {
        match self {
            EventDto::Start => Event::Start,
            EventDto::Message { from, msg } => Event::Message { from, msg },
            EventDto::Wake(token) => Event::Wake(token),
        }
    }
}

/// Serializable [`PendingEvent`] image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingDto {
    pub time: f64,
    pub seq: u64,
    pub to: usize,
    pub recv_cost: f64,
    pub recv_bytes: u64,
    pub ev: EventDto,
}

/// The SIMS section: a serializable [`SimState`] cut.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimStateDto {
    pub clocks: Vec<f64>,
    pub metrics: Vec<ProcMetrics>,
    pub next_seq: u64,
    pub events: u64,
    /// Rank deaths applied before the cut, `(rank, virtual time)` in
    /// application order. Absent in pre-rank-fault snapshots.
    #[serde(default)]
    pub dead: Vec<(usize, f64)>,
    /// Events dropped (dead target or dead sender) before the cut.
    #[serde(default)]
    pub dropped_events: u64,
    pub pending: Vec<PendingDto>,
}

impl SimStateDto {
    fn of(state: &SimState<Msg>) -> Self {
        SimStateDto {
            clocks: state.clocks.clone(),
            metrics: state.metrics.clone(),
            next_seq: state.next_seq,
            events: state.events,
            dead: state.dead.clone(),
            dropped_events: state.dropped_events,
            pending: state
                .pending
                .iter()
                .map(|p| PendingDto {
                    time: p.time,
                    seq: p.seq,
                    to: p.to,
                    recv_cost: p.recv_cost,
                    recv_bytes: p.recv_bytes,
                    ev: EventDto::of(&p.ev),
                })
                .collect(),
        }
    }

    fn into_state(self) -> SimState<Msg> {
        SimState {
            clocks: self.clocks,
            metrics: self.metrics,
            next_seq: self.next_seq,
            events: self.events,
            dead: self.dead,
            dropped_events: self.dropped_events,
            pending: self
                .pending
                .into_iter()
                .map(|p| PendingEvent {
                    time: p.time,
                    seq: p.seq,
                    to: p.to,
                    recv_cost: p.recv_cost,
                    recv_bytes: p.recv_bytes,
                    ev: p.ev.into_event(),
                })
                .collect(),
        }
    }
}

/// The RANK section: one entry per rank, in rank order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RankSnapshot {
    Static(crate::static_alloc::StaticSnapshot),
    Lod(crate::load_on_demand::LodSnapshot),
    Master(crate::hybrid::MasterSnapshot),
    Slave(crate::hybrid::SlaveSnapshot),
    Steal(crate::steal::StealSnapshot),
}

fn snapshot_rank(p: &AnyProc) -> RankSnapshot {
    match p {
        AnyProc::Static(p) => RankSnapshot::Static(p.snapshot()),
        AnyProc::Lod(p) => RankSnapshot::Lod(p.snapshot()),
        AnyProc::Master(p) => RankSnapshot::Master(p.snapshot()),
        AnyProc::Slave(p) => RankSnapshot::Slave(p.snapshot()),
        AnyProc::Steal(p) => RankSnapshot::Steal(p.snapshot()),
    }
}

fn restore_rank(rank: usize, p: &mut AnyProc, snap: &RankSnapshot) -> Result<(), CkptError> {
    let store_err =
        |e| CkptError::Mismatch(format!("rank {rank}: resident block reload failed: {e}"));
    match (p, snap) {
        (AnyProc::Static(p), RankSnapshot::Static(s)) => p.restore(s).map_err(store_err),
        (AnyProc::Lod(p), RankSnapshot::Lod(s)) => p.restore(s).map_err(store_err),
        (AnyProc::Master(p), RankSnapshot::Master(s)) => {
            p.restore(s);
            Ok(())
        }
        (AnyProc::Slave(p), RankSnapshot::Slave(s)) => p.restore(s).map_err(store_err),
        (AnyProc::Steal(p), RankSnapshot::Steal(s)) => p.restore(s).map_err(store_err),
        _ => Err(CkptError::Mismatch(format!(
            "rank {rank}: snapshot kind does not match the rebuilt rank — \
             the checkpoint belongs to a different configuration"
        ))),
    }
}

/// Encode one full run checkpoint into the container format.
#[allow(clippy::too_many_arguments)]
pub fn encode_run_checkpoint(
    dataset: &Dataset,
    seeds: &SeedSet,
    cfg: &RunConfig,
    source: Option<&SeedSource>,
    state: &SimState<Msg>,
    procs: &[AnyProc],
    store: &Arc<dyn BlockStore>,
    snapshot_seq: u64,
    interval: f64,
) -> Vec<u8> {
    let mut meta = Meta::new(KIND_RUN);
    meta.algorithm = cfg.algorithm.label().to_string();
    meta.n_procs = cfg.n_procs;
    meta.n_seeds = seeds.len();
    meta.dataset = dataset.name.to_string();
    meta.seeding = seeds.label.clone();
    meta.cache_blocks = cfg.cache_blocks;
    meta.interval = interval;
    meta.snapshot_seq = snapshot_seq;
    meta.taken_at = state.pending.first().map(|p| p.time).unwrap_or(0.0);

    let mut w = CkptWriter::new();
    w.section_value(streamline_ckpt::META_TAG, &meta);
    let spec = match source {
        Some(s) => SpecSection::open(cfg, s),
        None => SpecSection::of(cfg),
    };
    w.section_value(SPEC_TAG, &spec);
    w.section_value(SIM_TAG, &SimStateDto::of(state));
    let ranks: Vec<RankSnapshot> = procs.iter().map(snapshot_rank).collect();
    w.section_value(RANK_TAG, &ranks);
    if let Some(fs) = store.fault_state() {
        w.section_value(FAULT_TAG, &fs);
    }
    w.finish()
}

/// Where and how often to checkpoint a simulated run.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Directory receiving `ckpt-NNNNNN.ckpt` files (created if absent).
    pub dir: PathBuf,
    /// Virtual seconds between snapshots (must be positive and finite).
    pub interval: f64,
    /// Abandon the run right after writing this many snapshots — the
    /// kill-mid-run half of the crash/restart tests. `None` runs to
    /// completion.
    pub kill_after: Option<u64>,
}

impl CheckpointOptions {
    pub fn new(dir: impl Into<PathBuf>, interval: f64) -> Self {
        CheckpointOptions { dir: dir.into(), interval, kill_after: None }
    }
}

/// What a checkpointed run produced.
#[derive(Debug)]
pub struct CheckpointedOutcome {
    /// `None` when the run was abandoned by `kill_after` (a simulated
    /// crash); the report and streamlines then live only in the snapshots.
    pub result: Option<(RunReport, Vec<Streamline>)>,
    /// Snapshot files written, in order.
    pub checkpoints: Vec<PathBuf>,
    /// Total checkpoint bytes written (feeds `streamline_ckpt_*` metrics).
    pub bytes_written: u64,
}

/// [`crate::driver::run_simulated_detailed_with_store`] with periodic
/// checkpoints: before the first event at or past each `interval` boundary
/// of virtual time, a `ckpt-NNNNNN.ckpt` snapshot is written atomically to
/// `opts.dir`.
pub fn run_simulated_checkpointed_with_store(
    dataset: &Dataset,
    seeds: &SeedSet,
    cfg: &RunConfig,
    store: Arc<dyn BlockStore>,
    opts: &CheckpointOptions,
) -> Result<CheckpointedOutcome, CkptError> {
    std::fs::create_dir_all(&opts.dir)?;
    let procs = build_procs(dataset, seeds, cfg, Arc::clone(&store));
    let sim = make_sim(cfg, procs);

    let mut checkpoints: Vec<PathBuf> = Vec::new();
    let mut bytes_written = 0u64;
    let mut io_err: Option<CkptError> = None;
    let mut seq = 0u64;
    let mut hook = |state: &SimState<Msg>, procs: &[AnyProc]| {
        seq += 1;
        let bytes = encode_run_checkpoint(
            dataset,
            seeds,
            cfg,
            None,
            state,
            procs,
            &store,
            seq,
            opts.interval,
        );
        let path = opts.dir.join(format!("ckpt-{seq:06}.ckpt"));
        match write_atomic(&path, &bytes) {
            Ok(()) => {
                bytes_written += bytes.len() as u64;
                checkpoints.push(path);
            }
            Err(e) => {
                io_err = Some(e);
                return CheckpointControl::Stop;
            }
        }
        if opts.kill_after.is_some_and(|n| seq >= n) {
            CheckpointControl::Stop
        } else {
            CheckpointControl::Continue
        }
    };
    let (report, mut procs) = sim.run_checkpointed(opts.interval, &mut hook);
    if let Some(e) = io_err {
        return Err(e);
    }
    let result = report.map(|report| {
        let run_report = collect_report(dataset, seeds, cfg, report, &procs);
        let finished = drain_finished(seeds, cfg, &run_report.rank_deaths, &mut procs);
        (run_report, finished)
    });
    Ok(CheckpointedOutcome { result, checkpoints, bytes_written })
}

/// Verify `meta`/SPEC against the rebuilt run inputs; any disagreement is a
/// typed [`CkptError::Mismatch`], never a silent divergence.
fn verify_spec(
    file: &CkptFile,
    dataset: &Dataset,
    seeds: &SeedSet,
    cfg: &RunConfig,
    expected: &SpecSection,
) -> Result<Meta, CkptError> {
    let meta = file.meta()?;
    if meta.kind != KIND_RUN {
        return Err(CkptError::Mismatch(format!(
            "expected a {KIND_RUN} checkpoint, found kind {:?}",
            meta.kind
        )));
    }
    let checks = [
        ("algorithm", meta.algorithm.clone(), cfg.algorithm.label().to_string()),
        ("n_procs", meta.n_procs.to_string(), cfg.n_procs.to_string()),
        ("dataset", meta.dataset.clone(), dataset.name.to_string()),
        ("seeding", meta.seeding.clone(), seeds.label.clone()),
        ("n_seeds", meta.n_seeds.to_string(), seeds.len().to_string()),
    ];
    for (what, stored, current) in checks {
        if stored != current {
            return Err(CkptError::Mismatch(format!(
                "{what} mismatch: checkpoint has {stored:?}, this run has {current:?}"
            )));
        }
    }
    let stored: SpecSection = file.value(SPEC_TAG)?;
    let stored_json = serde_json::to_string(&stored).expect("vendored serde_json is infallible");
    let current_json = serde_json::to_string(expected).expect("vendored serde_json is infallible");
    if stored_json != current_json {
        return Err(CkptError::Mismatch(
            "run configuration differs from the checkpointed SPEC section \
             (config, limits or ingest schedule)"
                .into(),
        ));
    }
    Ok(meta)
}

/// Resume a run from `path` and drive it to completion. The dataset, seeds
/// and config must be rebuilt exactly as for the original run (the SPEC
/// section is verified). Returns the reconciled report — time and counters
/// accumulated across the crash — and the complete, sorted streamlines.
pub fn resume_simulated_detailed_with_store(
    dataset: &Dataset,
    seeds: &SeedSet,
    cfg: &RunConfig,
    store: Arc<dyn BlockStore>,
    path: &Path,
) -> Result<(RunReport, Vec<Streamline>), CkptError> {
    let file = CkptFile::read(path)?;
    verify_spec(&file, dataset, seeds, cfg, &SpecSection::of(cfg))?;
    let fault: Option<FaultState> = match file.section(FAULT_TAG) {
        Some(_) => Some(file.value(FAULT_TAG)?),
        None => None,
    };
    // First restore: transient-fault schedules must already be past their
    // consumed attempts, or the residency prefetch below would fail on
    // blocks the original run had successfully loaded.
    if let Some(fs) = &fault {
        store.restore_fault_state(fs);
    }
    let mut procs = build_procs(dataset, seeds, cfg, Arc::clone(&store));
    let ranks: Vec<RankSnapshot> = file.value(RANK_TAG)?;
    if ranks.len() != procs.len() {
        return Err(CkptError::Mismatch(format!(
            "checkpoint has {} rank snapshots, run builds {} ranks",
            ranks.len(),
            procs.len()
        )));
    }
    for (rank, (p, snap)) in procs.iter_mut().zip(&ranks).enumerate() {
        restore_rank(rank, p, snap)?;
    }
    // Second restore: the prefetch consumed attempts/served counters; put
    // the fault bookkeeping back to the exact snapshotted values.
    if let Some(fs) = &fault {
        store.restore_fault_state(fs);
    }
    let state = file.value::<SimStateDto>(SIM_TAG)?.into_state();
    if state.clocks.len() != cfg.n_procs {
        return Err(CkptError::Mismatch(format!(
            "scheduler cut covers {} ranks, run has {}",
            state.clocks.len(),
            cfg.n_procs
        )));
    }
    // Re-attach the full death schedule: deaths the snapshot already applied
    // are restored from the cut (and skipped idempotently by the scheduler),
    // deaths scheduled past the cut still fire at their original times.
    let sim = make_sim(cfg, procs);
    let (report, mut procs) = sim.resume(state);
    let run_report = collect_report(dataset, seeds, cfg, report, &procs);
    let finished = drain_finished(seeds, cfg, &run_report.rank_deaths, &mut procs);
    Ok((run_report, finished))
}

/// [`crate::driver::run_simulated_open_detailed_with_store`] with periodic
/// checkpoints. The arrival schedule is seeded into the event queue up
/// front, so a cut taken mid-stream carries every undelivered ingest event
/// in its SIMS section; the SPEC section records the schedule bit-exactly
/// so a resume under a different schedule is rejected.
pub fn run_simulated_open_checkpointed_with_store(
    dataset: &Dataset,
    source: &SeedSource,
    cfg: &RunConfig,
    store: Arc<dyn BlockStore>,
    opts: &CheckpointOptions,
) -> Result<CheckpointedOutcome, CkptError> {
    std::fs::create_dir_all(&opts.dir)?;
    let all = source.all_seeds();
    let base = source.base();
    let plan = IngestPlan::of(source);
    let procs = build_procs_planned(dataset, &base, cfg, Arc::clone(&store), &plan);
    let arrivals = build_arrivals(dataset, source, cfg);
    let sim = make_sim(cfg, procs).with_arrivals(arrivals);

    let mut checkpoints: Vec<PathBuf> = Vec::new();
    let mut bytes_written = 0u64;
    let mut io_err: Option<CkptError> = None;
    let mut seq = 0u64;
    let mut hook = |state: &SimState<Msg>, procs: &[AnyProc]| {
        seq += 1;
        let bytes = encode_run_checkpoint(
            dataset,
            &all,
            cfg,
            Some(source),
            state,
            procs,
            &store,
            seq,
            opts.interval,
        );
        let path = opts.dir.join(format!("ckpt-{seq:06}.ckpt"));
        match write_atomic(&path, &bytes) {
            Ok(()) => {
                bytes_written += bytes.len() as u64;
                checkpoints.push(path);
            }
            Err(e) => {
                io_err = Some(e);
                return CheckpointControl::Stop;
            }
        }
        if opts.kill_after.is_some_and(|n| seq >= n) {
            CheckpointControl::Stop
        } else {
            CheckpointControl::Continue
        }
    };
    let (report, mut procs) = sim.run_checkpointed(opts.interval, &mut hook);
    if let Some(e) = io_err {
        return Err(e);
    }
    let result = report.map(|report| {
        let mut run_report = collect_report(dataset, &all, cfg, report, &procs);
        apply_ingest_stats(&mut run_report, source, &procs);
        let finished = drain_finished(&all, cfg, &run_report.rank_deaths, &mut procs);
        (run_report, finished)
    });
    Ok(CheckpointedOutcome { result, checkpoints, bytes_written })
}

/// Resume an open-loop run from `path` and drive it to completion. The
/// identical [`SeedSource`] must be rebuilt (the SPEC section verifies the
/// arrival schedule bit-exactly). Arrival events are **not** re-injected —
/// the undelivered ones ride the snapshotted event queue, so a mid-stream
/// resume delivers exactly the epochs the original run had not yet seen.
pub fn resume_simulated_open_detailed_with_store(
    dataset: &Dataset,
    source: &SeedSource,
    cfg: &RunConfig,
    store: Arc<dyn BlockStore>,
    path: &Path,
) -> Result<(RunReport, Vec<Streamline>), CkptError> {
    let file = CkptFile::read(path)?;
    let all = source.all_seeds();
    verify_spec(&file, dataset, &all, cfg, &SpecSection::open(cfg, source))?;
    let fault: Option<FaultState> = match file.section(FAULT_TAG) {
        Some(_) => Some(file.value(FAULT_TAG)?),
        None => None,
    };
    if let Some(fs) = &fault {
        store.restore_fault_state(fs);
    }
    let base = source.base();
    let plan = IngestPlan::of(source);
    let mut procs = build_procs_planned(dataset, &base, cfg, Arc::clone(&store), &plan);
    let ranks: Vec<RankSnapshot> = file.value(RANK_TAG)?;
    if ranks.len() != procs.len() {
        return Err(CkptError::Mismatch(format!(
            "checkpoint has {} rank snapshots, run builds {} ranks",
            ranks.len(),
            procs.len()
        )));
    }
    for (rank, (p, snap)) in procs.iter_mut().zip(&ranks).enumerate() {
        restore_rank(rank, p, snap)?;
    }
    if let Some(fs) = &fault {
        store.restore_fault_state(fs);
    }
    let state = file.value::<SimStateDto>(SIM_TAG)?.into_state();
    if state.clocks.len() != cfg.n_procs {
        return Err(CkptError::Mismatch(format!(
            "scheduler cut covers {} ranks, run has {}",
            state.clocks.len(),
            cfg.n_procs
        )));
    }
    let sim = make_sim(cfg, procs);
    let (report, mut procs) = sim.resume(state);
    let mut run_report = collect_report(dataset, &all, cfg, report, &procs);
    apply_ingest_stats(&mut run_report, source, &procs);
    let finished = drain_finished(&all, cfg, &run_report.rank_deaths, &mut procs);
    Ok((run_report, finished))
}

/// The newest (highest-ordinal) checkpoint file in `dir`, if any.
pub fn latest_checkpoint(dir: &Path) -> Result<Option<PathBuf>, CkptError> {
    let mut best: Option<PathBuf> = None;
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("ckpt-") && name.ends_with(".ckpt") && best.as_ref() < Some(&path) {
            best = Some(path);
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, MemoryBudget};
    use crate::driver::run_simulated_detailed_with_store;
    use streamline_field::dataset::{DatasetConfig, Seeding};
    use streamline_field::BlockId;
    use streamline_iosim::{FaultPlan, FaultStore, FieldStore};

    fn fixture(algorithm: Algorithm) -> (Dataset, SeedSet, RunConfig) {
        let mut dcfg = DatasetConfig::tiny();
        dcfg.blocks_per_axis = [2, 2, 2];
        dcfg.cells_per_block = [6, 6, 6];
        let ds = Dataset::thermal_hydraulics(dcfg);
        let seeds = ds.seeds_with_count(Seeding::Sparse, 27);
        let mut cfg = RunConfig::new(algorithm, 4);
        cfg.limits.max_steps = 300;
        cfg.memory = MemoryBudget::unlimited();
        (ds, seeds, cfg)
    }

    fn field_store(ds: &Dataset) -> Arc<dyn BlockStore> {
        Arc::new(FieldStore::new(ds.clone()))
    }

    fn report_json(r: &RunReport) -> String {
        serde_json::to_string(r).expect("report serializes")
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("slckpt-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Kill each algorithm mid-run at the latest checkpoint, resume, and
    /// demand byte-equal streamlines and a byte-equal report vs. the
    /// uninterrupted reference — the subsystem's core invariant.
    #[test]
    fn kill_and_resume_is_bit_identical_for_every_algorithm() {
        for algo in Algorithm::ALL {
            let (ds, seeds, cfg) = fixture(algo);
            let (ref_report, ref_lines) =
                run_simulated_detailed_with_store(&ds, &seeds, &cfg, field_store(&ds));

            let dir = tempdir(&format!("kill-{}", cfg.algorithm.label()));
            let mut opts = CheckpointOptions::new(&dir, 2.0e-4);
            opts.kill_after = Some(2);
            let out =
                run_simulated_checkpointed_with_store(&ds, &seeds, &cfg, field_store(&ds), &opts)
                    .expect("checkpointed run");
            assert!(out.result.is_none(), "{algo:?}: kill_after must abandon the run");
            assert_eq!(out.checkpoints.len(), 2, "{algo:?}");
            assert!(out.bytes_written > 0);

            let latest = latest_checkpoint(&dir).unwrap().expect("snapshots on disk");
            assert_eq!(Some(&latest), out.checkpoints.last());
            let (res_report, res_lines) =
                resume_simulated_detailed_with_store(&ds, &seeds, &cfg, field_store(&ds), &latest)
                    .expect("resume");

            assert_eq!(res_lines, ref_lines, "{algo:?}: streamlines diverged after resume");
            assert_eq!(
                report_json(&res_report),
                report_json(&ref_report),
                "{algo:?}: report not reconciled bit-identically"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// A checkpointed run that is never killed must be unperturbed by the
    /// snapshot machinery: identical output and report to a plain run.
    #[test]
    fn checkpointing_does_not_perturb_a_completed_run() {
        let (ds, seeds, cfg) = fixture(Algorithm::HybridMasterSlave);
        let (ref_report, ref_lines) =
            run_simulated_detailed_with_store(&ds, &seeds, &cfg, field_store(&ds));

        let dir = tempdir("noperturb");
        let opts = CheckpointOptions::new(&dir, 1.0e-3);
        let out = run_simulated_checkpointed_with_store(&ds, &seeds, &cfg, field_store(&ds), &opts)
            .expect("checkpointed run");
        let (report, lines) = out.result.expect("uninterrupted run completes");
        assert!(!out.checkpoints.is_empty(), "interval must have fired at least once");
        assert_eq!(lines, ref_lines);
        assert_eq!(report_json(&report), report_json(&ref_report));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Resume must also be exact when the store injects transient faults:
    /// the fault schedule position is checkpointed and restored.
    #[test]
    fn kill_and_resume_is_bit_identical_under_injected_faults() {
        let (ds, seeds, mut cfg) = fixture(Algorithm::LoadOnDemand);
        cfg.cache_blocks = 2;
        let plan = || FaultPlan::new().transient(BlockId(1), 2).transient(BlockId(5), 1);
        let faulty = |ds: &Dataset| -> Arc<dyn BlockStore> {
            Arc::new(FaultStore::new(field_store(ds), plan()))
        };

        let (ref_report, ref_lines) =
            run_simulated_detailed_with_store(&ds, &seeds, &cfg, faulty(&ds));
        assert!(ref_report.load_retries > 0, "fixture must actually exercise retries");

        let dir = tempdir("faulty");
        let mut opts = CheckpointOptions::new(&dir, 2.0e-4);
        opts.kill_after = Some(2);
        let out = run_simulated_checkpointed_with_store(&ds, &seeds, &cfg, faulty(&ds), &opts)
            .expect("checkpointed run");
        let latest = latest_checkpoint(&dir).unwrap().expect("snapshots on disk");
        assert!(out.result.is_none());

        let (res_report, res_lines) =
            resume_simulated_detailed_with_store(&ds, &seeds, &cfg, faulty(&ds), &latest)
                .expect("resume over fault store");
        assert_eq!(res_lines, ref_lines);
        assert_eq!(report_json(&res_report), report_json(&ref_report));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Resuming under a different configuration is a typed error, never a
    /// silently wrong run.
    #[test]
    fn resume_rejects_a_mismatched_spec() {
        let (ds, seeds, cfg) = fixture(Algorithm::StaticAllocation);
        let dir = tempdir("mismatch");
        let mut opts = CheckpointOptions::new(&dir, 2.0e-4);
        opts.kill_after = Some(1);
        run_simulated_checkpointed_with_store(&ds, &seeds, &cfg, field_store(&ds), &opts)
            .expect("checkpointed run");
        let latest = latest_checkpoint(&dir).unwrap().expect("snapshot on disk");

        let mut other = cfg;
        other.n_procs = 3;
        let err =
            resume_simulated_detailed_with_store(&ds, &seeds, &other, field_store(&ds), &latest)
                .expect_err("mismatched n_procs must be rejected");
        assert!(matches!(err, CkptError::Mismatch(_)), "{err:?}");

        let mut other = cfg;
        other.algorithm = Algorithm::LoadOnDemand;
        let err =
            resume_simulated_detailed_with_store(&ds, &seeds, &other, field_store(&ds), &latest)
                .expect_err("mismatched algorithm must be rejected");
        assert!(matches!(err, CkptError::Mismatch(_)), "{err:?}");

        let mut other = cfg;
        other.limits.max_steps = 299;
        let err =
            resume_simulated_detailed_with_store(&ds, &seeds, &other, field_store(&ds), &latest)
                .expect_err("mismatched limits must be rejected");
        assert!(matches!(err, CkptError::Mismatch(_)), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Killing a run between batched advance calls and resuming must be
    /// bit-identical for every driver when the batch kernel is on with an
    /// odd lane count (partial chunks in flight at snapshot time). The
    /// snapshot captures per-streamline state only — the batch scratch is
    /// rebuilt on resume — so the answer must not depend on where in the
    /// batch drain the kill landed.
    #[test]
    fn kill_and_resume_mid_batch_is_bit_identical() {
        for algo in Algorithm::ALL {
            let (ds, seeds, mut cfg) = fixture(algo);
            cfg.batch.lanes = Some(5);
            let (ref_report, ref_lines) =
                run_simulated_detailed_with_store(&ds, &seeds, &cfg, field_store(&ds));

            let dir = tempdir(&format!("midbatch-{}", cfg.algorithm.label()));
            let mut opts = CheckpointOptions::new(&dir, 2.0e-4);
            opts.kill_after = Some(2);
            let out =
                run_simulated_checkpointed_with_store(&ds, &seeds, &cfg, field_store(&ds), &opts)
                    .expect("checkpointed run");
            assert!(out.result.is_none(), "{algo:?}: kill_after must abandon the run");

            let latest = latest_checkpoint(&dir).unwrap().expect("snapshots on disk");
            let (res_report, res_lines) =
                resume_simulated_detailed_with_store(&ds, &seeds, &cfg, field_store(&ds), &latest)
                    .expect("resume");
            assert_eq!(res_lines, ref_lines, "{algo:?}: streamlines diverged after resume");
            assert_eq!(report_json(&res_report), report_json(&ref_report), "{algo:?}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// The batch knob is part of the run spec: resuming a checkpoint under a
    /// different batch size is a typed [`CkptError::Mismatch`], exactly like
    /// a changed algorithm or step limit. (Batch size never changes results,
    /// but a resume that silently reinterprets the knob would hide operator
    /// error — the spec comparison is deliberately strict.)
    #[test]
    fn resume_rejects_a_mismatched_batch_knob() {
        let (ds, seeds, mut cfg) = fixture(Algorithm::HybridMasterSlave);
        cfg.batch.lanes = Some(16);
        let dir = tempdir("batch-mismatch");
        let mut opts = CheckpointOptions::new(&dir, 2.0e-4);
        opts.kill_after = Some(1);
        run_simulated_checkpointed_with_store(&ds, &seeds, &cfg, field_store(&ds), &opts)
            .expect("checkpointed run");
        let latest = latest_checkpoint(&dir).unwrap().expect("snapshot on disk");

        let mut other = cfg;
        other.batch.lanes = Some(8);
        let err =
            resume_simulated_detailed_with_store(&ds, &seeds, &other, field_store(&ds), &latest)
                .expect_err("mismatched batch size must be rejected");
        assert!(matches!(err, CkptError::Mismatch(_)), "{err:?}");

        let mut other = cfg;
        other.batch.lanes = None;
        let err =
            resume_simulated_detailed_with_store(&ds, &seeds, &other, field_store(&ds), &latest)
                .expect_err("explicit-vs-auto batch must be rejected");
        assert!(matches!(err, CkptError::Mismatch(_)), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Crash/restart under rank fail-stop faults: the snapshot records the
    /// dead-rank set, and resuming completes byte-identically to the
    /// uninterrupted faulty run — same survivors, same `RankLost` set, same
    /// report — for every driver.
    #[test]
    fn kill_and_resume_is_bit_identical_under_rank_chaos() {
        for algo in Algorithm::ALL {
            let (ds, seeds, mut cfg) = fixture(algo);
            // Rank 3 (a worker under every algorithm) dies at t = 1e-4, well
            // before the second snapshot — the cut must carry the death.
            cfg.rank_chaos = Some(crate::config::RankChaos::one_kill(3, 1.0e-4));
            let (ref_report, ref_lines) =
                run_simulated_detailed_with_store(&ds, &seeds, &cfg, field_store(&ds));
            assert_eq!(ref_report.rank_deaths, vec![(3, 1.0e-4)], "{algo:?}");

            let dir = tempdir(&format!("rankchaos-{}", cfg.algorithm.label()));
            let mut opts = CheckpointOptions::new(&dir, 2.0e-4);
            opts.kill_after = Some(2);
            let out =
                run_simulated_checkpointed_with_store(&ds, &seeds, &cfg, field_store(&ds), &opts)
                    .expect("checkpointed run");
            assert!(out.result.is_none(), "{algo:?}: kill_after must abandon the run");

            let latest = latest_checkpoint(&dir).unwrap().expect("snapshots on disk");
            let file = CkptFile::read(&latest).expect("readable snapshot");
            let state: SimStateDto = file.value(SIM_TAG).expect("SIMS section");
            assert_eq!(state.dead, vec![(3, 1.0e-4)], "{algo:?}: snapshot must record the death");

            let (res_report, res_lines) =
                resume_simulated_detailed_with_store(&ds, &seeds, &cfg, field_store(&ds), &latest)
                    .expect("resume under rank chaos");
            assert_eq!(res_lines, ref_lines, "{algo:?}: streamlines diverged after resume");
            assert_eq!(report_json(&res_report), report_json(&ref_report), "{algo:?}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    fn open_fixture(algorithm: Algorithm) -> (Dataset, SeedSource, RunConfig) {
        let (ds, _, cfg) = fixture(algorithm);
        // Two arrival epochs: the first lands before the earliest snapshot,
        // the second is still undelivered at a kill_after=2 cut (interval
        // 2e-4 ⇒ cut near t = 4e-4) — a genuinely mid-stream crash.
        let more = ds.seeds_with_count(Seeding::Dense, 10);
        let source = SeedSource::new(
            &ds.seeds_with_count(Seeding::Sparse, 17),
            vec![(1.0e-4, more.points[..5].to_vec()), (5.0e-4, more.points[5..].to_vec())],
        )
        .unwrap();
        (ds, source, cfg)
    }

    /// Mid-stream crash/restart of an open-loop run: kill each algorithm
    /// with an arrival epoch still undelivered, resume, and demand
    /// byte-equal streamlines and report vs. the uninterrupted open run.
    #[test]
    fn open_loop_kill_and_resume_is_bit_identical_for_every_algorithm() {
        use crate::driver::run_simulated_open_detailed_with_store;
        use crate::termination::DetectorKind;
        for algo in Algorithm::ALL {
            for kind in [DetectorKind::ClosedSet, DetectorKind::Frontier] {
                let (ds, source, mut cfg) = open_fixture(algo);
                cfg.detector = kind;
                let (ref_report, ref_lines) =
                    run_simulated_open_detailed_with_store(&ds, &source, &cfg, field_store(&ds));
                assert_eq!(ref_report.terminated, source.total_seeds() as u64, "{algo:?}");

                let dir = tempdir(&format!("open-{}-{kind:?}", cfg.algorithm.label()));
                let mut opts = CheckpointOptions::new(&dir, 2.0e-4);
                opts.kill_after = Some(2);
                let out = run_simulated_open_checkpointed_with_store(
                    &ds,
                    &source,
                    &cfg,
                    field_store(&ds),
                    &opts,
                )
                .expect("open checkpointed run");
                assert!(out.result.is_none(), "{algo:?}: kill_after must abandon the run");

                // Resume from every snapshot; at least one cut must be
                // genuinely mid-stream (an arrival epoch still undelivered
                // in the snapshotted event queue).
                let mut mid_stream_cuts = 0usize;
                for snap in &out.checkpoints {
                    let file = CkptFile::read(snap).expect("readable snapshot");
                    let state: SimStateDto = file.value(SIM_TAG).expect("SIMS section");
                    mid_stream_cuts += usize::from(state.pending.iter().any(|p| {
                        matches!(&p.ev, EventDto::Message { msg: Msg::Ingest { .. }, .. })
                    }));
                    let (res_report, res_lines) = resume_simulated_open_detailed_with_store(
                        &ds,
                        &source,
                        &cfg,
                        field_store(&ds),
                        snap,
                    )
                    .expect("open resume");
                    assert_eq!(res_lines, ref_lines, "{algo:?}/{kind:?}: streamlines diverged");
                    assert_eq!(
                        report_json(&res_report),
                        report_json(&ref_report),
                        "{algo:?}/{kind:?}: report not reconciled bit-identically"
                    );
                }
                assert!(
                    mid_stream_cuts > 0,
                    "{algo:?}: some cut must carry undelivered arrival events"
                );
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }

    /// Resuming an open checkpoint under a different arrival schedule (or
    /// through the closed entry point) is a typed mismatch, never a
    /// silently diverging run.
    #[test]
    fn open_resume_rejects_a_mismatched_ingest_schedule() {
        let (ds, source, cfg) = open_fixture(Algorithm::LoadOnDemand);
        let dir = tempdir("open-mismatch");
        let mut opts = CheckpointOptions::new(&dir, 2.0e-4);
        opts.kill_after = Some(1);
        run_simulated_open_checkpointed_with_store(&ds, &source, &cfg, field_store(&ds), &opts)
            .expect("open checkpointed run");
        let latest = latest_checkpoint(&dir).unwrap().expect("snapshot on disk");

        // Same seeds, one arrival nudged: bit-exact schedule check fires.
        let more = ds.seeds_with_count(Seeding::Dense, 10);
        let shifted = SeedSource::new(
            &ds.seeds_with_count(Seeding::Sparse, 17),
            vec![(1.0e-4, more.points[..5].to_vec()), (6.0e-4, more.points[5..].to_vec())],
        )
        .unwrap();
        let err = resume_simulated_open_detailed_with_store(
            &ds,
            &shifted,
            &cfg,
            field_store(&ds),
            &latest,
        )
        .expect_err("shifted arrival schedule must be rejected");
        assert!(matches!(err, CkptError::Mismatch(_)), "{err:?}");

        // The closed resume path must reject an open snapshot outright.
        let all = source.all_seeds();
        let err = resume_simulated_detailed_with_store(&ds, &all, &cfg, field_store(&ds), &latest)
            .expect_err("closed resume of an open snapshot must be rejected");
        assert!(matches!(err, CkptError::Mismatch(_)), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Snapshots taken at different points of the same run must all resume
    /// to the same final answer (any checkpoint is a valid restart point).
    #[test]
    fn every_snapshot_of_a_run_resumes_to_the_same_answer() {
        let (ds, seeds, cfg) = fixture(Algorithm::StaticAllocation);
        let (ref_report, ref_lines) =
            run_simulated_detailed_with_store(&ds, &seeds, &cfg, field_store(&ds));

        let dir = tempdir("allsnaps");
        let opts = CheckpointOptions::new(&dir, 3.0e-4);
        let out = run_simulated_checkpointed_with_store(&ds, &seeds, &cfg, field_store(&ds), &opts)
            .expect("checkpointed run");
        assert!(out.checkpoints.len() >= 2, "want several snapshots to replay");
        for snap in &out.checkpoints {
            let (r, lines) =
                resume_simulated_detailed_with_store(&ds, &seeds, &cfg, field_store(&ds), snap)
                    .expect("resume");
            assert_eq!(lines, ref_lines, "{snap:?}");
            assert_eq!(report_json(&r), report_json(&ref_report), "{snap:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
