//! The run driver: build ranks for an algorithm, execute on the simulated
//! cluster (or real threads), and collect a [`RunReport`].

use crate::config::{Algorithm, RunConfig};
use crate::hybrid::{HybridLayout, MasterProc, SlaveProc};
use crate::ingest::{EpochMap, SeedSource};
use crate::load_on_demand::LodProc;
use crate::msg::Msg;
use crate::report::{RunOutcome, RunReport};
use crate::static_alloc::StaticProc;
use crate::steal::StealProc;
use crate::termination::FrontierDetector;
use crate::workspace::Workspace;
use std::sync::Arc;
use streamline_desim::{Context, Event, Process, Simulation, ThreadRuntime};
use streamline_field::dataset::Dataset;
use streamline_field::seeds::SeedSet;
use streamline_integrate::StreamlineId;
use streamline_iosim::{BlockStore, CacheStats, FieldStore};
use streamline_math::Vec3;

/// A rank of any of the four algorithms (the simulation is monomorphic in
/// its process type).
pub enum AnyProc {
    Static(StaticProc),
    Lod(LodProc),
    Master(MasterProc),
    Slave(SlaveProc),
    Steal(StealProc),
}

impl Process<Msg> for AnyProc {
    fn on_event(&mut self, ev: Event<Msg>, ctx: &mut dyn Context<Msg>) {
        match self {
            AnyProc::Static(p) => p.on_event(ev, ctx),
            AnyProc::Lod(p) => p.on_event(ev, ctx),
            AnyProc::Master(p) => p.on_event(ev, ctx),
            AnyProc::Slave(p) => p.on_event(ev, ctx),
            AnyProc::Steal(p) => p.on_event(ev, ctx),
        }
    }
}

impl AnyProc {
    fn cache_stats(&self) -> Option<CacheStats> {
        match self {
            AnyProc::Static(p) => Some(p.workspace().cache_stats()),
            AnyProc::Lod(p) => Some(p.workspace().cache_stats()),
            AnyProc::Slave(p) => Some(p.workspace().cache_stats()),
            AnyProc::Steal(p) => Some(p.workspace().cache_stats()),
            AnyProc::Master(_) => None,
        }
    }

    fn terminated(&self) -> u64 {
        match self {
            AnyProc::Static(p) => p.workspace().terminated,
            AnyProc::Lod(p) => p.workspace().terminated,
            AnyProc::Slave(p) => p.workspace().terminated,
            AnyProc::Steal(p) => p.workspace().terminated,
            AnyProc::Master(_) => 0,
        }
    }

    fn total_steps(&self) -> u64 {
        match self {
            AnyProc::Static(p) => p.workspace().total_steps,
            AnyProc::Lod(p) => p.workspace().total_steps,
            AnyProc::Slave(p) => p.workspace().total_steps,
            AnyProc::Steal(p) => p.workspace().total_steps,
            AnyProc::Master(_) => 0,
        }
    }

    /// Cell-sampler `(hits, misses)` accumulated by this rank's workspace.
    fn sampler_counters(&self) -> (u64, u64) {
        match self {
            AnyProc::Static(p) => (p.workspace().sampler_hits, p.workspace().sampler_misses),
            AnyProc::Lod(p) => (p.workspace().sampler_hits, p.workspace().sampler_misses),
            AnyProc::Slave(p) => (p.workspace().sampler_hits, p.workspace().sampler_misses),
            AnyProc::Steal(p) => (p.workspace().sampler_hits, p.workspace().sampler_misses),
            AnyProc::Master(_) => (0, 0),
        }
    }

    /// Batch-kernel counters `(batched_lanes, batch_calls)` accumulated by
    /// this rank's workspace.
    fn batch_counters(&self) -> (u64, u64) {
        match self {
            AnyProc::Static(p) => (p.workspace().batched_lanes, p.workspace().batch_calls),
            AnyProc::Lod(p) => (p.workspace().batched_lanes, p.workspace().batch_calls),
            AnyProc::Slave(p) => (p.workspace().batched_lanes, p.workspace().batch_calls),
            AnyProc::Steal(p) => (p.workspace().batched_lanes, p.workspace().batch_calls),
            AnyProc::Master(_) => (0, 0),
        }
    }

    /// Resilience counters `(load_retries, load_failures, unavailable)` from
    /// this rank's workspace; masters contribute their quarantined pool
    /// seeds as unavailable terminations.
    fn resilience_counters(&self) -> (u64, u64, u64) {
        match self {
            AnyProc::Static(p) => {
                let ws = p.workspace();
                (ws.load_retries, ws.load_failures, ws.unavailable)
            }
            AnyProc::Lod(p) => {
                let ws = p.workspace();
                (ws.load_retries, ws.load_failures, ws.unavailable)
            }
            AnyProc::Slave(p) => {
                let ws = p.workspace();
                (ws.load_retries, ws.load_failures, ws.unavailable)
            }
            AnyProc::Steal(p) => {
                let ws = p.workspace();
                (ws.load_retries, ws.load_failures, ws.unavailable)
            }
            AnyProc::Master(p) => (0, 0, p.unavailable_seeds()),
        }
    }

    fn failed_oom(&self) -> bool {
        match self {
            AnyProc::Static(p) => p.failed_oom,
            AnyProc::Lod(p) => p.failed_oom,
            AnyProc::Slave(p) => p.failed_oom,
            AnyProc::Steal(p) => p.failed_oom,
            AnyProc::Master(_) => false,
        }
    }

    /// Thread-runtime retirement: Load On Demand and Work Stealing ranks
    /// know when they are finished; the other algorithms end via `stop_all`.
    fn retired(&self) -> bool {
        match self {
            AnyProc::Lod(p) => p.done,
            AnyProc::Steal(p) => p.done,
            _ => false,
        }
    }

    /// Drain the finished streamlines this rank holds.
    pub fn take_finished(&mut self) -> Vec<streamline_integrate::Streamline> {
        match self {
            AnyProc::Static(p) => std::mem::take(&mut p.finished),
            AnyProc::Lod(p) => std::mem::take(&mut p.finished),
            AnyProc::Slave(p) => std::mem::take(&mut p.finished),
            AnyProc::Steal(p) => std::mem::take(&mut p.finished),
            AnyProc::Master(_) => Vec::new(),
        }
    }

    /// Borrow the finished streamlines this rank holds (dead ranks keep
    /// theirs to the end of the run — fail-stop loses in-flight state, not
    /// durable completions).
    fn finished_ref(&self) -> &[streamline_integrate::Streamline] {
        match self {
            AnyProc::Static(p) => &p.finished,
            AnyProc::Lod(p) => &p.finished,
            AnyProc::Slave(p) => &p.finished,
            AnyProc::Steal(p) => &p.finished,
            AnyProc::Master(_) => &[],
        }
    }

    /// `(rank, virtual time)` of deaths this rank's own failure detector
    /// observed.
    fn suspected_at(&self) -> &[(usize, f64)] {
        match self {
            AnyProc::Static(p) => p.suspected_at(),
            AnyProc::Lod(p) => p.suspected_at(),
            AnyProc::Slave(p) => p.suspected_at(),
            AnyProc::Steal(p) => p.suspected_at(),
            AnyProc::Master(p) => p.suspected_at(),
        }
    }

    /// This rank's per-epoch frontier ledger, when the run uses the
    /// frontier detector. Masters hold no ledger (slaves do the
    /// integration); on Static Allocation only the count rank's ledger is
    /// ever written, so summing over all ranks stays correct.
    fn frontier_ledgers(&self) -> Option<&FrontierDetector> {
        match self {
            AnyProc::Static(p) => p.detector().frontier_detector(),
            AnyProc::Lod(p) => p.detector().frontier_detector(),
            AnyProc::Slave(p) => p.detector().frontier_detector(),
            AnyProc::Steal(p) => p.detector().frontier_detector(),
            AnyProc::Master(_) => None,
        }
    }

    /// Streamlines this rank re-queued/re-seeded on behalf of dead ranks.
    fn reassigned(&self) -> u64 {
        match self {
            AnyProc::Static(p) => p.reassigned(),
            AnyProc::Lod(p) => p.reassigned(),
            AnyProc::Master(p) => p.reassigned(),
            AnyProc::Slave(_) | AnyProc::Steal(_) => 0,
        }
    }
}

fn make_workspace(
    dataset: &Dataset,
    store: &Arc<dyn BlockStore>,
    cfg: &RunConfig,
    cache_blocks: usize,
) -> Workspace {
    let mut ws = Workspace::new(
        dataset.decomp,
        Arc::clone(store),
        cache_blocks,
        cfg.cost.disk,
        cfg.limits,
        cfg.cost.sec_per_step,
    );
    ws.set_vertex_bytes(cfg.memory.vertex_bytes);
    ws.set_stream_bytes(cfg.memory.stream_bytes);
    ws.set_batch_lanes(cfg.batch.resolve());
    ws
}

/// Seeds sorted by (owning block, id) — the "grouped by block to enhance
/// data locality" order of §4.2 — then split into `n` near-equal chunks.
fn chunk_seeds_by_block(
    dataset: &Dataset,
    seeds: &SeedSet,
    n: usize,
) -> Vec<Vec<(StreamlineId, Vec3)>> {
    let tagged =
        seeds.points.iter().enumerate().map(|(i, &p)| (StreamlineId(i as u32), p)).collect();
    chunk_tagged_by_block(dataset, tagged, n)
}

/// [`chunk_seeds_by_block`] for seeds that already carry their global ids —
/// the shape of a later ingest epoch, whose ids start past every earlier
/// epoch's.
fn chunk_tagged_by_block(
    dataset: &Dataset,
    seeds: Vec<(StreamlineId, Vec3)>,
    n: usize,
) -> Vec<Vec<(StreamlineId, Vec3)>> {
    let mut tagged: Vec<(u32, StreamlineId, Vec3)> = seeds
        .into_iter()
        .map(|(id, p)| {
            let block = dataset.decomp.locate(p).map(|b| b.0).unwrap_or(u32::MAX);
            (block, id, p)
        })
        .collect();
    tagged.sort_by_key(|&(b, id, _)| (b, id));
    let total = tagged.len();
    let mut out: Vec<Vec<(StreamlineId, Vec3)>> = Vec::with_capacity(n);
    let mut iter = tagged.into_iter().map(|(_, id, p)| (id, p));
    for r in 0..n {
        let count = total / n + usize::from(r < total % n);
        out.push(iter.by_ref().take(count).collect());
    }
    out
}

/// The ingest plan a run's detectors are built over: per-epoch seed counts
/// and the id → epoch map. Closed runs are the one-epoch special case.
pub(crate) struct IngestPlan {
    totals: Vec<u64>,
    emap: EpochMap,
}

impl IngestPlan {
    pub(crate) fn closed(n_seeds: usize) -> Self {
        IngestPlan { totals: vec![n_seeds as u64], emap: EpochMap::closed(n_seeds as u32) }
    }

    pub(crate) fn of(source: &SeedSource) -> Self {
        IngestPlan { totals: source.epoch_totals(), emap: EpochMap::of(source) }
    }

    fn n_epochs(&self) -> u32 {
        self.totals.len().max(1) as u32
    }
}

/// Build the rank processes for one run (closed workload: every seed in
/// `seeds` is handed out at start).
pub fn build_procs(
    dataset: &Dataset,
    seeds: &SeedSet,
    cfg: &RunConfig,
    store: Arc<dyn BlockStore>,
) -> Vec<AnyProc> {
    build_procs_planned(dataset, seeds, cfg, store, &IngestPlan::closed(seeds.len()))
}

/// [`build_procs`] over an explicit ingest plan: `seeds` is the epoch-0
/// base set distributed at start; detectors are sealed over the whole
/// plan. With a closed plan this is exactly the closed build.
pub(crate) fn build_procs_planned(
    dataset: &Dataset,
    seeds: &SeedSet,
    cfg: &RunConfig,
    store: Arc<dyn BlockStore>,
    plan: &IngestPlan,
) -> Vec<AnyProc> {
    let n = cfg.n_procs;
    assert!(n >= 1, "need at least one rank");
    let n_blocks = dataset.decomp.num_blocks();
    let h0 = cfg.limits.h0;
    // Rank-fault protocol machinery only exists on resilient runs (and only
    // when there is a survivor to recover onto); fault-free runs stay
    // bit-identical to a build without it. A single-rank run under chaos is
    // still legal — the simulator drops its events and collection accounts
    // every unfinished seed as `RankLost`.
    let rc = if n > 1 { cfg.rank_chaos } else { None };
    match cfg.algorithm {
        Algorithm::StaticAllocation => {
            // Seeds go to the rank owning their block; out-of-domain seeds
            // to rank 0 (they terminate immediately).
            let mut per_rank: Vec<Vec<(StreamlineId, Vec3)>> = vec![Vec::new(); n];
            for (i, &p) in seeds.points.iter().enumerate() {
                let rank = dataset
                    .decomp
                    .locate(p)
                    .map(|b| cfg.static_partition.owner_of(b, n_blocks, n))
                    .unwrap_or(0);
                per_rank[rank].push((StreamlineId(i as u32), p));
            }
            // Resilient ranks share the full initial assignment so an
            // adopter can re-seed a dead rank's slice from its own copy.
            let all_seeds = rc.map(|_| Arc::new(per_rank.clone()));
            (0..n)
                .map(|rank| {
                    // A static rank caches every block it owns — capacity is
                    // its ownership-range size (loads lazily, never purges).
                    let owned = (0..n_blocks)
                        .filter(|&b| {
                            cfg.static_partition.owner_of(
                                streamline_field::BlockId(b as u32),
                                n_blocks,
                                n,
                            ) == rank
                        })
                        .count();
                    let ws = make_workspace(dataset, &store, cfg, owned.max(1));
                    let mut proc = StaticProc::new(
                        rank,
                        n,
                        ws,
                        std::mem::take(&mut per_rank[rank]),
                        cfg.memory,
                        cfg.comm_geometry,
                        h0,
                        seeds.len() as u64,
                        cfg.static_partition,
                    )
                    .with_ingest(cfg.detector, &plan.totals, plan.emap.clone());
                    if let (Some(rc), Some(all)) = (&rc, &all_seeds) {
                        proc = proc.with_resilience(
                            Arc::clone(all),
                            rc.heartbeat_period,
                            rc.suspect_timeout,
                            rc.beat_deadline(n),
                        );
                    }
                    AnyProc::Static(proc)
                })
                .collect()
        }
        Algorithm::LoadOnDemand => {
            let mut chunks = chunk_seeds_by_block(dataset, seeds, n);
            let all_seeds = rc.map(|_| Arc::new(chunks.clone()));
            (0..n)
                .map(|rank| {
                    let ws = make_workspace(dataset, &store, cfg, cfg.cache_blocks);
                    let mut proc =
                        LodProc::new(ws, std::mem::take(&mut chunks[rank]), cfg.memory, h0)
                            .with_ingest(cfg.detector, plan.n_epochs(), plan.emap.clone());
                    if let (Some(rc), Some(all)) = (&rc, &all_seeds) {
                        proc = proc.with_resilience(
                            rank,
                            n,
                            Arc::clone(all),
                            rc.heartbeat_period,
                            rc.suspect_timeout,
                            rc.beat_deadline(n),
                        );
                    }
                    AnyProc::Lod(proc)
                })
                .collect()
        }
        Algorithm::HybridMasterSlave => {
            let layout = HybridLayout::new(n, cfg.hybrid.n_masters(n));
            let mut chunks = chunk_seeds_by_block(dataset, seeds, layout.n_masters);
            (0..n)
                .map(|rank| {
                    if layout.is_master(rank) {
                        let mut proc = MasterProc::new(
                            rank,
                            dataset.decomp,
                            cfg.hybrid,
                            cfg.comm_geometry,
                            layout.slaves_of(rank),
                            layout.master_ranks(),
                            std::mem::take(&mut chunks[rank]),
                            0xC0FFEE ^ rank as u64,
                        )
                        .with_ingest(plan.n_epochs());
                        if let Some(rc) = &rc {
                            proc = proc.with_resilience(
                                rc.heartbeat_period,
                                rc.suspect_timeout,
                                rc.beat_deadline(n),
                            );
                        }
                        AnyProc::Master(proc)
                    } else {
                        let ws = make_workspace(dataset, &store, cfg, cfg.cache_blocks);
                        let mut proc = SlaveProc::new(
                            rank,
                            layout.master_of(rank),
                            ws,
                            cfg.memory,
                            cfg.comm_geometry,
                            h0,
                        )
                        .with_ingest(cfg.detector, plan.emap.clone());
                        if let Some(rc) = &rc {
                            proc = proc.with_resilience(
                                rc.heartbeat_period,
                                rc.suspect_timeout,
                                rc.beat_deadline(n),
                            );
                        }
                        AnyProc::Slave(proc)
                    }
                })
                .collect()
        }
        Algorithm::WorkStealing => {
            // Same locality-grouped initial split as Load On Demand; the
            // steal/diffusion protocol redistributes from there.
            let mut chunks = chunk_seeds_by_block(dataset, seeds, n);
            (0..n)
                .map(|rank| {
                    let ws = make_workspace(dataset, &store, cfg, cfg.cache_blocks);
                    let mut proc = StealProc::new(
                        rank,
                        n,
                        ws,
                        std::mem::take(&mut chunks[rank]),
                        cfg.memory,
                        cfg.comm_geometry,
                        h0,
                        cfg.steal,
                    )
                    .with_ingest(
                        cfg.detector,
                        plan.n_epochs(),
                        plan.emap.clone(),
                    );
                    if let Some(rc) = &rc {
                        proc = proc.with_resilience(
                            rc.heartbeat_period,
                            rc.suspect_timeout,
                            rc.beat_deadline(n),
                        );
                    }
                    AnyProc::Steal(proc)
                })
                .collect()
        }
    }
}

/// Build the simulation for one run, attaching the seeded rank-death
/// schedule when rank chaos is configured. Simulated drivers only: the
/// thread runtime does not inject rank faults.
pub(crate) fn make_sim(cfg: &RunConfig, procs: Vec<AnyProc>) -> Simulation<Msg, AnyProc> {
    let mut sim = Simulation::new(cfg.cost.net, procs);
    if let Some(rc) = cfg.rank_chaos {
        sim = sim.with_rank_deaths(rc.plan(cfg.n_procs));
    }
    sim
}

/// The scheduled-arrival event list for an open run: one [`Msg::Ingest`]
/// per (epoch ≥ 1, receiving rank), at the epoch's virtual arrival time.
///
/// Every integrating rank (and, for hybrid, every master) receives an
/// ingest for every epoch — empty batches included — because termination
/// protocols gate on having *observed* each epoch, not just on drained
/// work. Static Allocation is the exception: its count rank knows the full
/// plan up front, so only ranks that actually receive seeds get an event
/// (out-of-domain seeds fall to rank 0, which retires them on arrival).
pub(crate) fn build_arrivals(
    dataset: &Dataset,
    source: &SeedSource,
    cfg: &RunConfig,
) -> Vec<(f64, usize, Msg)> {
    let n = cfg.n_procs;
    let n_blocks = dataset.decomp.num_blocks();
    let starts = source.epoch_starts();
    let mut out: Vec<(f64, usize, Msg)> = Vec::new();
    for (e, epoch) in source.epochs().iter().enumerate().skip(1) {
        let tagged: Vec<(StreamlineId, Vec3)> = epoch
            .points
            .iter()
            .enumerate()
            .map(|(i, &p)| (StreamlineId(starts[e] + i as u32), p))
            .collect();
        let per_rank: Vec<Vec<(StreamlineId, Vec3)>> = match cfg.algorithm {
            Algorithm::StaticAllocation => {
                let mut per_rank: Vec<Vec<(StreamlineId, Vec3)>> = vec![Vec::new(); n];
                for (id, p) in tagged {
                    let rank = dataset
                        .decomp
                        .locate(p)
                        .map(|b| cfg.static_partition.owner_of(b, n_blocks, n))
                        .unwrap_or(0);
                    per_rank[rank].push((id, p));
                }
                per_rank
            }
            Algorithm::LoadOnDemand | Algorithm::WorkStealing => {
                chunk_tagged_by_block(dataset, tagged, n)
            }
            Algorithm::HybridMasterSlave => {
                let layout = HybridLayout::new(n, cfg.hybrid.n_masters(n));
                let mut chunks = chunk_tagged_by_block(dataset, tagged, layout.n_masters);
                let mut per_rank: Vec<Vec<(StreamlineId, Vec3)>> = vec![Vec::new(); n];
                for (m, rank) in layout.master_ranks().into_iter().enumerate() {
                    per_rank[rank] = std::mem::take(&mut chunks[m]);
                }
                per_rank
            }
        };
        for (rank, seeds) in per_rank.into_iter().enumerate() {
            let deliver = match cfg.algorithm {
                Algorithm::StaticAllocation => !seeds.is_empty(),
                Algorithm::LoadOnDemand | Algorithm::WorkStealing => true,
                Algorithm::HybridMasterSlave => {
                    let layout = HybridLayout::new(n, cfg.hybrid.n_masters(n));
                    layout.is_master(rank)
                }
            };
            if deliver {
                out.push((epoch.at, rank, Msg::Ingest { epoch: e as u32, seeds }));
            }
        }
    }
    out
}

/// What the per-rank frontier ledgers say about ingest progress, folded
/// over the whole run.
pub(crate) struct IngestStats {
    /// Epochs the folded frontier has confirmed fully retired, in order.
    pub frontier_epochs: u32,
    /// Virtual completion time of each confirmed epoch (monotone — an
    /// epoch is not complete until every earlier one is).
    pub completed_at: Vec<f64>,
}

/// Fold every rank's per-epoch retirement ledger against the plan totals.
/// `None` when the run used the closed-set detector (no per-epoch data).
pub(crate) fn fold_frontier(procs: &[AnyProc], totals: &[u64]) -> Option<IngestStats> {
    let mut any = false;
    let mut retired = vec![0u64; totals.len()];
    let mut last_retire = vec![0.0f64; totals.len()];
    for p in procs {
        let Some(f) = p.frontier_ledgers() else { continue };
        any = true;
        for (e, l) in f.ledgers().iter().enumerate() {
            if e < totals.len() {
                retired[e] += l.retired;
                last_retire[e] = last_retire[e].max(l.last_retire);
            }
        }
    }
    if !any {
        return None;
    }
    let mut completed_at = Vec::new();
    let mut t = 0.0f64;
    for e in 0..totals.len() {
        if retired[e] < totals[e] {
            break;
        }
        t = t.max(last_retire[e]);
        completed_at.push(t);
    }
    Some(IngestStats { frontier_epochs: completed_at.len() as u32, completed_at })
}

/// Stamp the open-loop ingest fields onto a collected report: the epoch
/// schedule, the folded frontier, and the arrival→completion lag series.
pub(crate) fn apply_ingest_stats(r: &mut RunReport, source: &SeedSource, procs: &[AnyProc]) {
    r.ingest_epochs = source.n_epochs();
    r.ingest_epoch_arrivals = source.epoch_arrivals();
    if let Some(stats) = fold_frontier(procs, &source.epoch_totals()) {
        r.ingest_frontier_epochs = stats.frontier_epochs;
        let lags: Vec<f64> = stats
            .completed_at
            .iter()
            .zip(&r.ingest_epoch_arrivals)
            .map(|(&done, &at)| (done - at).max(0.0))
            .collect();
        r.ingest_epoch_completions = stats.completed_at;
        if !lags.is_empty() {
            r.ingest_lag_mean = lags.iter().sum::<f64>() / lags.len() as f64;
            r.ingest_lag_max = lags.iter().cloned().fold(0.0, f64::max);
        }
    }
}

/// Recovery strength of a termination: a normal completion beats a
/// block-fault abort beats a rank-lost placeholder. When recovery re-runs a
/// streamline a dead rank had already finished, collection keeps the
/// strongest record per id.
fn termination_rank(s: &streamline_integrate::Streamline) -> u8 {
    use streamline_integrate::{StreamlineStatus, Termination};
    match s.status {
        StreamlineStatus::Terminated(Termination::RankLost) => 1,
        StreamlineStatus::Terminated(Termination::BlockUnavailable) => 2,
        StreamlineStatus::Terminated(_) => 3,
        // In-flight state that never terminated — only possible mid-fault.
        StreamlineStatus::Active => 0,
    }
}

pub(crate) fn collect_report(
    dataset: &Dataset,
    seeds: &SeedSet,
    cfg: &RunConfig,
    report: streamline_desim::SimReport,
    procs: &[AnyProc],
) -> RunReport {
    let mut cache = CacheStats::default();
    let mut terminated = 0;
    let mut steps = 0;
    let mut sampler_hits = 0;
    let mut sampler_misses = 0;
    let mut batched_lanes = 0;
    let mut batch_calls = 0;
    let mut load_retries = 0;
    let mut load_failures = 0;
    let mut unavailable_terminations = 0;
    let mut balance_msgs = 0;
    let mut balance_bytes = 0;
    // Ping-pong is a property of a streamline, not of a rank: union the
    // per-rank sets so a streamline bouncing across several ranks counts
    // once.
    let mut pingponged: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    let mut outcome = RunOutcome::Completed;
    for (rank, p) in procs.iter().enumerate() {
        if let Some(s) = p.cache_stats() {
            cache.merge(&s);
        }
        terminated += p.terminated();
        steps += p.total_steps();
        let (hits, misses) = p.sampler_counters();
        sampler_hits += hits;
        sampler_misses += misses;
        let (lanes, calls) = p.batch_counters();
        batched_lanes += lanes;
        batch_calls += calls;
        let (retries, failures, unavailable) = p.resilience_counters();
        load_retries += retries;
        load_failures += failures;
        unavailable_terminations += unavailable;
        if p.failed_oom() && outcome == RunOutcome::Completed {
            outcome = RunOutcome::OutOfMemory { rank };
        }
        match p {
            AnyProc::Static(p) => pingponged.extend(p.pingponged().iter().copied()),
            AnyProc::Slave(p) => pingponged.extend(p.pingponged().iter().copied()),
            AnyProc::Steal(p) => {
                pingponged.extend(p.pingponged().iter().copied());
                balance_msgs += p.balance_msgs;
                balance_bytes += p.balance_bytes;
            }
            AnyProc::Lod(_) | AnyProc::Master(_) => {}
        }
    }
    // --- Rank fail-stop accounting -------------------------------------
    let rank_deaths = report.rank_deaths.clone();
    let dropped_events = report.dropped_events;
    let mut rank_lost_streamlines = 0;
    let mut reassigned_streamlines = 0;
    let mut detection_latency_mean = 0.0;
    let mut detection_latency_max = 0.0;
    if !rank_deaths.is_empty() {
        reassigned_streamlines = procs.iter().map(|p| p.reassigned()).sum();
        // Detection latency: per death, virtual time from the kill to the
        // first survivor suspecting that rank (deaths the run ended before
        // detecting are skipped).
        let mut latencies: Vec<f64> = Vec::new();
        for &(dead_rank, kill_t) in &rank_deaths {
            let first = procs
                .iter()
                .flat_map(|p| p.suspected_at().iter())
                .filter(|&&(r, _)| r == dead_rank)
                .map(|&(_, t)| t)
                .fold(f64::INFINITY, f64::min);
            if first.is_finite() {
                latencies.push((first - kill_t).max(0.0));
            }
        }
        if !latencies.is_empty() {
            detection_latency_mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
            detection_latency_max = latencies.iter().cloned().fold(0.0, f64::max);
        }
        // Exact conservation under faults: recovery can re-run work a dead
        // rank had already finished (per-rank `terminated` counters then
        // overcount) and quarantined pool seeds never materialize at all.
        // Re-derive the buckets from the deduplicated union of finished
        // streamlines — strongest record wins per id, and an id with no
        // record anywhere is a rank-lost seed. By construction
        // `completed + unavailable + rank_lost == n_seeds`.
        let mut best: Vec<u8> = vec![0; seeds.len()];
        for p in procs {
            for s in p.finished_ref() {
                let i = s.id.0 as usize;
                if i < best.len() {
                    best[i] = best[i].max(termination_rank(s));
                }
            }
        }
        unavailable_terminations = best.iter().filter(|&&b| b == 2).count() as u64;
        rank_lost_streamlines = best.iter().filter(|&&b| b <= 1).count() as u64;
        terminated = seeds.len() as u64;
        // A dead hybrid master takes its whole group down: surface that as
        // a typed outcome instead of silently reporting partial results
        // (out-of-memory keeps precedence).
        if matches!(cfg.algorithm, Algorithm::HybridMasterSlave) && outcome == RunOutcome::Completed
        {
            let n_masters = cfg.hybrid.n_masters(cfg.n_procs);
            if let Some(&(rank, _)) = rank_deaths.iter().find(|&&(r, _)| r < n_masters) {
                outcome = RunOutcome::MasterLost { rank };
            }
        }
    }
    let (io, comm, compute) = report.totals();
    // Occupancy: mean filled fraction of the configured batch width over
    // every batched block-advance (1.0 = every call ran a full batch).
    let batch_occupancy = if batch_calls > 0 {
        batched_lanes as f64 / (batch_calls * cfg.batch.resolve() as u64) as f64
    } else {
        0.0
    };
    RunReport {
        algorithm: cfg.algorithm,
        n_procs: cfg.n_procs,
        dataset: dataset.name.to_string(),
        seeding: seeds.label.clone(),
        n_seeds: seeds.len(),
        outcome,
        wall: report.wall,
        io_time: io,
        comm_time: comm,
        compute_time: compute,
        idle_time: report.total(|m| m.idle),
        blocks_loaded: cache.loaded,
        blocks_purged: cache.purged,
        msgs: report.ranks.iter().map(|m| m.msgs_sent).sum(),
        bytes_sent: report.ranks.iter().map(|m| m.bytes_sent).sum(),
        terminated,
        total_steps: steps,
        sampler_hits,
        sampler_misses,
        batched_lanes,
        batch_occupancy,
        load_retries,
        load_failures,
        unavailable_terminations,
        pingpong_streamlines: pingponged.len() as u64,
        balance_msgs,
        balance_bytes,
        rank_deaths,
        rank_lost_streamlines,
        reassigned_streamlines,
        detection_latency_mean,
        detection_latency_max,
        dropped_events,
        // Ingest fields are stamped by the open entry points
        // ([`apply_ingest_stats`]); the closed collector leaves the
        // defaults so closed reports stay byte-identical.
        ingest_epochs: 0,
        ingest_frontier_epochs: 0,
        ingest_epoch_arrivals: Vec::new(),
        ingest_epoch_completions: Vec::new(),
        ingest_lag_mean: 0.0,
        ingest_lag_max: 0.0,
        events: report.events,
        per_rank: report.ranks,
    }
}

/// Drain, deduplicate and complete the finished streamlines of a run.
/// Fault-free runs just concatenate and sort — bit-identical to the
/// pre-fault collector. After rank deaths the union can hold duplicates
/// (recovery re-ran work a dead rank had already finished) and holes
/// (seeds whose in-flight state died with a rank): keep the strongest
/// record per id and synthesize a `RankLost` placeholder for every missing
/// seed, so the result always has exactly one entry per seed.
pub(crate) fn drain_finished(
    seeds: &SeedSet,
    cfg: &RunConfig,
    rank_deaths: &[(usize, f64)],
    procs: &mut [AnyProc],
) -> Vec<streamline_integrate::Streamline> {
    let mut finished: Vec<streamline_integrate::Streamline> =
        procs.iter_mut().flat_map(|p| p.take_finished()).collect();
    if !rank_deaths.is_empty() {
        use streamline_integrate::{Streamline, Termination};
        let mut best: Vec<Option<Streamline>> = (0..seeds.len()).map(|_| None).collect();
        for s in finished.drain(..) {
            let i = s.id.0 as usize;
            if i >= best.len() {
                continue;
            }
            match &best[i] {
                Some(held) if termination_rank(held) >= termination_rank(&s) => {}
                _ => best[i] = Some(s),
            }
        }
        finished = best
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.filter(|s| termination_rank(s) > 0).unwrap_or_else(|| {
                    let mut s = Streamline::new_lean(
                        StreamlineId(i as u32),
                        seeds.points[i],
                        cfg.limits.h0,
                    );
                    s.terminate(Termination::RankLost);
                    s
                })
            })
            .collect();
    }
    finished.sort_by_key(|s| s.id);
    finished
}

/// Virtual times at which ping-pongs were first detected, over all ranks,
/// sorted — the series behind the trace file's cumulative ping-pong curve.
pub(crate) fn collect_pingpong_times(procs: &[AnyProc]) -> Vec<f64> {
    let mut times: Vec<f64> = procs
        .iter()
        .flat_map(|p| match p {
            AnyProc::Static(p) => p.pingpong_times().to_vec(),
            AnyProc::Slave(p) => p.pingpong_times().to_vec(),
            AnyProc::Steal(p) => p.pingpong_times().to_vec(),
            AnyProc::Lod(_) | AnyProc::Master(_) => Vec::new(),
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times
}

/// Run one configuration on the deterministic simulated cluster.
pub fn run_simulated(dataset: &Dataset, seeds: &SeedSet, cfg: &RunConfig) -> RunReport {
    let store: Arc<dyn BlockStore> = Arc::new(FieldStore::new(dataset.clone()));
    run_simulated_with_store(dataset, seeds, cfg, store)
}

/// Like [`run_simulated`] but also returns every finished streamline,
/// sorted by id — for result-equivalence checks and post-processing.
pub fn run_simulated_detailed(
    dataset: &Dataset,
    seeds: &SeedSet,
    cfg: &RunConfig,
) -> (RunReport, Vec<streamline_integrate::Streamline>) {
    let store: Arc<dyn BlockStore> = Arc::new(FieldStore::new(dataset.clone()));
    run_simulated_detailed_with_store(dataset, seeds, cfg, store)
}

/// [`run_simulated_detailed`] with an explicit store — the hook the
/// resilience tests use to run the drivers over a
/// [`streamline_iosim::FaultStore`] and compare surviving streamlines
/// against a fault-free run.
pub fn run_simulated_detailed_with_store(
    dataset: &Dataset,
    seeds: &SeedSet,
    cfg: &RunConfig,
    store: Arc<dyn BlockStore>,
) -> (RunReport, Vec<streamline_integrate::Streamline>) {
    let procs = build_procs(dataset, seeds, cfg, store);
    let sim = make_sim(cfg, procs);
    let (report, mut procs) = sim.run();
    let run_report = collect_report(dataset, seeds, cfg, report, &procs);
    let finished = drain_finished(seeds, cfg, &run_report.rank_deaths, &mut procs);
    (run_report, finished)
}

/// [`run_simulated`] with an explicit store (e.g. a pre-built
/// [`streamline_iosim::MemoryStore`] shared across a parameter sweep).
pub fn run_simulated_with_store(
    dataset: &Dataset,
    seeds: &SeedSet,
    cfg: &RunConfig,
    store: Arc<dyn BlockStore>,
) -> RunReport {
    let procs = build_procs(dataset, seeds, cfg, store);
    let sim = make_sim(cfg, procs);
    let (report, procs) = sim.run();
    collect_report(dataset, seeds, cfg, report, &procs)
}

/// Run an open workload — a [`SeedSource`] whose later epochs arrive as
/// scheduled virtual-time events while earlier work is integrating — on
/// the deterministic simulated cluster. With a closed source this is
/// exactly [`run_simulated`].
pub fn run_simulated_open(dataset: &Dataset, source: &SeedSource, cfg: &RunConfig) -> RunReport {
    let store: Arc<dyn BlockStore> = Arc::new(FieldStore::new(dataset.clone()));
    let (report, _) = run_simulated_open_detailed_with_store(dataset, source, cfg, store);
    report
}

/// [`run_simulated_open`] returning every finished streamline, sorted by
/// id — one record per ingested seed.
pub fn run_simulated_open_detailed(
    dataset: &Dataset,
    source: &SeedSource,
    cfg: &RunConfig,
) -> (RunReport, Vec<streamline_integrate::Streamline>) {
    let store: Arc<dyn BlockStore> = Arc::new(FieldStore::new(dataset.clone()));
    run_simulated_open_detailed_with_store(dataset, source, cfg, store)
}

/// [`run_simulated_open_detailed`] with an explicit store — the hook the
/// open-loop chaos tests use to combine ingest with block faults.
pub fn run_simulated_open_detailed_with_store(
    dataset: &Dataset,
    source: &SeedSource,
    cfg: &RunConfig,
    store: Arc<dyn BlockStore>,
) -> (RunReport, Vec<streamline_integrate::Streamline>) {
    let all = source.all_seeds();
    let base = source.base();
    let plan = IngestPlan::of(source);
    let procs = build_procs_planned(dataset, &base, cfg, store, &plan);
    let arrivals = build_arrivals(dataset, source, cfg);
    let sim = make_sim(cfg, procs).with_arrivals(arrivals);
    let (report, mut procs) = sim.run();
    let mut run_report = collect_report(dataset, &all, cfg, report, &procs);
    apply_ingest_stats(&mut run_report, source, &procs);
    let finished = drain_finished(&all, cfg, &run_report.rank_deaths, &mut procs);
    (run_report, finished)
}

/// [`run_simulated_open_detailed`] with a virtual-time phase timeline —
/// the open-loop counterpart of [`run_simulated_traced`], feeding the
/// trace's open-vs-closed scheduling series.
pub fn run_simulated_open_traced(
    dataset: &Dataset,
    source: &SeedSource,
    cfg: &RunConfig,
    bucket_width: f64,
) -> (RunReport, Vec<streamline_integrate::Streamline>, streamline_desim::Timeline, Vec<f64>) {
    let store: Arc<dyn BlockStore> = Arc::new(FieldStore::new(dataset.clone()));
    let all = source.all_seeds();
    let base = source.base();
    let plan = IngestPlan::of(source);
    let procs = build_procs_planned(dataset, &base, cfg, store, &plan);
    let arrivals = build_arrivals(dataset, source, cfg);
    let sim = make_sim(cfg, procs).with_arrivals(arrivals);
    let (report, mut procs, timeline) = sim.run_traced(bucket_width);
    let mut run_report = collect_report(dataset, &all, cfg, report, &procs);
    apply_ingest_stats(&mut run_report, source, &procs);
    let pingpong_times = collect_pingpong_times(&procs);
    let finished = drain_finished(&all, cfg, &run_report.rank_deaths, &mut procs);
    (run_report, finished, timeline, pingpong_times)
}

/// [`run_simulated_detailed`] with a virtual-time phase timeline recorded
/// at `bucket_width` virtual-second resolution — the engine behind
/// `streamline run --trace`. The fourth element is the sorted virtual
/// times of ping-pong arrivals, feeding the trace's scheduling series.
pub fn run_simulated_traced(
    dataset: &Dataset,
    seeds: &SeedSet,
    cfg: &RunConfig,
    bucket_width: f64,
) -> (RunReport, Vec<streamline_integrate::Streamline>, streamline_desim::Timeline, Vec<f64>) {
    let store: Arc<dyn BlockStore> = Arc::new(FieldStore::new(dataset.clone()));
    let procs = build_procs(dataset, seeds, cfg, store);
    let sim = make_sim(cfg, procs);
    let (report, mut procs, timeline) = sim.run_traced(bucket_width);
    let run_report = collect_report(dataset, seeds, cfg, report, &procs);
    let pingpong_times = collect_pingpong_times(&procs);
    let finished = drain_finished(seeds, cfg, &run_report.rank_deaths, &mut procs);
    (run_report, finished, timeline, pingpong_times)
}

/// Run one configuration on real OS threads (wall time is measured, not
/// simulated; `charge_*` amounts still populate the metric buckets).
pub fn run_threaded(
    dataset: &Dataset,
    seeds: &SeedSet,
    cfg: &RunConfig,
    store: Arc<dyn BlockStore>,
    timeout: std::time::Duration,
) -> RunReport {
    let procs = build_procs(dataset, seeds, cfg, store);
    let rt = ThreadRuntime::new(cfg.cost.net, procs);
    let (report, procs) = rt.run_until_finished(timeout, |p: &AnyProc| p.retired());
    collect_report(dataset, seeds, cfg, report, &procs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryBudget;
    use streamline_field::dataset::{DatasetConfig, Seeding};

    fn tiny_run(algorithm: Algorithm, n_procs: usize, n_seeds: usize) -> RunReport {
        let mut dcfg = DatasetConfig::tiny();
        dcfg.blocks_per_axis = [2, 2, 2];
        dcfg.cells_per_block = [6, 6, 6];
        let ds = Dataset::thermal_hydraulics(dcfg);
        let seeds = ds.seeds_with_count(Seeding::Sparse, n_seeds);
        let mut cfg = RunConfig::new(algorithm, n_procs);
        cfg.limits.max_steps = 300;
        cfg.memory = MemoryBudget::unlimited();
        run_simulated(&ds, &seeds, &cfg)
    }

    #[test]
    fn all_algorithms_terminate_every_streamline() {
        for algo in Algorithm::ALL {
            let r = tiny_run(algo, 4, 27);
            assert!(r.outcome.completed(), "{algo:?}");
            assert_eq!(r.terminated, 27, "{algo:?} lost streamlines: {r:?}");
            assert!(r.wall > 0.0);
            assert!(r.total_steps > 0);
        }
    }

    #[test]
    fn load_on_demand_never_communicates() {
        let r = tiny_run(Algorithm::LoadOnDemand, 4, 27);
        assert_eq!(r.msgs, 0);
        assert_eq!(r.comm_time, 0.0);
    }

    #[test]
    fn static_never_purges_blocks() {
        let r = tiny_run(Algorithm::StaticAllocation, 4, 27);
        assert_eq!(r.blocks_purged, 0);
        assert_eq!(r.block_efficiency(), 1.0);
    }

    #[test]
    fn static_communicates_streamlines() {
        let r = tiny_run(Algorithm::StaticAllocation, 4, 27);
        assert!(r.msgs > 0, "block crossings must produce hand-offs");
        assert!(r.comm_time > 0.0);
    }

    #[test]
    fn chunking_is_even_and_complete() {
        let mut dcfg = DatasetConfig::tiny();
        dcfg.blocks_per_axis = [2, 2, 2];
        let ds = Dataset::thermal_hydraulics(dcfg);
        let seeds = ds.seeds_with_count(Seeding::Sparse, 10);
        let chunks = chunk_seeds_by_block(&ds, &seeds, 3);
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4), "{sizes:?}");
        // Every id present exactly once.
        let mut ids: Vec<u32> = chunks.iter().flatten().map(|(id, _)| id.0).collect();
        ids.sort();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_simulated_runs() {
        for algo in Algorithm::ALL {
            let a = tiny_run(algo, 4, 27);
            let b = tiny_run(algo, 4, 27);
            assert_eq!(a.wall, b.wall, "{algo:?}");
            assert_eq!(a.msgs, b.msgs, "{algo:?}");
            assert_eq!(a.total_steps, b.total_steps, "{algo:?}");
            assert_eq!(a.blocks_loaded, b.blocks_loaded, "{algo:?}");
        }
    }

    #[test]
    fn single_rank_runs_work() {
        // Degenerate but legal for every masterless algorithm.
        for algo in [Algorithm::StaticAllocation, Algorithm::LoadOnDemand, Algorithm::WorkStealing]
        {
            let r = tiny_run(algo, 1, 8);
            assert_eq!(r.terminated, 8, "{algo:?}");
        }
    }

    #[test]
    fn steal_run_reports_balancing_diagnostics() {
        // Sparse seeds grouped by block leave some ranks under-loaded, so
        // the protocol must actually move work: probes, transfers, and a
        // termination-token circulation all cost messages.
        let r = tiny_run(Algorithm::WorkStealing, 4, 27);
        assert!(r.outcome.completed());
        assert_eq!(r.terminated, 27);
        assert!(r.balance_msgs > 0, "lifeline sweep + token must send messages");
        assert!(r.balance_bytes > 0);
        assert!(r.msgs >= r.balance_msgs, "balance traffic is part of total traffic");
        let part = r.participation();
        assert!((0.0..=1.0).contains(&part), "participation {part}");
        let share = r.comm_overhead_share();
        assert!((0.0..=1.0).contains(&share), "overhead share {share}");
    }

    #[test]
    fn lod_reports_no_balancing_traffic() {
        let r = tiny_run(Algorithm::LoadOnDemand, 4, 27);
        assert_eq!(r.balance_msgs, 0);
        assert_eq!(r.balance_bytes, 0);
        assert_eq!(r.pingpong_streamlines, 0, "LOD never migrates streamlines");
    }

    #[test]
    fn hybrid_two_ranks_is_master_plus_slave() {
        let r = tiny_run(Algorithm::HybridMasterSlave, 2, 8);
        assert!(r.outcome.completed());
        assert_eq!(r.terminated, 8);
    }

    #[test]
    fn hybrid_multi_master_with_work_stealing() {
        // 70 ranks at W = 32 gives 3 masters; seeds are split across master
        // pools and drained through stealing as groups finish unevenly.
        let mut dcfg = DatasetConfig::tiny();
        dcfg.blocks_per_axis = [2, 2, 2];
        dcfg.cells_per_block = [6, 6, 6];
        let ds = Dataset::thermal_hydraulics(dcfg);
        let seeds = ds.seeds_with_count(Seeding::Dense, 300);
        let mut cfg = RunConfig::new(Algorithm::HybridMasterSlave, 70);
        cfg.limits.max_steps = 200;
        cfg.limits.max_arc_length = 1.0;
        cfg.memory = MemoryBudget::unlimited();
        assert_eq!(cfg.hybrid.n_masters(70), 3);
        let r = run_simulated(&ds, &seeds, &cfg);
        assert!(r.outcome.completed(), "{}", r.summary());
        assert_eq!(r.terminated, 300);
    }

    #[test]
    fn batch_width_never_changes_results() {
        // Per-streamline bit-identity of the batch kernel means the batch
        // knob must be invisible in the results of every driver.
        let mut dcfg = DatasetConfig::tiny();
        dcfg.blocks_per_axis = [2, 2, 2];
        dcfg.cells_per_block = [6, 6, 6];
        let ds = Dataset::thermal_hydraulics(dcfg);
        let seeds = ds.seeds_with_count(Seeding::Dense, 60);
        for algo in Algorithm::ALL {
            let mut runs = Vec::new();
            for lanes in [1usize, 4, 64] {
                let mut cfg = RunConfig::new(algo, 4);
                cfg.limits.max_steps = 300;
                cfg.memory = MemoryBudget::unlimited();
                cfg.batch.lanes = Some(lanes);
                runs.push(run_simulated_detailed(&ds, &seeds, &cfg));
            }
            let (r1, f1) = &runs[0];
            assert!(r1.outcome.completed(), "{algo:?}");
            for (rn, fn_) in &runs[1..] {
                assert_eq!(f1, fn_, "{algo:?}: batch width changed streamlines");
                assert_eq!(r1.total_steps, rn.total_steps, "{algo:?}");
                assert_eq!(r1.terminated, rn.terminated, "{algo:?}");
                assert_eq!(
                    (r1.sampler_hits, r1.sampler_misses),
                    (rn.sampler_hits, rn.sampler_misses),
                    "{algo:?}"
                );
            }
            // Master ranks aside, every advance goes through the batch
            // kernel now, so lanes are counted on all algorithms.
            assert!(r1.batched_lanes > 0, "{algo:?} reported no batched lanes");
            assert!(r1.batch_occupancy > 0.0 && r1.batch_occupancy <= 1.0, "{algo:?}");
        }
    }

    fn fault_dataset() -> (Dataset, SeedSet) {
        let mut dcfg = DatasetConfig::tiny();
        dcfg.blocks_per_axis = [2, 2, 2];
        dcfg.cells_per_block = [6, 6, 6];
        let ds = Dataset::thermal_hydraulics(dcfg);
        let seeds = ds.seeds_with_count(Seeding::Sparse, 27);
        (ds, seeds)
    }

    /// `(completed, unavailable, rank_lost)` as classified in the detailed
    /// streamline list itself.
    fn classify(finished: &[streamline_integrate::Streamline]) -> (u64, u64, u64) {
        use streamline_integrate::{StreamlineStatus, Termination};
        let mut buckets = (0, 0, 0);
        for s in finished {
            match s.status {
                StreamlineStatus::Terminated(Termination::RankLost) => buckets.2 += 1,
                StreamlineStatus::Terminated(Termination::BlockUnavailable) => buckets.1 += 1,
                StreamlineStatus::Terminated(_) => buckets.0 += 1,
                StreamlineStatus::Active => panic!("active streamline in finished list"),
            }
        }
        buckets
    }

    #[test]
    fn one_kill_conserves_every_seed_on_all_drivers() {
        let (ds, seeds) = fault_dataset();
        for algo in Algorithm::ALL {
            let mut cfg = RunConfig::new(algo, 4);
            cfg.limits.max_steps = 300;
            cfg.memory = MemoryBudget::unlimited();
            // Rank 3 is a worker under every algorithm (hybrid's master is
            // rank 0), killed while work is still in flight.
            cfg.rank_chaos = Some(crate::config::RankChaos::one_kill(3, 5e-3));
            let (r, finished) = run_simulated_detailed(&ds, &seeds, &cfg);
            assert_eq!(r.rank_deaths, vec![(3, 5e-3)], "{algo:?}");
            assert_eq!(r.terminated, 27, "{algo:?}: {}", r.summary());
            assert_eq!(finished.len(), 27, "{algo:?}: one record per seed");
            let (completed, unavailable, lost) = classify(&finished);
            assert_eq!(completed + unavailable + lost, 27, "{algo:?}");
            assert_eq!(lost, r.rank_lost_streamlines, "{algo:?}");
            assert_eq!(unavailable, r.unavailable_terminations, "{algo:?}");
            assert!(r.outcome.completed(), "{algo:?}: worker death must not fail the run");
            assert!(
                r.detection_latency_max >= r.detection_latency_mean,
                "{algo:?}: {} < {}",
                r.detection_latency_max,
                r.detection_latency_mean
            );
        }
    }

    #[test]
    fn recovery_reassigns_initially_assigned_work() {
        // Static and Load On Demand adopt the dead rank's whole initial
        // slice; the hybrid master requeues its assignment ledger.
        let (ds, seeds) = fault_dataset();
        for algo in
            [Algorithm::StaticAllocation, Algorithm::LoadOnDemand, Algorithm::HybridMasterSlave]
        {
            let mut cfg = RunConfig::new(algo, 4);
            cfg.limits.max_steps = 300;
            cfg.memory = MemoryBudget::unlimited();
            cfg.rank_chaos = Some(crate::config::RankChaos::one_kill(3, 5e-3));
            let r = run_simulated(&ds, &seeds, &cfg);
            assert!(r.reassigned_streamlines > 0, "{algo:?}: nothing reassigned\n{r:?}");
        }
    }

    #[test]
    fn master_death_is_a_typed_failure_not_a_hang() {
        let (ds, seeds) = fault_dataset();
        let mut cfg = RunConfig::new(Algorithm::HybridMasterSlave, 4);
        cfg.limits.max_steps = 300;
        cfg.memory = MemoryBudget::unlimited();
        cfg.rank_chaos = Some(crate::config::RankChaos::one_kill(0, 5e-3));
        let (r, finished) = run_simulated_detailed(&ds, &seeds, &cfg);
        assert_eq!(r.outcome, RunOutcome::MasterLost { rank: 0 }, "{}", r.summary());
        assert_eq!(finished.len(), 27, "every seed still accounted");
        let (completed, unavailable, lost) = classify(&finished);
        assert_eq!(completed + unavailable + lost, 27);
        assert_eq!(lost, r.rank_lost_streamlines);
        assert!(r.summary().contains("MASTER LOST"));
    }

    #[test]
    fn random_death_schedules_terminate_on_all_drivers() {
        let (ds, seeds) = fault_dataset();
        for algo in Algorithm::ALL {
            for seed in 0..3u64 {
                let mut cfg = RunConfig::new(algo, 4);
                cfg.limits.max_steps = 300;
                cfg.memory = MemoryBudget::unlimited();
                cfg.rank_chaos = Some(crate::config::RankChaos::seeded(seed));
                let (r, finished) = run_simulated_detailed(&ds, &seeds, &cfg);
                assert_eq!(finished.len(), 27, "{algo:?} seed {seed}");
                let (completed, unavailable, lost) = classify(&finished);
                assert_eq!(completed + unavailable + lost, 27, "{algo:?} seed {seed}");
                assert_eq!(r.terminated, 27, "{algo:?} seed {seed}");
            }
        }
    }

    #[test]
    fn resilient_mode_without_deaths_reports_clean_counters() {
        // kill_prob 0 arms the heartbeat machinery but kills nobody: the
        // run must complete everything with empty fault accounting.
        let (ds, seeds) = fault_dataset();
        for algo in Algorithm::ALL {
            let mut cfg = RunConfig::new(algo, 4);
            cfg.limits.max_steps = 300;
            cfg.memory = MemoryBudget::unlimited();
            let mut rc = crate::config::RankChaos::seeded(1);
            rc.kill_prob = 0.0;
            cfg.rank_chaos = Some(rc);
            let r = run_simulated(&ds, &seeds, &cfg);
            assert!(r.outcome.completed(), "{algo:?}");
            assert!(r.rank_deaths.is_empty(), "{algo:?}");
            assert_eq!(r.rank_lost_streamlines, 0, "{algo:?}");
            assert_eq!(r.reassigned_streamlines, 0, "{algo:?}");
            assert_eq!(r.dropped_events, 0, "{algo:?}");
            assert_eq!(r.terminated, 27, "{algo:?}");
        }
    }

    #[test]
    fn chaos_off_keeps_fault_fields_empty() {
        let r = tiny_run(Algorithm::WorkStealing, 4, 27);
        assert!(r.rank_deaths.is_empty());
        assert_eq!(r.rank_lost_streamlines, 0);
        assert_eq!(r.reassigned_streamlines, 0);
        assert_eq!(r.detection_latency_mean, 0.0);
        assert_eq!(r.dropped_events, 0);
    }

    fn open_source(ds: &Dataset, base: usize, extra: usize) -> crate::ingest::SeedSource {
        // Two arrival epochs carved from a disjoint seed set, landing while
        // the base work is still integrating (virtual times well inside a
        // tiny run's wall clock).
        let more = ds.seeds_with_count(Seeding::Dense, extra);
        let split = extra / 2;
        crate::ingest::SeedSource::new(
            &ds.seeds_with_count(Seeding::Sparse, base),
            vec![(1e-4, more.points[..split].to_vec()), (5e-4, more.points[split..].to_vec())],
        )
        .unwrap()
    }

    #[test]
    fn open_loop_conserves_every_ingested_seed_on_all_drivers() {
        let mut dcfg = DatasetConfig::tiny();
        dcfg.blocks_per_axis = [2, 2, 2];
        dcfg.cells_per_block = [6, 6, 6];
        let ds = Dataset::thermal_hydraulics(dcfg);
        let source = open_source(&ds, 12, 10);
        assert_eq!(source.n_epochs(), 3);
        let total = source.total_seeds() as u64;
        for algo in Algorithm::ALL {
            for kind in [
                crate::termination::DetectorKind::ClosedSet,
                crate::termination::DetectorKind::Frontier,
            ] {
                let mut cfg = RunConfig::new(algo, 4);
                cfg.limits.max_steps = 300;
                cfg.memory = MemoryBudget::unlimited();
                cfg.detector = kind;
                let (r, finished) = run_simulated_open_detailed(&ds, &source, &cfg);
                assert!(r.outcome.completed(), "{algo:?} {kind:?}");
                assert_eq!(r.terminated, total, "{algo:?} {kind:?}: {}", r.summary());
                assert_eq!(finished.len(), total as usize, "{algo:?} {kind:?}");
                assert_eq!(r.ingest_epochs, 3, "{algo:?} {kind:?}");
                assert_eq!(r.ingest_epoch_arrivals, vec![0.0, 1e-4, 5e-4]);
                match kind {
                    crate::termination::DetectorKind::Frontier => {
                        assert_eq!(r.ingest_frontier_epochs, 3, "{algo:?}: frontier incomplete");
                        assert_eq!(r.ingest_epoch_completions.len(), 3);
                        let mono = r.ingest_epoch_completions.windows(2).all(|w| w[0] <= w[1]);
                        assert!(mono, "{algo:?}: {:?}", r.ingest_epoch_completions);
                        assert!(r.ingest_lag_max >= r.ingest_lag_mean, "{algo:?}");
                        assert!(r.ingest_lag_mean > 0.0, "{algo:?}");
                    }
                    crate::termination::DetectorKind::ClosedSet => {
                        assert_eq!(r.ingest_frontier_epochs, 0, "{algo:?}: no ledger expected");
                    }
                }
            }
        }
    }

    #[test]
    fn closed_source_through_open_entry_is_bit_identical() {
        let mut dcfg = DatasetConfig::tiny();
        dcfg.blocks_per_axis = [2, 2, 2];
        dcfg.cells_per_block = [6, 6, 6];
        let ds = Dataset::thermal_hydraulics(dcfg);
        let seeds = ds.seeds_with_count(Seeding::Sparse, 27);
        let source = crate::ingest::SeedSource::closed(&seeds);
        for algo in Algorithm::ALL {
            let mut cfg = RunConfig::new(algo, 4);
            cfg.limits.max_steps = 300;
            cfg.memory = MemoryBudget::unlimited();
            let (rc, fc) = run_simulated_detailed(&ds, &seeds, &cfg);
            let (ro, fo) = run_simulated_open_detailed(&ds, &source, &cfg);
            assert_eq!(fc, fo, "{algo:?}: open entry changed streamlines");
            assert_eq!(rc.wall, ro.wall, "{algo:?}");
            assert_eq!(rc.msgs, ro.msgs, "{algo:?}");
            assert_eq!(rc.total_steps, ro.total_steps, "{algo:?}");
            assert_eq!(ro.ingest_epochs, 1, "{algo:?}");
        }
    }

    #[test]
    fn detector_kind_is_invisible_on_closed_runs() {
        // The frontier protocol must be a drop-in: same virtual schedule,
        // same traffic, same trajectories as the closed-set count.
        let mut dcfg = DatasetConfig::tiny();
        dcfg.blocks_per_axis = [2, 2, 2];
        dcfg.cells_per_block = [6, 6, 6];
        let ds = Dataset::thermal_hydraulics(dcfg);
        let seeds = ds.seeds_with_count(Seeding::Sparse, 27);
        for algo in Algorithm::ALL {
            let mut cfg = RunConfig::new(algo, 4);
            cfg.limits.max_steps = 300;
            cfg.memory = MemoryBudget::unlimited();
            let (rc, fc) = run_simulated_detailed(&ds, &seeds, &cfg);
            cfg.detector = crate::termination::DetectorKind::Frontier;
            let (rf, ff) = run_simulated_detailed(&ds, &seeds, &cfg);
            assert_eq!(fc, ff, "{algo:?}: detector changed streamlines");
            assert_eq!(rc.wall, rf.wall, "{algo:?}");
            assert_eq!(rc.msgs, rf.msgs, "{algo:?}");
            assert_eq!(rc.bytes_sent, rf.bytes_sent, "{algo:?}");
            assert_eq!(rc.events, rf.events, "{algo:?}");
        }
    }

    #[test]
    fn open_loop_under_rank_chaos_still_conserves() {
        let mut dcfg = DatasetConfig::tiny();
        dcfg.blocks_per_axis = [2, 2, 2];
        dcfg.cells_per_block = [6, 6, 6];
        let ds = Dataset::thermal_hydraulics(dcfg);
        let source = open_source(&ds, 12, 10);
        let total = source.total_seeds();
        for algo in Algorithm::ALL {
            let mut cfg = RunConfig::new(algo, 4);
            cfg.limits.max_steps = 300;
            cfg.memory = MemoryBudget::unlimited();
            cfg.detector = crate::termination::DetectorKind::Frontier;
            cfg.rank_chaos = Some(crate::config::RankChaos::one_kill(3, 2e-4));
            let (r, finished) = run_simulated_open_detailed(&ds, &source, &cfg);
            assert_eq!(finished.len(), total, "{algo:?}: one record per ingested seed");
            let (completed, unavailable, lost) = classify(&finished);
            assert_eq!(
                completed + unavailable + lost,
                total as u64,
                "{algo:?}: conservation broke"
            );
            assert_eq!(r.terminated, total as u64, "{algo:?}");
        }
    }

    #[test]
    fn zero_seed_runs_terminate_immediately_on_all_drivers() {
        // Degenerate but legal: no seeds at all. Every driver must still
        // produce a valid report instead of hanging or dividing by zero.
        for algo in Algorithm::ALL {
            let r = tiny_run(algo, 4, 0);
            assert!(r.outcome.completed(), "{algo:?}");
            assert_eq!(r.terminated, 0, "{algo:?}");
            assert_eq!(r.n_seeds, 0, "{algo:?}");
            assert!(r.participation().is_finite(), "{algo:?}");
            assert!(r.comm_overhead_share().is_finite(), "{algo:?}");
            assert!(r.load_imbalance().is_finite(), "{algo:?}");
            assert!(r.batch_occupancy.is_finite(), "{algo:?}");
        }
    }

    #[test]
    fn round_robin_partition_also_conserves_streamlines() {
        let mut dcfg = DatasetConfig::tiny();
        dcfg.blocks_per_axis = [2, 2, 2];
        dcfg.cells_per_block = [6, 6, 6];
        let ds = Dataset::thermal_hydraulics(dcfg);
        let seeds = ds.seeds_with_count(Seeding::Sparse, 64);
        let mut cfg = RunConfig::new(Algorithm::StaticAllocation, 5);
        cfg.limits.max_steps = 300;
        cfg.memory = MemoryBudget::unlimited();
        cfg.static_partition = crate::static_alloc::StaticPartition::RoundRobin;
        let r = run_simulated(&ds, &seeds, &cfg);
        assert!(r.outcome.completed());
        assert_eq!(r.terminated, 64);
        // Round-robin spreads blocks, so crossings produce more hand-offs
        // than the contiguous default.
        let mut contiguous = cfg;
        contiguous.static_partition = crate::static_alloc::StaticPartition::Contiguous;
        let rc = run_simulated(&ds, &seeds, &contiguous);
        assert!(r.msgs >= rc.msgs, "round-robin {} vs contiguous {}", r.msgs, rc.msgs);
    }
}
