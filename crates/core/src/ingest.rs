//! Open-loop seed ingestion: epoch-batched seed arrival schedules.
//!
//! The paper's runs are *closed*: every seed exists at `t = 0`. A
//! [`SeedSource`] generalizes that to a stream — epoch 0 is the base seed
//! set handed to ranks at start, and each later epoch is a batch of seeds
//! that arrives at a scheduled virtual time while earlier work is still
//! integrating. Streamline ids are assigned contiguously in epoch order,
//! so any rank can recover a seed's ingest epoch from its id alone (no
//! extra wire bytes on hand-offs), and the driver's conservation
//! accounting (`completed + unavailable + rank_lost == ingested`) indexes
//! one flat id space exactly as it does for closed runs.

use serde::{Deserialize, Serialize};
use std::fmt;
use streamline_field::seeds::SeedSet;
use streamline_integrate::StreamlineId;
use streamline_math::Vec3;

/// A typed rejection at ingestion time. The collect-time dedup downstream
/// assumes ids are unique per run; a malformed source must fail loudly
/// here, not silently drop trajectories there.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IngestError {
    /// The same streamline id was submitted twice (possibly in different
    /// epochs).
    DuplicateSeedId { id: u32, first_epoch: u32, second_epoch: u32 },
    /// Explicit ids must tile `0..n` in epoch order so id ranges map back
    /// to epochs.
    NonContiguousIds { expected: u32, got: u32, epoch: u32 },
    /// Arrival times must be finite and non-negative.
    BadArrivalTime { epoch: u32, at: f64 },
    /// Arrival times must be non-decreasing in epoch order.
    NonMonotoneArrival { epoch: u32, at: f64, previous: f64 },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::DuplicateSeedId { id, first_epoch, second_epoch } => write!(
                f,
                "duplicate seed id {id}: first in epoch {first_epoch}, again in epoch {second_epoch}"
            ),
            IngestError::NonContiguousIds { expected, got, epoch } => {
                write!(f, "epoch {epoch}: expected seed id {expected}, got {got}")
            }
            IngestError::BadArrivalTime { epoch, at } => {
                write!(f, "epoch {epoch}: arrival time {at} is not finite and non-negative")
            }
            IngestError::NonMonotoneArrival { epoch, at, previous } => {
                write!(f, "epoch {epoch}: arrival time {at} precedes epoch {}'s {previous}", epoch - 1)
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// One ingest batch: `points` arrive together at virtual time `at`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestEpoch {
    pub at: f64,
    pub points: Vec<Vec3>,
}

/// An epoch-batched seed arrival schedule. Epoch 0 (`at == 0`) is the base
/// set delivered at start; epochs `1..` arrive as scheduled events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedSource {
    pub label: String,
    epochs: Vec<IngestEpoch>,
}

impl SeedSource {
    /// A closed workload: everything in epoch 0, nothing arrives later.
    pub fn closed(seeds: &SeedSet) -> Self {
        SeedSource {
            label: seeds.label.clone(),
            epochs: vec![IngestEpoch { at: 0.0, points: seeds.points.clone() }],
        }
    }

    /// An open workload: `base` at start, then `arrivals` of
    /// `(virtual time, batch)` in non-decreasing time order.
    pub fn new(base: &SeedSet, arrivals: Vec<(f64, Vec<Vec3>)>) -> Result<Self, IngestError> {
        let mut epochs = vec![IngestEpoch { at: 0.0, points: base.points.clone() }];
        let mut prev = 0.0f64;
        for (i, (at, points)) in arrivals.into_iter().enumerate() {
            let epoch = (i + 1) as u32;
            if !at.is_finite() || at < 0.0 {
                return Err(IngestError::BadArrivalTime { epoch, at });
            }
            if at < prev {
                return Err(IngestError::NonMonotoneArrival { epoch, at, previous: prev });
            }
            prev = at;
            epochs.push(IngestEpoch { at, points });
        }
        Ok(SeedSource { label: base.label.clone(), epochs })
    }

    /// An open workload with caller-supplied streamline ids (a service
    /// front-end tagging queries). Ids must be unique — a duplicate is a
    /// typed error, never a silently merged trajectory — and must tile
    /// `0..n` in submission order so epoch recovery by id range works.
    pub fn with_tagged(
        label: &str,
        epochs: Vec<(f64, Vec<(StreamlineId, Vec3)>)>,
    ) -> Result<Self, IngestError> {
        let mut first_seen: std::collections::BTreeMap<u32, u32> =
            std::collections::BTreeMap::new();
        let mut expected = 0u32;
        let mut prev = 0.0f64;
        let mut out = Vec::with_capacity(epochs.len());
        for (i, (at, tagged)) in epochs.into_iter().enumerate() {
            let epoch = i as u32;
            if !at.is_finite() || at < 0.0 || (epoch == 0 && at != 0.0) {
                return Err(IngestError::BadArrivalTime { epoch, at });
            }
            if at < prev {
                return Err(IngestError::NonMonotoneArrival { epoch, at, previous: prev });
            }
            prev = at;
            let mut points = Vec::with_capacity(tagged.len());
            for (id, p) in tagged {
                if let Some(&first) = first_seen.get(&id.0) {
                    return Err(IngestError::DuplicateSeedId {
                        id: id.0,
                        first_epoch: first,
                        second_epoch: epoch,
                    });
                }
                first_seen.insert(id.0, epoch);
                if id.0 != expected {
                    return Err(IngestError::NonContiguousIds { expected, got: id.0, epoch });
                }
                expected += 1;
                points.push(p);
            }
            out.push(IngestEpoch { at, points });
        }
        if out.is_empty() {
            out.push(IngestEpoch { at: 0.0, points: Vec::new() });
        }
        Ok(SeedSource { label: label.to_string(), epochs: out })
    }

    /// `true` when nothing arrives after start — the paper's regime.
    pub fn is_closed(&self) -> bool {
        self.epochs.len() == 1
    }

    pub fn n_epochs(&self) -> u32 {
        self.epochs.len() as u32
    }

    pub fn epochs(&self) -> &[IngestEpoch] {
        &self.epochs
    }

    pub fn total_seeds(&self) -> usize {
        self.epochs.iter().map(|e| e.points.len()).sum()
    }

    /// Seeds per epoch, for sealing a detector over the whole plan.
    pub fn epoch_totals(&self) -> Vec<u64> {
        self.epochs.iter().map(|e| e.points.len() as u64).collect()
    }

    /// First streamline id of each epoch (ids are contiguous in epoch
    /// order). Length `n_epochs + 1`; the last entry is the total count.
    pub fn epoch_starts(&self) -> Vec<u32> {
        let mut starts = Vec::with_capacity(self.epochs.len() + 1);
        let mut acc = 0u32;
        for e in &self.epochs {
            starts.push(acc);
            acc += e.points.len() as u32;
        }
        starts.push(acc);
        starts
    }

    /// Arrival time of each epoch.
    pub fn epoch_arrivals(&self) -> Vec<f64> {
        self.epochs.iter().map(|e| e.at).collect()
    }

    /// The flat union of every epoch, ids implicit by position — what the
    /// driver's conservation accounting and output drain index against.
    pub fn all_seeds(&self) -> SeedSet {
        SeedSet {
            label: self.label.clone(),
            points: self.epochs.iter().flat_map(|e| e.points.iter().copied()).collect(),
        }
    }

    /// The base (epoch 0) set, delivered to ranks at start like any closed
    /// run's seeds.
    pub fn base(&self) -> SeedSet {
        SeedSet { label: self.label.clone(), points: self.epochs[0].points.clone() }
    }
}

/// A cheap id → epoch map shared by every rank: the epoch boundaries in
/// the flat id space. Rebuilt from the run's [`SeedSource`], never carried
/// on the wire.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EpochMap {
    starts: Vec<u32>,
}

impl EpochMap {
    pub fn of(source: &SeedSource) -> Self {
        EpochMap { starts: source.epoch_starts() }
    }

    /// A single-epoch map for closed runs built without a source.
    pub fn closed(n_seeds: u32) -> Self {
        EpochMap { starts: vec![0, n_seeds] }
    }

    pub fn n_epochs(&self) -> u32 {
        (self.starts.len().max(1) - 1) as u32
    }

    /// The ingest epoch a streamline id belongs to. Ids past the known
    /// range fold into the last epoch (defensive; cannot happen for
    /// validated sources).
    pub fn epoch_of(&self, id: StreamlineId) -> u32 {
        if self.starts.len() < 2 {
            return 0;
        }
        match self.starts[..self.starts.len() - 1].binary_search_by(|s| s.cmp(&id.0)) {
            Ok(e) => {
                // Boundary ids belong to the epoch that starts there —
                // unless that epoch is empty, in which case walk forward to
                // the first non-empty one (equal consecutive starts).
                let mut e = e;
                while e + 1 < self.starts.len() - 1 && self.starts[e + 1] == self.starts[e] {
                    e += 1;
                }
                e as u32
            }
            Err(ins) => (ins - 1).min(self.n_epochs() as usize - 1) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(n: usize) -> SeedSet {
        SeedSet { label: "t".into(), points: (0..n).map(|i| Vec3::splat(i as f64)).collect() }
    }

    #[test]
    fn closed_source_is_one_epoch() {
        let s = SeedSource::closed(&set(5));
        assert!(s.is_closed());
        assert_eq!(s.n_epochs(), 1);
        assert_eq!(s.total_seeds(), 5);
        assert_eq!(s.epoch_starts(), vec![0, 5]);
    }

    #[test]
    fn arrivals_must_be_monotone_and_finite() {
        let base = set(2);
        assert!(matches!(
            SeedSource::new(&base, vec![(1.0, vec![]), (0.5, vec![])]),
            Err(IngestError::NonMonotoneArrival { epoch: 2, .. })
        ));
        assert!(matches!(
            SeedSource::new(&base, vec![(f64::NAN, vec![])]),
            Err(IngestError::BadArrivalTime { epoch: 1, .. })
        ));
        assert!(matches!(
            SeedSource::new(&base, vec![(-1.0, vec![])]),
            Err(IngestError::BadArrivalTime { .. })
        ));
    }

    #[test]
    fn duplicate_ids_are_a_typed_error() {
        let err = SeedSource::with_tagged(
            "q",
            vec![
                (0.0, vec![(StreamlineId(0), Vec3::ZERO), (StreamlineId(1), Vec3::ZERO)]),
                (2.0, vec![(StreamlineId(1), Vec3::ZERO)]),
            ],
        )
        .unwrap_err();
        assert_eq!(err, IngestError::DuplicateSeedId { id: 1, first_epoch: 0, second_epoch: 1 });
        // A duplicate inside one epoch is caught too.
        let err = SeedSource::with_tagged(
            "q",
            vec![(0.0, vec![(StreamlineId(0), Vec3::ZERO), (StreamlineId(0), Vec3::ZERO)])],
        )
        .unwrap_err();
        assert!(matches!(err, IngestError::DuplicateSeedId { id: 0, .. }));
    }

    #[test]
    fn tagged_ids_must_tile_the_id_space() {
        let err = SeedSource::with_tagged("q", vec![(0.0, vec![(StreamlineId(3), Vec3::ZERO)])])
            .unwrap_err();
        assert_eq!(err, IngestError::NonContiguousIds { expected: 0, got: 3, epoch: 0 });
    }

    #[test]
    fn epoch_map_recovers_epochs_from_ids() {
        let s = SeedSource::new(
            &set(3),
            vec![(1.0, vec![Vec3::ZERO; 2]), (2.0, vec![]), (3.0, vec![Vec3::ZERO])],
        )
        .unwrap();
        assert_eq!(s.epoch_starts(), vec![0, 3, 5, 5, 6]);
        let m = EpochMap::of(&s);
        assert_eq!(m.n_epochs(), 4);
        for (id, want) in [(0u32, 0u32), (2, 0), (3, 1), (4, 1), (5, 3)] {
            assert_eq!(m.epoch_of(StreamlineId(id)), want, "id {id}");
        }
    }

    #[test]
    fn all_seeds_flattens_in_epoch_order() {
        let s = SeedSource::new(&set(2), vec![(1.0, vec![Vec3::splat(9.0)])]).unwrap();
        let all = s.all_seeds();
        assert_eq!(all.len(), 3);
        assert_eq!(all.points[2], Vec3::splat(9.0));
        assert_eq!(s.base().len(), 2);
    }
}
