//! Shared helpers for unit tests inside this crate.

#![cfg(test)]

use crate::msg::Msg;
use std::sync::Arc;
use streamline_desim::Context;
use streamline_field::analytic::Uniform;
use streamline_field::dataset::{Dataset, DatasetConfig};
use streamline_field::decomp::BlockDecomposition;
use streamline_field::sample::SamplingMode;
use streamline_math::{Aabb, Vec3};

/// A dataset whose field is uniform +x over the unit cube, 2×2×2 blocks.
/// Streamlines are straight lines — every hand-off is predictable.
pub fn uniform_x_dataset() -> Dataset {
    custom_dataset(Uniform(Vec3::X), [2, 2, 2], [4, 4, 4])
}

/// Wrap any analytic field into a unit-cube dataset for tests.
pub fn custom_dataset(
    field: impl streamline_field::VectorField + 'static,
    blocks: [usize; 3],
    cells: [usize; 3],
) -> Dataset {
    let cfg = DatasetConfig { blocks_per_axis: blocks, cells_per_block: cells, ghost: 1, seed: 1 };
    Dataset::custom(
        "test-field",
        BlockDecomposition::new(Aabb::unit(), cfg.blocks_per_axis, cfg.cells_per_block, cfg.ghost),
        Arc::new(field),
        SamplingMode::Direct,
        cfg,
    )
}

/// A context that records charges and sends without any runtime behind it.
#[derive(Default)]
pub struct NullCtx {
    pub compute: f64,
    pub io: f64,
    pub sent: Vec<(usize, Msg, usize)>,
    pub wakes: Vec<(f64, u64)>,
    pub stopped: bool,
}

impl NullCtx {
    /// Pop the oldest recorded wake, if any (tests use this to pump
    /// wake-driven processes to completion).
    pub fn take_wake(&mut self) -> Option<(f64, u64)> {
        if self.wakes.is_empty() {
            None
        } else {
            Some(self.wakes.remove(0))
        }
    }
}

impl Context<Msg> for NullCtx {
    fn rank(&self) -> usize {
        0
    }
    fn n_ranks(&self) -> usize {
        1
    }
    fn now(&self) -> f64 {
        self.compute + self.io
    }
    fn charge_compute(&mut self, secs: f64) {
        self.compute += secs;
    }
    fn charge_io(&mut self, secs: f64) {
        self.io += secs;
    }
    fn send(&mut self, to: usize, msg: Msg, bytes: usize) {
        self.sent.push((to, msg, bytes));
    }
    fn wake_after(&mut self, delay: f64, token: u64) {
        self.wakes.push((delay, token));
    }
    fn stop_all(&mut self) {
        self.stopped = true;
    }
}
