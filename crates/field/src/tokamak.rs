//! Synthetic analog of the NIMROD tokamak magnetic field (§3.2, Figure 2).
//!
//! The property §5.2 of the paper leans on: "most streamlines are
//! approximately closed and traverse the torus-shaped vector field domain
//! repeatedly", while some "exhibit chaotic behavior and traverse the entire
//! domain". A guiding-center tokamak field reproduces exactly that:
//!
//! * toroidal component `B_φ = B0 R0 / R` (dominant, drives circulation
//!   around the torus — streamlines revisit the same ring of blocks),
//! * poloidal component from a safety-factor profile `q(r)` (field lines wind
//!   on nested flux surfaces),
//! * a resonant magnetic perturbation that destroys the outer surfaces and
//!   makes those field lines wander chaotically (§3.1 "highly localized
//!   streamlines can diverge strongly over time").

use crate::analytic::VectorField;
use streamline_math::Vec3;

/// Analytic tokamak field in Cartesian coordinates. The torus axis is `z`;
/// the magnetic axis is the circle of radius `r_major` in the `z = 0` plane.
#[derive(Debug, Clone, Copy)]
pub struct TokamakField {
    /// Major radius `R0` of the magnetic axis.
    pub r_major: f64,
    /// Minor radius `a` of the plasma edge.
    pub r_minor: f64,
    /// On-axis field strength `B0`.
    pub b0: f64,
    /// Safety factor on axis, `q(0)`.
    pub q0: f64,
    /// Edge safety factor, `q(a)`.
    pub q_edge: f64,
    /// Amplitude of the resonant perturbation (0 = integrable field).
    pub perturbation: f64,
    /// Poloidal mode number of the perturbation.
    pub m_mode: i32,
    /// Toroidal mode number of the perturbation.
    pub n_mode: i32,
}

impl TokamakField {
    /// Standard configuration for the scaling studies: a moderately shaped
    /// q-profile with a resonant `m/n = 3/2` island chain.
    pub fn standard(r_major: f64, r_minor: f64) -> Self {
        TokamakField {
            r_major,
            r_minor,
            b0: 1.0,
            q0: 1.1,
            q_edge: 3.2,
            perturbation: 0.015,
            m_mode: 3,
            n_mode: 2,
        }
    }

    /// Safety factor profile `q(r) = q0 + (q_edge − q0)(r/a)^2`.
    pub fn q(&self, r: f64) -> f64 {
        let x = (r / self.r_minor).min(1.5);
        self.q0 + (self.q_edge - self.q0) * x * x
    }
}

impl VectorField for TokamakField {
    fn eval(&self, p: Vec3) -> Vec3 {
        // Cylindrical coordinates about the torus axis.
        let rho = (p.x * p.x + p.y * p.y).sqrt();
        if rho < 1e-9 {
            // On the torus axis the toroidal direction is undefined; return a
            // small axial field so the integrator can leave gracefully.
            return Vec3::new(0.0, 0.0, self.b0 * 0.01);
        }
        let phi_hat = Vec3::new(-p.y / rho, p.x / rho, 0.0);
        let rho_hat = Vec3::new(p.x / rho, p.y / rho, 0.0);

        // Minor-radius coordinates around the magnetic axis.
        let dr = rho - self.r_major; // in-plane offset from axis circle
        let dz = p.z;
        let r = (dr * dr + dz * dz).sqrt(); // minor radius
        let theta = dz.atan2(dr); // poloidal angle
        let phi = p.y.atan2(p.x); // toroidal angle

        // Toroidal field ~ 1/R.
        let b_tor = self.b0 * self.r_major / rho;

        // Poloidal field from q(r): |B_pol| = r B_tor / (q R).
        let b_pol_mag = if r > 1e-9 { r * b_tor / (self.q(r) * rho) } else { 0.0 };
        // Poloidal unit vector: direction of increasing theta.
        let theta_hat = rho_hat * (-theta.sin()) + Vec3::Z * theta.cos();

        let mut b = phi_hat * b_tor + theta_hat * b_pol_mag;

        // Resonant perturbation: radial component ~ sin(mθ − nφ), growing
        // toward the edge so core surfaces stay intact and edge lines go
        // chaotic.
        if self.perturbation != 0.0 && r > 1e-9 {
            let r_hat_minor = rho_hat * theta.cos() + Vec3::Z * theta.sin();
            let envelope = (r / self.r_minor).powi(2);
            let amp = self.perturbation * self.b0 * envelope;
            b +=
                r_hat_minor * (amp * (self.m_mode as f64 * theta - self.n_mode as f64 * phi).sin());
        }
        b
    }

    fn name(&self) -> &'static str {
        "tokamak"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_math::float::approx_eq;

    fn field() -> TokamakField {
        TokamakField::standard(3.0, 1.0)
    }

    #[test]
    fn toroidal_component_scales_inverse_r() {
        let mut f = field();
        f.perturbation = 0.0;
        // On the midplane at the magnetic axis the field is purely toroidal.
        let p = Vec3::new(3.0, 0.0, 0.0);
        let b = f.eval(p);
        // At x = R0, toroidal direction is +y.
        assert!(approx_eq(b.x, 0.0, 1e-12));
        assert!(approx_eq(b.y, f.b0, 1e-12));
        // Further out the field is weaker.
        let b_out = f.eval(Vec3::new(4.0, 0.0, 0.0));
        assert!(b_out.norm() < b.norm());
        assert!(approx_eq(b_out.y, f.b0 * 3.0 / 4.0, 1e-6));
    }

    #[test]
    fn q_profile_monotone() {
        let f = field();
        assert!(approx_eq(f.q(0.0), f.q0, 1e-12));
        assert!(approx_eq(f.q(f.r_minor), f.q_edge, 1e-12));
        assert!(f.q(0.5) > f.q(0.2));
    }

    #[test]
    fn axisymmetric_without_perturbation() {
        let mut f = field();
        f.perturbation = 0.0;
        // |B| must be identical at two toroidal angles, same (r, theta).
        let p1 = Vec3::new(3.5, 0.0, 0.2);
        let ang: f64 = 1.1;
        let p2 = Vec3::new(3.5 * ang.cos(), 3.5 * ang.sin(), 0.2);
        assert!(approx_eq(f.eval(p1).norm(), f.eval(p2).norm(), 1e-12));
    }

    #[test]
    fn perturbation_breaks_axisymmetry() {
        let f = field();
        let p1 = Vec3::new(3.5, 0.0, 0.2);
        let ang: f64 = 1.1;
        let p2 = Vec3::new(3.5 * ang.cos(), 3.5 * ang.sin(), 0.2);
        assert!((f.eval(p1).norm() - f.eval(p2).norm()).abs() > 1e-9);
    }

    #[test]
    fn finite_on_torus_axis() {
        let f = field();
        assert!(f.eval(Vec3::ZERO).is_finite());
        assert!(f.eval(Vec3::new(0.0, 0.0, 1.0)).is_finite());
    }

    #[test]
    fn field_circulates_toroidally() {
        let f = field();
        // At several toroidal angles, B·φ̂ should always be positive
        // (consistent circulation around the torus).
        for i in 0..8 {
            let ang = i as f64 * std::f64::consts::TAU / 8.0;
            let p = Vec3::new(3.2 * ang.cos(), 3.2 * ang.sin(), 0.1);
            let phi_hat = Vec3::new(-ang.sin(), ang.cos(), 0.0);
            assert!(f.eval(p).dot(phi_hat) > 0.0);
        }
    }
}
