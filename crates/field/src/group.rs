//! Lane-group trilinear sampling for the batched advection kernel.
//!
//! [`GroupSampler`] gives every streamline lane its own stencil cache — the
//! same cache policy as one [`CellSampler`](crate::sampler::CellSampler) per
//! lane — but stores the cached corners as lane-major structure-of-arrays
//! rows of `f64`, [`GROUP_WIDTH`] lanes per chunk. The batch kernel hands it
//! one Runge–Kutta stage of a whole chunk at a time as coordinate rows plus
//! a slot mask ([`GroupSampler::sample_rows`]); locating and blending run as
//! straight elementwise loops over `[f64; GROUP_WIDTH]` arrays, which the
//! compiler turns into AVX-512 (or AVX2) vector code when the CPU has it.
//! The instruction set is detected once at construction and falls back to
//! portable scalar code computing the same bits.
//!
//! # Exactness
//!
//! Every lane's sample is bit-identical to `CellSampler::sample` on the same
//! block, counters included:
//!
//! * The fractional-coordinate, cell-index and blend formulas are the same
//!   operation sequences as `interp::locate_cell` / `interp::lerp_corners`,
//!   applied elementwise across lanes. IEEE-754 arithmetic is elementwise —
//!   a vector `vaddpd`/`vmulpd`/`vrndscalepd` lane computes exactly what the
//!   scalar instruction computes — and Rust never contracts `a * b + c`
//!   into a fused multiply-add, so vector and scalar code produce the same
//!   bits. The one re-phrasing is the cell index: the scalar path computes
//!   `(fx.floor() as usize).min(nx - 2)` (where the `as usize` cast
//!   saturates negatives to zero), the group path computes
//!   `fx.floor().max(0.0).min((nx - 2) as f64)` in `f64`; for every
//!   in-lattice coordinate both yield the same integer and the same
//!   `i as f64` used by the fraction subtraction.
//! * Corners are gathered by the same `interp::gather_corners` and stored
//!   through the exact `f32 as f64` conversion the scalar blend performs,
//!   so the blend operands are the same bits.
//! * Cache keys, hit/miss decisions and per-lane [`SamplerStats`] follow the
//!   same rules per lane; lanes never share cached state, so grouping cannot
//!   change any lane's decisions.
//!
//! Out-of-lattice queries drop out of the returned slot mask and leave the
//! lane's cache and counters untouched, exactly like the scalar sampler
//! returning `None`.

use crate::block::Block;
use crate::interp::{self, EDGE_TOL};
use crate::sampler::SamplerStats;
use streamline_math::Vec3;

/// Lanes per SIMD chunk: 8 × `f64` fills one AVX-512 register and two AVX2
/// registers. Groups wider than this span several chunks.
pub const GROUP_WIDTH: usize = 8;
const W: usize = GROUP_WIDTH;

/// One chunk's cached state, all lane-major: the cached cell index per lane
/// as `f64` rows (so the hit test is a vector compare; `-1` marks a cold
/// lane and can never match a clamped index) and the corner stencils as 24
/// rows — corner `c`, component `a` at row `c * 3 + a` — of one `f64` per
/// lane.
struct Chunk {
    ci: [f64; W],
    cj: [f64; W],
    ck: [f64; W],
    rows: [[f64; W]; 24],
}

impl Chunk {
    fn new() -> Self {
        Chunk { ci: [-1.0; W], cj: [-1.0; W], ck: [-1.0; W], rows: [[0.0; W]; 24] }
    }
}

/// Store a freshly gathered stencil into lane `slot`'s column, converting
/// each `f32` corner exactly as the scalar blend does.
#[inline]
fn write_column(rows: &mut [[f64; W]; 24], slot: usize, corners: &[[f32; 3]; 8]) {
    for (c, corner) in corners.iter().enumerate() {
        for (a, &v) in corner.iter().enumerate() {
            rows[c * 3 + a][slot] = v as f64;
        }
    }
}

/// Blend lane `slot`'s cached column with fractions `t` — the
/// `interp::lerp_corners` tree reading the pre-converted `f64` corners.
#[inline]
fn lerp_column(rows: &[[f64; W]; 24], slot: usize, t: [f64; 3]) -> Vec3 {
    let [tx, ty, tz] = t;
    let mx = 1.0 - tx;
    let my = 1.0 - ty;
    let mz = 1.0 - tz;
    let mut out = [0.0f64; 3];
    for (a, o) in out.iter_mut().enumerate() {
        let x00 = rows[a][slot] * mx + rows[3 + a][slot] * tx;
        let x10 = rows[6 + a][slot] * mx + rows[9 + a][slot] * tx;
        let x01 = rows[12 + a][slot] * mx + rows[15 + a][slot] * tx;
        let x11 = rows[18 + a][slot] * mx + rows[21 + a][slot] * tx;
        let y0 = x00 * my + x10 * ty;
        let y1 = x01 * my + x11 * ty;
        *o = y0 * mz + y1 * tz;
    }
    Vec3::new(out[0], out[1], out[2])
}

/// Evaluate one stage for one chunk: coordinates in `pos` rows, lanes to
/// sample in `mask`. Returns the mask of sampled slots that were inside the
/// lattice, their components written to the `out` rows.
///
/// The arithmetic runs over all `W` slots (unmasked slots compute on
/// whatever coordinates their rows hold and are discarded) so the loops
/// stay branch-free and fixed-width; cache maintenance is per masked slot.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)] // index-coupled lane loops are the vectorization shape
fn run_chunk_body(
    block: &Block,
    chunk: &mut Chunk,
    base: usize,
    stats: &mut [SamplerStats],
    pos: &[[f64; W]; 3],
    mask: u8,
    out: &mut [[f64; W]; 3],
) -> u8 {
    let [nx, ny, nz] = block.nodes;
    let o = block.origin;
    let iv = block.inv_spacing;

    // Fractional lattice coordinates, elementwise across lanes — the
    // locate_cell formulas.
    let mut fx = [0.0f64; W];
    let mut fy = [0.0f64; W];
    let mut fz = [0.0f64; W];
    for l in 0..W {
        fx[l] = (pos[0][l] - o.x) * iv.x;
    }
    for l in 0..W {
        fy[l] = (pos[1][l] - o.y) * iv.y;
    }
    for l in 0..W {
        fz[l] = (pos[2][l] - o.z) * iv.z;
    }
    // Lower cell corner as f64 (see the module docs for why the
    // max/min pair is the scalar cast-and-clamp), then the fractions.
    let (cx, cy, cz) = ((nx - 2) as f64, (ny - 2) as f64, (nz - 2) as f64);
    let mut fi = [0.0f64; W];
    let mut fj = [0.0f64; W];
    let mut fk = [0.0f64; W];
    for l in 0..W {
        fi[l] = fx[l].floor().max(0.0).min(cx);
    }
    for l in 0..W {
        fj[l] = fy[l].floor().max(0.0).min(cy);
    }
    for l in 0..W {
        fk[l] = fz[l].floor().max(0.0).min(cz);
    }
    let mut tx = [0.0f64; W];
    let mut ty = [0.0f64; W];
    let mut tz = [0.0f64; W];
    for l in 0..W {
        tx[l] = (fx[l] - fi[l]).clamp(0.0, 1.0);
    }
    for l in 0..W {
        ty[l] = (fy[l] - fj[l]).clamp(0.0, 1.0);
    }
    for l in 0..W {
        tz[l] = (fz[l] - fk[l]).clamp(0.0, 1.0);
    }

    // Bounds mask (locate_cell's comparisons, negated) and cached-cell hit
    // mask, both elementwise; `-1` cell rows from cold lanes never match.
    let (hx, hy, hz) =
        ((nx - 1) as f64 + EDGE_TOL, (ny - 1) as f64 + EDGE_TOL, (nz - 1) as f64 + EDGE_TOL);
    let mut inside = [false; W];
    for l in 0..W {
        inside[l] = !(fx[l] < -EDGE_TOL
            || fy[l] < -EDGE_TOL
            || fz[l] < -EDGE_TOL
            || fx[l] > hx
            || fy[l] > hy
            || fz[l] > hz);
    }
    let mut same = [false; W];
    for l in 0..W {
        same[l] = chunk.ci[l] == fi[l] && chunk.cj[l] == fj[l] && chunk.ck[l] == fk[l];
    }
    // Per-slot bookkeeping: hits are a branchless counter bump, misses (the
    // rare case) gather a fresh stencil and re-key the lane.
    let mut ok = 0u8;
    for slot in 0..W {
        if mask & (1 << slot) == 0 || !inside[slot] {
            continue;
        }
        ok |= 1 << slot;
        let lane = base + slot;
        if same[slot] {
            stats[lane].hits += 1;
        } else {
            let cell = [fi[slot] as usize, fj[slot] as usize, fk[slot] as usize];
            write_column(&mut chunk.rows, slot, &interp::gather_corners(block, cell));
            chunk.ci[slot] = fi[slot];
            chunk.cj[slot] = fj[slot];
            chunk.ck[slot] = fk[slot];
            stats[lane].misses += 1;
        }
    }

    // The trilinear blend tree, elementwise across lanes, written straight
    // to the output rows (unmasked and out-of-lattice slots get garbage the
    // caller must ignore — they are absent from the returned mask).
    let mut mx = [0.0f64; W];
    let mut my = [0.0f64; W];
    let mut mz = [0.0f64; W];
    for l in 0..W {
        mx[l] = 1.0 - tx[l];
    }
    for l in 0..W {
        my[l] = 1.0 - ty[l];
    }
    for l in 0..W {
        mz[l] = 1.0 - tz[l];
    }
    let rows = &chunk.rows;
    for a in 0..3 {
        let oa = &mut out[a];
        for l in 0..W {
            let x00 = rows[a][l] * mx[l] + rows[3 + a][l] * tx[l];
            let x10 = rows[6 + a][l] * mx[l] + rows[9 + a][l] * tx[l];
            let x01 = rows[12 + a][l] * mx[l] + rows[15 + a][l] * tx[l];
            let x11 = rows[18 + a][l] * mx[l] + rows[21 + a][l] * tx[l];
            let y0 = x00 * my[l] + x10 * ty[l];
            let y1 = x01 * my[l] + x11 * ty[l];
            oa[l] = y0 * mz[l] + y1 * tz[l];
        }
    }
    ok
}

type RunFn = unsafe fn(
    &Block,
    &mut Chunk,
    usize,
    &mut [SamplerStats],
    &[[f64; W]; 3],
    u8,
    &mut [[f64; W]; 3],
) -> u8;

/// SAFETY: callers go through [`pick_kernel`], which only returns this when
/// the CPU reports AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn run_chunk_avx512(
    block: &Block,
    chunk: &mut Chunk,
    base: usize,
    stats: &mut [SamplerStats],
    pos: &[[f64; W]; 3],
    mask: u8,
    out: &mut [[f64; W]; 3],
) -> u8 {
    run_chunk_body(block, chunk, base, stats, pos, mask, out)
}

/// SAFETY: callers go through [`pick_kernel`], which only returns this when
/// the CPU reports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn run_chunk_avx2(
    block: &Block,
    chunk: &mut Chunk,
    base: usize,
    stats: &mut [SamplerStats],
    pos: &[[f64; W]; 3],
    mask: u8,
    out: &mut [[f64; W]; 3],
) -> u8 {
    run_chunk_body(block, chunk, base, stats, pos, mask, out)
}

/// Portable fallback; `unsafe fn` only to share the [`RunFn`] signature.
#[allow(clippy::too_many_arguments)]
unsafe fn run_chunk_portable(
    block: &Block,
    chunk: &mut Chunk,
    base: usize,
    stats: &mut [SamplerStats],
    pos: &[[f64; W]; 3],
    mask: u8,
    out: &mut [[f64; W]; 3],
) -> u8 {
    run_chunk_body(block, chunk, base, stats, pos, mask, out)
}

fn pick_kernel() -> (&'static str, RunFn) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return ("avx512f", run_chunk_avx512);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return ("avx2", run_chunk_avx2);
        }
    }
    ("portable", run_chunk_portable)
}

/// The instruction set the group sampler will use on this machine —
/// `"avx512f"`, `"avx2"` or `"portable"`. Every choice computes the same
/// bits; this is surfaced for benchmark reports.
pub fn simd_isa() -> &'static str {
    pick_kernel().0
}

/// A group of per-lane stencil-cached samplers over one block, evaluated a
/// whole Runge–Kutta stage at a time. See the module docs for layout and
/// the exactness argument.
pub struct GroupSampler<'b> {
    block: &'b Block,
    lanes: usize,
    stats: Vec<SamplerStats>,
    chunks: Vec<Chunk>,
    run: RunFn,
}

impl<'b> GroupSampler<'b> {
    pub fn new(block: &'b Block, lanes: usize) -> Self {
        GroupSampler {
            block,
            lanes,
            stats: vec![SamplerStats::default(); lanes],
            chunks: (0..lanes.div_ceil(W)).map(|_| Chunk::new()).collect(),
            run: pick_kernel().1,
        }
    }

    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// This lane's hit/miss counters — the numbers a scalar
    /// [`CellSampler`](crate::sampler::CellSampler) fed the same evaluation
    /// sequence would report.
    pub fn lane_stats(&self, lane: usize) -> SamplerStats {
        self.stats[lane]
    }

    /// Counters summed over all lanes.
    pub fn stats(&self) -> SamplerStats {
        let mut total = SamplerStats::default();
        for s in &self.stats {
            total.hits += s.hits;
            total.misses += s.misses;
        }
        total
    }

    /// Sample one lane at `p` — the scalar continuation (pre-step checks,
    /// step-control retries, the shared-face nudge) against the same cached
    /// state the staged path uses.
    #[inline]
    pub fn sample_lane(&mut self, lane: usize, p: Vec3) -> Option<Vec3> {
        let c = interp::locate_cell(self.block, p)?;
        let chunk = &mut self.chunks[lane / W];
        let slot = lane % W;
        let key = [c.cell[0] as f64, c.cell[1] as f64, c.cell[2] as f64];
        if chunk.ci[slot] == key[0] && chunk.cj[slot] == key[1] && chunk.ck[slot] == key[2] {
            self.stats[lane].hits += 1;
        } else {
            write_column(&mut chunk.rows, slot, &interp::gather_corners(self.block, c.cell));
            chunk.ci[slot] = key[0];
            chunk.cj[slot] = key[1];
            chunk.ck[slot] = key[2];
            self.stats[lane].misses += 1;
        }
        Some(lerp_column(&chunk.rows, slot, c.t))
    }

    /// Evaluate one stage for the chunk of lanes `base .. base +
    /// GROUP_WIDTH` (`base` must be chunk-aligned): slot `l` of the `pos` /
    /// `out` rows is lane `base + l`, and only slots set in `mask` are
    /// sampled. Returns the sampled slots that were inside the lattice;
    /// their components are in `out` (other slots hold garbage).
    ///
    /// Behaves exactly like calling [`Self::sample_lane`] for each masked
    /// slot in ascending order — same values, same counters.
    #[inline]
    pub fn sample_rows(
        &mut self,
        base: usize,
        pos: &[[f64; GROUP_WIDTH]; 3],
        mask: u8,
        out: &mut [[f64; GROUP_WIDTH]; 3],
    ) -> u8 {
        debug_assert!(base.is_multiple_of(W), "row evaluation must be chunk-aligned");
        // SAFETY: `run` was chosen by `pick_kernel` after verifying the
        // matching CPU feature at construction time.
        unsafe {
            (self.run)(
                self.block,
                &mut self.chunks[base / W],
                base,
                &mut self.stats,
                pos,
                mask,
                out,
            )
        }
    }
}

impl std::fmt::Debug for GroupSampler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupSampler")
            .field("block", &self.block.id)
            .field("lanes", &self.lanes())
            .field("isa", &simd_isa())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockId;
    use crate::sampler::CellSampler;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use streamline_math::Aabb;

    fn wavy_block() -> Block {
        let mut b = Block::zeroed(
            BlockId(0),
            Aabb::new(Vec3::ZERO, Vec3::splat(2.0)),
            1,
            [7, 7, 7],
            Vec3::splat(0.5),
        );
        for k in 0..7 {
            for j in 0..7 {
                for i in 0..7 {
                    let p = b.node_pos(i, j, k);
                    b.set(i, j, k, Vec3::new((p.x * 1.3).sin(), p.y * p.z, (p.z - p.x).cos()));
                }
            }
        }
        b
    }

    fn bits(v: Vec3) -> [u64; 3] {
        [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()]
    }

    /// Random per-lane walks, staged through the group sampler's row
    /// evaluation vs a scalar `CellSampler` per lane: every sample and every
    /// counter must match bitwise, including lanes that wander off the
    /// lattice (which must drop out of the returned mask).
    #[test]
    #[allow(clippy::needless_range_loop)] // index-coupled lane loops mirror the kernel shape
    fn staged_walks_match_scalar_samplers_bitwise() {
        let b = wavy_block();
        let lanes = 11usize; // spans two chunks, last one partial
        let n_chunks = lanes.div_ceil(GROUP_WIDTH);
        let mut rng = ChaCha8Rng::seed_from_u64(0x5eed);
        let mut group = GroupSampler::new(&b, lanes);
        let mut scalars: Vec<CellSampler> = (0..lanes).map(|_| CellSampler::new(&b)).collect();
        let mut pos: Vec<Vec3> = (0..lanes)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(0.0f64..1.8),
                    rng.gen_range(0.0f64..1.8),
                    rng.gen_range(0.0f64..1.8),
                )
            })
            .collect();

        let mut rows = [[0.0f64; GROUP_WIDTH]; 3];
        let mut out = [[0.0f64; GROUP_WIDTH]; 3];
        for round in 0..400 {
            // A changing subset of lanes queries each round, like the batch
            // kernel's shrinking active set.
            for ci in 0..n_chunks {
                let base = ci * GROUP_WIDTH;
                let mut mask = 0u8;
                for slot in 0..GROUP_WIDTH {
                    let lane = base + slot;
                    if lane < lanes && !(lane + round).is_multiple_of(3) {
                        mask |= 1 << slot;
                        rows[0][slot] = pos[lane].x;
                        rows[1][slot] = pos[lane].y;
                        rows[2][slot] = pos[lane].z;
                    }
                }
                let ok = group.sample_rows(base, &rows, mask, &mut out);
                assert_eq!(ok & !mask, 0, "ok mask must be a subset of the query mask");
                for slot in 0..GROUP_WIDTH {
                    if mask & (1 << slot) == 0 {
                        continue;
                    }
                    let lane = base + slot;
                    let want = scalars[lane].sample(pos[lane]);
                    if ok & (1 << slot) != 0 {
                        let got = Vec3::new(out[0][slot], out[1][slot], out[2][slot]);
                        let want =
                            want.unwrap_or_else(|| panic!("lane {lane} scalar None, group Some"));
                        assert_eq!(bits(want), bits(got), "lane {lane} round {round}");
                    } else {
                        assert!(want.is_none(), "lane {lane}: scalar Some, group dropped");
                    }
                }
            }
            // Step each lane; occasionally leave the lattice on purpose.
            for (lane, p) in pos.iter_mut().enumerate() {
                let kick: f64 = if rng.gen_range(0..40) == 0 { 3.0 } else { 0.0 };
                *p = Vec3::new(
                    (p.x + rng.gen_range(-0.06f64..0.08) + kick).rem_euclid(2.6) - 0.2,
                    (p.y + rng.gen_range(-0.06f64..0.08)).rem_euclid(2.6) - 0.2,
                    (p.z + rng.gen_range(-0.05f64..0.07)).rem_euclid(2.6) - 0.2,
                );
                // Interleave scalar one-off samples on some lanes, mirroring
                // the kernel's Phase A / retry-path usage.
                if rng.gen_range(0..5) == 0 {
                    let want = scalars[lane].sample(*p);
                    let got = group.sample_lane(lane, *p);
                    assert_eq!(want.map(bits), got.map(bits), "scalar interleave lane {lane}");
                }
            }
        }
        for lane in 0..lanes {
            assert_eq!(group.lane_stats(lane), scalars[lane].stats(), "lane {lane} counters");
        }
        let total = group.stats();
        assert_eq!(
            total.hits + total.misses,
            scalars.iter().map(|s| s.stats().hits + s.stats().misses).sum::<u64>()
        );
    }

    #[test]
    fn lattice_face_and_edge_queries_match() {
        let b = wavy_block();
        let mut group = GroupSampler::new(&b, 4);
        let mut scalar = CellSampler::new(&b);
        let mut rows = [[0.0f64; GROUP_WIDTH]; 3];
        let mut out = [[0.0f64; GROUP_WIDTH]; 3];
        // The ghost lattice spans [-0.5, 2.5]; probe its faces, the domain
        // faces, points a hair outside, and a deep outside point.
        let probes = [
            Vec3::new(-0.5, 0.0, 0.0),
            Vec3::new(2.5, 2.5, 2.5),
            Vec3::new(-0.5 - 1e-7, 0.3, 0.3),
            Vec3::new(0.0, 2.5 + 1e-7, 0.0),
            Vec3::splat(42.0),
            Vec3::new(1.0, 1.0, 1.0),
        ];
        for p in probes {
            rows[0][1] = p.x;
            rows[1][1] = p.y;
            rows[2][1] = p.z;
            let ok = group.sample_rows(0, &rows, 1 << 1, &mut out);
            let want = scalar.sample(p);
            match want {
                Some(w) => {
                    assert_eq!(ok, 1 << 1, "at {p:?}");
                    assert_eq!(
                        bits(w),
                        bits(Vec3::new(out[0][1], out[1][1], out[2][1])),
                        "at {p:?}"
                    );
                }
                None => assert_eq!(ok, 0, "at {p:?}"),
            }
        }
        assert_eq!(group.lane_stats(1), scalar.stats());
        assert_eq!(group.lane_stats(0), SamplerStats::default(), "unqueried lane stays cold");
    }

    #[test]
    fn isa_name_is_reported() {
        let isa = simd_isa();
        assert!(["avx512f", "avx2", "portable"].contains(&isa), "{isa}");
    }
}
