//! Synthetic analog of the Nek5000 thermal-hydraulics mixing-box flow
//! (§3.2, Figures 3–4).
//!
//! "Twin inlets pump water into a box ... eventually the water exits through
//! an outlet" with "long-lived recirculation zones". The §5.3 behaviour the
//! algorithms must see:
//!
//! * dense seeding puts 22,000 seeds in a small region by one inlet where the
//!   jet is strong and turbulent — those streamlines stay in few blocks
//!   (little I/O, advection-dominated ⇒ Load On Demand wins, Static OOMs),
//! * sparse volume seeding samples jets, recirculation rolls and stagnation
//!   regions across the whole box.
//!
//! The field is a superposition of two Gaussian-profile jets entering at
//! `x = 0`, large counter-rotating recirculation rolls filling the box, a
//! sink at the outlet in the upper corner, and small-scale swirl near the
//! inlets for local turbulence.

use crate::analytic::VectorField;
use streamline_math::{Aabb, Vec3};

/// Mixing-box flow over the unit cube `[0,1]^3`.
#[derive(Debug, Clone, Copy)]
pub struct ThermalHydraulicsField {
    /// Peak inlet jet speed.
    pub jet_speed: f64,
    /// Jet Gaussian radius.
    pub jet_radius: f64,
    /// Recirculation roll strength.
    pub roll_strength: f64,
    /// Outlet sink strength.
    pub sink_strength: f64,
    /// Small-scale swirl amplitude near the inlets.
    pub swirl: f64,
}

impl ThermalHydraulicsField {
    /// The two inlet centres on the `x = 0` face.
    pub const INLET_WARM: Vec3 = Vec3 { x: 0.0, y: 0.30, z: 0.18 };
    pub const INLET_COLD: Vec3 = Vec3 { x: 0.0, y: 0.70, z: 0.18 };
    /// Outlet centre ("in the upper right").
    pub const OUTLET: Vec3 = Vec3 { x: 1.0, y: 0.85, z: 0.9 };

    pub fn standard() -> Self {
        ThermalHydraulicsField {
            jet_speed: 2.0,
            jet_radius: 0.07,
            roll_strength: 0.15,
            sink_strength: 0.9,
            swirl: 0.8,
        }
    }

    /// The domain this field is designed for.
    pub fn domain() -> Aabb {
        Aabb::unit()
    }

    fn jet(&self, p: Vec3, inlet: Vec3) -> Vec3 {
        // Jet enters in +x, spreads and decays with distance from the inlet
        // axis; Gaussian cross-section.
        let dy = p.y - inlet.y;
        let dz = p.z - inlet.z;
        let r2 = dy * dy + dz * dz;
        let spread = self.jet_radius * (1.0 + 2.0 * p.x);
        let profile = (-r2 / (spread * spread)).exp();
        let decay = (-p.x / 0.5).exp();
        let axial = self.jet_speed * profile * decay;
        // Entrainment: mild inflow toward the jet axis.
        let pull = -0.4 * axial;
        Vec3::new(axial, pull * dy, pull * dz)
    }

    fn rolls(&self, p: Vec3) -> Vec3 {
        use std::f64::consts::PI;
        // A pair of counter-rotating rolls in (x, z), modulated across y —
        // stream-function form, so the walls are impermeable.
        let s = self.roll_strength;
        let vx = -PI * s * (PI * p.x).sin() * (2.0 * PI * p.z).cos() * (PI * p.y).sin();
        let vz = 2.0 * PI * s * (PI * p.x).cos() * (2.0 * PI * p.z).sin() * (PI * p.y).sin();
        // Slow cross-flow mixing the two halves in y.
        let vy = 0.3 * s * (2.0 * PI * p.y).sin() * (PI * p.x).sin();
        Vec3::new(vx, vy, vz)
    }

    fn sink(&self, p: Vec3) -> Vec3 {
        let d = Self::OUTLET - p;
        let r2 = d.norm_sq().max(1e-4);
        // Inverse-square pull toward the outlet, windowed to the outlet side
        // of the box.
        let window = ((p.x - 0.3) / 0.7).clamp(0.0, 1.0);
        d * (self.sink_strength * window / (r2 * r2.sqrt() * 20.0 + 1.0))
    }

    fn inlet_swirl(&self, p: Vec3, inlet: Vec3, sign: f64) -> Vec3 {
        // Small-scale rotation around each jet axis — the "strong turbulence
        // in flow leaving an inlet" of Figure 4.
        let dy = p.y - inlet.y;
        let dz = p.z - inlet.z;
        let r2 = dy * dy + dz * dz;
        let w = (-r2 / (4.0 * self.jet_radius * self.jet_radius)).exp() * (-p.x / 0.25).exp();
        Vec3::new(0.0, -dz, dy) * (sign * self.swirl * w)
    }
}

impl VectorField for ThermalHydraulicsField {
    fn eval(&self, p: Vec3) -> Vec3 {
        self.jet(p, Self::INLET_WARM)
            + self.jet(p, Self::INLET_COLD)
            + self.rolls(p)
            + self.sink(p)
            + self.inlet_swirl(p, Self::INLET_WARM, 1.0)
            + self.inlet_swirl(p, Self::INLET_COLD, -1.0)
    }

    fn name(&self) -> &'static str {
        "thermal-hydraulics"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> ThermalHydraulicsField {
        ThermalHydraulicsField::standard()
    }

    #[test]
    fn jets_enter_in_positive_x() {
        let f = field();
        for inlet in [ThermalHydraulicsField::INLET_WARM, ThermalHydraulicsField::INLET_COLD] {
            let p = inlet + Vec3::new(0.02, 0.0, 0.0);
            let v = f.eval(p);
            assert!(v.x > 0.5, "jet at {p:?} should flow inward, vx = {}", v.x);
        }
    }

    #[test]
    fn jet_decays_away_from_axis() {
        let f = field();
        let near = f.eval(ThermalHydraulicsField::INLET_WARM + Vec3::new(0.05, 0.0, 0.0));
        let far = f.eval(ThermalHydraulicsField::INLET_WARM + Vec3::new(0.05, 0.25, 0.0));
        assert!(near.norm() > 2.0 * far.norm());
    }

    #[test]
    fn flow_near_outlet_points_at_outlet() {
        let f = field();
        let p = ThermalHydraulicsField::OUTLET - Vec3::new(0.08, 0.05, 0.05);
        let v = f.eval(p);
        assert!(v.dot(ThermalHydraulicsField::OUTLET - p) > 0.0);
    }

    #[test]
    fn finite_everywhere() {
        let f = field();
        for i in 0..=5 {
            for j in 0..=5 {
                for k in 0..=5 {
                    let p = Vec3::new(i as f64, j as f64, k as f64) * 0.2;
                    assert!(f.eval(p).is_finite());
                }
            }
        }
    }

    #[test]
    fn swirl_counter_rotates_between_inlets() {
        let f = field();
        let off = Vec3::new(0.03, 0.0, 0.02);
        let a = f.inlet_swirl(
            ThermalHydraulicsField::INLET_WARM + off,
            ThermalHydraulicsField::INLET_WARM,
            1.0,
        );
        let b = f.inlet_swirl(
            ThermalHydraulicsField::INLET_COLD + off,
            ThermalHydraulicsField::INLET_COLD,
            -1.0,
        );
        // Same offset from each inlet axis → opposite rotation sense.
        assert!(a.dot(b) < 0.0);
    }

    #[test]
    fn recirculation_exists_midbox() {
        // Verify the roll component circulates: sample the curl sign at the
        // roll center plane.
        let f = field();
        let p = Vec3::new(0.5, 0.5, 0.25);
        let h = 1e-5;
        // d(vz)/dx - d(vx)/dz (y-component of curl) should be nonzero.
        let curl_y = (f.eval(p + Vec3::X * h).z - f.eval(p - Vec3::X * h).z) / (2.0 * h)
            - (f.eval(p + Vec3::Z * h).x - f.eval(p - Vec3::Z * h).x) / (2.0 * h);
        assert!(curl_y.abs() > 0.1, "no recirculation, curl_y = {curl_y}");
    }
}
