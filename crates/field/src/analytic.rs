//! The [`VectorField`] trait and analytic reference fields.
//!
//! The application fields (supernova, tokamak, thermal hydraulics) live in
//! their own modules; the simple fields here have closed-form streamlines and
//! anchor the integrator's convergence and correctness tests.

use streamline_math::Vec3;

/// A stationary vector field `v(x)` (Eq. 1 of the paper integrates
/// `S'(t) = v(S(t))`).
///
/// Implementations must be cheap to evaluate and thread-safe: every rank of
/// the simulated cluster evaluates the field concurrently when sampling
/// blocks.
pub trait VectorField: Send + Sync {
    /// Field value at `p`. Must return finite components for finite `p`.
    fn eval(&self, p: Vec3) -> Vec3;

    /// Short identifier used in reports.
    fn name(&self) -> &'static str;
}

/// Constant field — streamlines are straight lines.
#[derive(Debug, Clone, Copy)]
pub struct Uniform(pub Vec3);

impl VectorField for Uniform {
    fn eval(&self, _p: Vec3) -> Vec3 {
        self.0
    }
    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Rigid rotation about the z-axis with angular velocity `omega`:
/// `v = ω ẑ × r`. Streamlines are circles of constant radius — ideal for
/// testing energy (radius) conservation of integrators.
#[derive(Debug, Clone, Copy)]
pub struct RigidRotation {
    pub omega: f64,
}

impl VectorField for RigidRotation {
    fn eval(&self, p: Vec3) -> Vec3 {
        Vec3::new(-self.omega * p.y, self.omega * p.x, 0.0)
    }
    fn name(&self) -> &'static str {
        "rigid-rotation"
    }
}

/// Linear saddle `v = (λx, −λy, 0)`: exponential solutions
/// `x(t) = x0 e^{λt}`, `y(t) = y0 e^{−λt}` for convergence-order tests.
#[derive(Debug, Clone, Copy)]
pub struct Saddle {
    pub lambda: f64,
}

impl VectorField for Saddle {
    fn eval(&self, p: Vec3) -> Vec3 {
        Vec3::new(self.lambda * p.x, -self.lambda * p.y, 0.0)
    }
    fn name(&self) -> &'static str {
        "saddle"
    }
}

/// Arnold–Beltrami–Childress flow, the standard chaotic incompressible test
/// field. With the classic coefficients it mixes trajectories through the
/// whole periodic box, a miniature of the paper's "nearly uniform vector
/// field requires integral curves to pass through large parts of the data".
#[derive(Debug, Clone, Copy)]
pub struct AbcFlow {
    pub a: f64,
    pub b: f64,
    pub c: f64,
}

impl AbcFlow {
    /// The classic A=√3, B=√2, C=1 parameters.
    pub fn classic() -> Self {
        AbcFlow { a: 3f64.sqrt(), b: 2f64.sqrt(), c: 1.0 }
    }
}

impl VectorField for AbcFlow {
    fn eval(&self, p: Vec3) -> Vec3 {
        Vec3::new(
            self.a * p.z.sin() + self.c * p.y.cos(),
            self.b * p.x.sin() + self.a * p.z.cos(),
            self.c * p.y.sin() + self.b * p.x.cos(),
        )
    }
    fn name(&self) -> &'static str {
        "abc-flow"
    }
}

/// Steady double-gyre in the unit box `[0,2]×[0,1]`, extruded in z.
/// Two counter-rotating rolls — a compact stand-in for recirculation zones.
#[derive(Debug, Clone, Copy)]
pub struct DoubleGyre {
    pub amplitude: f64,
}

impl VectorField for DoubleGyre {
    fn eval(&self, p: Vec3) -> Vec3 {
        use std::f64::consts::PI;
        let a = self.amplitude;
        Vec3::new(
            -PI * a * (PI * p.x).sin() * (PI * p.y).cos(),
            PI * a * (PI * p.x).cos() * (PI * p.y).sin(),
            0.0,
        )
    }
    fn name(&self) -> &'static str {
        "double-gyre"
    }
}

/// A point sink at `center`: `v = −k (p − center)`. Streamlines converge —
/// the pathological case for Static Allocation described in §6 ("a flow with
/// sources and sinks").
#[derive(Debug, Clone, Copy)]
pub struct PointSink {
    pub center: Vec3,
    pub strength: f64,
}

impl VectorField for PointSink {
    fn eval(&self, p: Vec3) -> Vec3 {
        (self.center - p) * self.strength
    }
    fn name(&self) -> &'static str {
        "point-sink"
    }
}

/// Scale an inner field by a constant factor.
pub struct Scaled<F> {
    pub inner: F,
    pub factor: f64,
}

impl<F: VectorField> VectorField for Scaled<F> {
    fn eval(&self, p: Vec3) -> Vec3 {
        self.inner.eval(p) * self.factor
    }
    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_math::float::approx_eq;

    #[test]
    fn uniform_is_constant() {
        let f = Uniform(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(f.eval(Vec3::ZERO), f.eval(Vec3::splat(100.0)));
    }

    #[test]
    fn rotation_is_tangential() {
        let f = RigidRotation { omega: 2.0 };
        let p = Vec3::new(3.0, 4.0, 1.0);
        let v = f.eval(p);
        // Velocity is perpendicular to the radius vector in the xy-plane.
        assert!(approx_eq(v.x * p.x + v.y * p.y, 0.0, 1e-12));
        // Speed = omega * radius.
        assert!(approx_eq(v.norm(), 2.0 * 5.0, 1e-12));
    }

    #[test]
    fn saddle_axes() {
        let f = Saddle { lambda: 1.5 };
        assert_eq!(f.eval(Vec3::new(2.0, 0.0, 0.0)), Vec3::new(3.0, 0.0, 0.0));
        assert_eq!(f.eval(Vec3::new(0.0, 2.0, 0.0)), Vec3::new(0.0, -3.0, 0.0));
    }

    #[test]
    fn abc_is_periodic() {
        use std::f64::consts::TAU;
        let f = AbcFlow::classic();
        let p = Vec3::new(0.3, 1.1, 2.7);
        let q = p + Vec3::new(TAU, TAU, TAU);
        let (a, b) = (f.eval(p), f.eval(q));
        assert!(a.distance(b) < 1e-9);
    }

    #[test]
    fn abc_divergence_free() {
        // Central-difference divergence should vanish everywhere.
        let f = AbcFlow::classic();
        let h = 1e-5;
        for p in [Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0), Vec3::new(-0.5, 0.1, 4.0)] {
            let div = (f.eval(p + Vec3::X * h).x - f.eval(p - Vec3::X * h).x
                + f.eval(p + Vec3::Y * h).y
                - f.eval(p - Vec3::Y * h).y
                + f.eval(p + Vec3::Z * h).z
                - f.eval(p - Vec3::Z * h).z)
                / (2.0 * h);
            assert!(div.abs() < 1e-6, "div = {div}");
        }
    }

    #[test]
    fn double_gyre_walls_are_impermeable() {
        let f = DoubleGyre { amplitude: 0.1 };
        // No normal flow through x = 0, 1, 2 and y = 0, 1.
        assert!(approx_eq(f.eval(Vec3::new(0.0, 0.5, 0.0)).x, 0.0, 1e-12));
        assert!(approx_eq(f.eval(Vec3::new(1.0, 0.5, 0.0)).x, 0.0, 1e-12));
        assert!(approx_eq(f.eval(Vec3::new(0.5, 0.0, 0.0)).y, 0.0, 1e-12));
        assert!(approx_eq(f.eval(Vec3::new(0.5, 1.0, 0.0)).y, 0.0, 1e-12));
    }

    #[test]
    fn sink_points_inward() {
        let f = PointSink { center: Vec3::splat(1.0), strength: 2.0 };
        let p = Vec3::ZERO;
        let v = f.eval(p);
        assert!(v.dot(f.center - p) > 0.0);
        assert_eq!(f.eval(f.center), Vec3::ZERO);
    }

    #[test]
    fn scaled_multiplies() {
        let f = Scaled { inner: Uniform(Vec3::X), factor: 4.0 };
        assert_eq!(f.eval(Vec3::ZERO), Vec3::new(4.0, 0.0, 0.0));
    }
}
