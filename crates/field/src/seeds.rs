//! Seed-set generation for the sparse/dense initial conditions of §5.
//!
//! §3.1: seed set *size* and *distribution* are two of the four axes that
//! classify a streamline problem. The generators here produce exactly the
//! configurations the paper measures:
//!
//! * sparse uniform lattices through the volume (thermal sparse:
//!   "4,096 seed points evenly on a 16x16x16 grid throughout the box"),
//! * sparse random placement over the whole domain (astro/fusion sparse),
//! * dense balls around a point of interest (astro/fusion dense),
//! * dense circles around an inlet (thermal dense: "22,000 seed points ...
//!   in the shape of a circle immediately around the inlet", mimicking
//!   stream-surface seeding).

use rand::Rng;
use serde::{Deserialize, Serialize};
use streamline_math::{rng, Aabb, Vec3};

/// A set of seed points plus a label describing how it was produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeedSet {
    pub label: String,
    pub points: Vec<Vec3>,
}

impl SeedSet {
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Smallest box containing every seed (`None` when empty).
    pub fn bounds(&self) -> Option<Aabb> {
        let first = *self.points.first()?;
        let mut bb = Aabb::new(first, first);
        for &p in &self.points[1..] {
            bb = bb.union(&Aabb::new(p, p));
        }
        Some(bb)
    }
}

/// `n³`-ish uniform lattice of seeds spanning `domain`, inset by half a cell
/// so no seed sits exactly on the boundary. `counts` seeds per axis.
pub fn sparse_lattice(domain: &Aabb, counts: [usize; 3]) -> SeedSet {
    assert!(counts.iter().all(|&c| c >= 1));
    let mut points = Vec::with_capacity(counts[0] * counts[1] * counts[2]);
    let s = domain.size();
    let cell = Vec3::new(s.x / counts[0] as f64, s.y / counts[1] as f64, s.z / counts[2] as f64);
    for k in 0..counts[2] {
        for j in 0..counts[1] {
            for i in 0..counts[0] {
                points.push(
                    domain.min
                        + Vec3::new(
                            (i as f64 + 0.5) * cell.x,
                            (j as f64 + 0.5) * cell.y,
                            (k as f64 + 0.5) * cell.z,
                        ),
                );
            }
        }
    }
    SeedSet { label: format!("sparse-lattice-{}x{}x{}", counts[0], counts[1], counts[2]), points }
}

/// `n` uniformly random seeds over a sub-box of `domain` shrunk by `margin`
/// (fraction of the half-size) so seeds start away from the outflow boundary.
pub fn sparse_random(domain: &Aabb, n: usize, margin: f64, seed: u64) -> SeedSet {
    let shrink = domain.size().max_abs_component() * 0.5 * margin;
    let inner = domain.expanded(-shrink);
    let mut r = rng::stream(seed, "sparse-random");
    let points = (0..n).map(|_| rng::point_in_aabb(&mut r, &inner)).collect();
    SeedSet { label: format!("sparse-random-{n}"), points }
}

/// `n` seeds uniformly in a ball — the dense cluster configuration.
pub fn dense_ball(center: Vec3, radius: f64, n: usize, seed: u64) -> SeedSet {
    let mut r = rng::stream(seed, "dense-ball");
    let points = (0..n).map(|_| rng::point_in_ball(&mut r, center, radius)).collect();
    SeedSet { label: format!("dense-ball-{n}"), points }
}

/// `n` seeds evenly spaced on the segment from `a` to `b` — the classic
/// "rake" used to seed stream surfaces from a curve (§8's stream-surface
/// scenario begins from exactly such a seeding curve).
pub fn rake(a: Vec3, b: Vec3, n: usize) -> SeedSet {
    assert!(n >= 1);
    let points = (0..n)
        .map(|i| {
            let t = if n == 1 { 0.5 } else { i as f64 / (n - 1) as f64 };
            a.lerp(b, t)
        })
        .collect();
    SeedSet { label: format!("rake-{n}"), points }
}

/// `n` seeds on a circle of `radius` around `center` with the given `normal`,
/// jittered slightly along the normal — the paper's stream-surface seeding
/// around the thermal-hydraulics inlet.
pub fn dense_circle(center: Vec3, normal: Vec3, radius: f64, n: usize, seed: u64) -> SeedSet {
    let nrm = normal.normalized().expect("circle normal must be nonzero");
    // Build an orthonormal frame (u, v, nrm).
    let helper = if nrm.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
    let u = nrm.cross(helper).normalized().unwrap();
    let v = nrm.cross(u);
    let mut r = rng::stream(seed, "dense-circle");
    let points = (0..n)
        .map(|i| {
            let ang = i as f64 / n as f64 * std::f64::consts::TAU;
            let jitter = r.gen_range(-0.01..0.01) * radius;
            center + (u * ang.cos() + v * ang.sin()) * radius + nrm * jitter
        })
        .collect();
    SeedSet { label: format!("dense-circle-{n}"), points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_count_and_containment() {
        let d = Aabb::unit();
        let s = sparse_lattice(&d, [4, 4, 4]);
        assert_eq!(s.len(), 64);
        assert!(s.points.iter().all(|&p| d.contains(p)));
        // Inset: no seed on the boundary.
        assert!(s.points.iter().all(|&p| p.x > 0.0 && p.x < 1.0));
    }

    #[test]
    fn lattice_16_cubed_matches_paper_thermal_sparse() {
        let s = sparse_lattice(&Aabb::unit(), [16, 16, 16]);
        assert_eq!(s.len(), 4096);
    }

    #[test]
    fn random_deterministic_and_contained() {
        let d = Aabb::new(Vec3::splat(-2.0), Vec3::splat(2.0));
        let a = sparse_random(&d, 100, 0.1, 5);
        let b = sparse_random(&d, 100, 0.1, 5);
        assert_eq!(a.points, b.points);
        assert!(a.points.iter().all(|&p| d.contains(p)));
    }

    #[test]
    fn ball_radius_respected() {
        let c = Vec3::new(1.0, 2.0, 3.0);
        let s = dense_ball(c, 0.3, 500, 11);
        assert_eq!(s.len(), 500);
        assert!(s.points.iter().all(|&p| p.distance(c) <= 0.3 + 1e-12));
    }

    #[test]
    fn circle_lies_near_plane() {
        let c = Vec3::new(0.0, 0.3, 0.18);
        let n = Vec3::X;
        let s = dense_circle(c, n, 0.05, 256, 3);
        assert_eq!(s.len(), 256);
        for &p in &s.points {
            // Distance from the circle's plane is at most the 1% jitter.
            assert!((p - c).dot(n).abs() <= 0.05 * 0.01 + 1e-12);
            // Radial distance close to the circle radius.
            let radial = (p - c) - n * (p - c).dot(n);
            assert!((radial.norm() - 0.05).abs() < 1e-9);
        }
    }

    #[test]
    fn rake_spans_segment_evenly() {
        let a = Vec3::ZERO;
        let b = Vec3::new(2.0, 0.0, 0.0);
        let s = rake(a, b, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.points[0], a);
        assert_eq!(s.points[4], b);
        assert_eq!(s.points[2], Vec3::new(1.0, 0.0, 0.0));
        // Single-seed rake sits at the midpoint.
        assert_eq!(rake(a, b, 1).points[0], Vec3::new(1.0, 0.0, 0.0));
    }

    #[test]
    fn bounds_cover_all_seeds() {
        let s = dense_ball(Vec3::ZERO, 1.0, 50, 2);
        let bb = s.bounds().unwrap();
        assert!(s.points.iter().all(|&p| bb.contains(p)));
        assert!(SeedSet { label: "e".into(), points: vec![] }.bounds().is_none());
    }
}
