//! Cell-cached trilinear sampling.
//!
//! Consecutive Runge–Kutta stages and small adaptive steps overwhelmingly
//! land in the cell they just sampled, so the 8-corner gather (scattered
//! loads plus index arithmetic) is redundant work most of the time.
//! [`CellSampler`] memoizes the last cell's `(i, j, k)` and its 8 gathered
//! corner vectors: the hit path is three integer comparisons followed by the
//! blend.
//!
//! Exactness: cell location runs through the same `interp::locate_cell` as
//! the plain [`trilinear`](crate::interp::trilinear) reference, and the blend
//! is the same `interp::lerp_corners` over corners gathered by the same
//! `interp::gather_corners` — memoization only skips re-gathering bytes that
//! cannot have changed (`&Block` is immutable for the sampler's lifetime), so
//! every sample is bit-identical to the reference.

use crate::block::Block;
use crate::interp;
use streamline_math::Vec3;

/// Hit/miss counters for one sampler's lifetime.
///
/// A "hit" is a sample resolved from the cached corner stencil; a "miss"
/// gathered a fresh stencil. Out-of-lattice queries count as neither.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplerStats {
    pub hits: u64,
    pub misses: u64,
}

impl SamplerStats {
    /// Fraction of in-lattice samples served from the cached stencil.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A stateful sampler over one block, reusing the last cell's corner stencil.
///
/// Construction is allocation-free, so making one per streamline-advance call
/// costs nothing; the cache warms on the first sample.
#[derive(Debug, Clone)]
pub struct CellSampler<'b> {
    block: &'b Block,
    cell: [usize; 3],
    corners: [[f32; 3]; 8],
    warm: bool,
    stats: SamplerStats,
}

impl<'b> CellSampler<'b> {
    pub fn new(block: &'b Block) -> Self {
        CellSampler {
            block,
            cell: [0; 3],
            corners: [[0.0; 3]; 8],
            warm: false,
            stats: SamplerStats::default(),
        }
    }

    /// Trilinear interpolation at `p`, bit-identical to
    /// [`Block::sample`](crate::block::Block::sample) on the same block.
    #[inline]
    pub fn sample(&mut self, p: Vec3) -> Option<Vec3> {
        let c = interp::locate_cell(self.block, p)?;
        if self.warm && self.cell == c.cell {
            self.stats.hits += 1;
        } else {
            self.corners = interp::gather_corners(self.block, c.cell);
            self.cell = c.cell;
            self.warm = true;
            self.stats.misses += 1;
        }
        Some(interp::lerp_corners(&self.corners, c.t))
    }

    pub fn stats(&self) -> SamplerStats {
        self.stats
    }

    pub fn block(&self) -> &'b Block {
        self.block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockId;
    use streamline_math::Aabb;

    fn wavy_block() -> Block {
        let mut b = Block::zeroed(
            BlockId(0),
            Aabb::new(Vec3::ZERO, Vec3::splat(2.0)),
            1,
            [7, 7, 7],
            Vec3::splat(0.5),
        );
        for k in 0..7 {
            for j in 0..7 {
                for i in 0..7 {
                    let p = b.node_pos(i, j, k);
                    b.set(i, j, k, Vec3::new((p.x * 1.3).sin(), p.y * p.z, (p.z - p.x).cos()));
                }
            }
        }
        b
    }

    #[test]
    fn matches_trilinear_bitwise() {
        let b = wavy_block();
        let mut s = CellSampler::new(&b);
        // A walk that revisits cells (hits) and crosses faces (misses).
        let pts = [
            Vec3::new(0.30, 0.30, 0.30),
            Vec3::new(0.32, 0.31, 0.30),
            Vec3::new(0.34, 0.33, 0.31),
            Vec3::new(0.90, 0.33, 0.31),
            Vec3::new(0.91, 0.35, 0.33),
            Vec3::new(0.32, 0.31, 0.30),
        ];
        for p in pts {
            let want = b.sample(p).unwrap();
            let got = s.sample(p).unwrap();
            assert_eq!(want.x.to_bits(), got.x.to_bits());
            assert_eq!(want.y.to_bits(), got.y.to_bits());
            assert_eq!(want.z.to_bits(), got.z.to_bits());
        }
        let stats = s.stats();
        assert_eq!(stats.hits + stats.misses, pts.len() as u64);
        assert!(stats.hits > 0, "revisited cells must hit");
        assert!(stats.misses >= 3, "distinct cells must each miss once");
    }

    #[test]
    fn outside_lattice_is_none_and_uncounted() {
        let b = wavy_block();
        let mut s = CellSampler::new(&b);
        assert!(s.sample(Vec3::splat(-10.0)).is_none());
        assert_eq!(s.stats(), SamplerStats::default());
    }

    #[test]
    fn hit_rate_reporting() {
        let mut st = SamplerStats::default();
        assert_eq!(st.hit_rate(), 0.0);
        st.hits = 3;
        st.misses = 1;
        assert_eq!(st.hit_rate(), 0.75);
    }
}
