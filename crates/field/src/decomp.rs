//! Spatial block decomposition of the problem mesh.
//!
//! §4 of the paper: "In all algorithms, the problem mesh is decomposed into a
//! number of spatially disjoint blocks. Each block may or may not have ghost
//! cells for connectivity purposes." The decomposition is the shared contract
//! between the algorithms (which reason about block ownership) and the I/O
//! substrate (which loads block payloads).

use crate::block::BlockId;
use crate::grid::RegularGrid;
use serde::{Deserialize, Serialize};
use streamline_math::{Aabb, Vec3};

/// A regular decomposition of `domain` into `blocks_per_axis` disjoint
/// blocks, each holding `cells_per_block` cells, each block carrying `ghost`
/// extra cell layers on every face for connectivity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockDecomposition {
    pub domain: Aabb,
    pub blocks_per_axis: [usize; 3],
    pub cells_per_block: [usize; 3],
    pub ghost: usize,
}

impl BlockDecomposition {
    pub fn new(
        domain: Aabb,
        blocks_per_axis: [usize; 3],
        cells_per_block: [usize; 3],
        ghost: usize,
    ) -> Self {
        assert!(blocks_per_axis.iter().all(|&b| b >= 1), "need >= 1 block per axis");
        assert!(cells_per_block.iter().all(|&c| c >= 1), "need >= 1 cell per axis per block");
        assert!(
            ghost <= cells_per_block[0].min(cells_per_block[1]).min(cells_per_block[2]),
            "ghost layer thicker than a block"
        );
        BlockDecomposition { domain, blocks_per_axis, cells_per_block, ghost }
    }

    /// The paper's canonical layout: 8×8×8 = 512 blocks over the domain.
    pub fn paper_512(domain: Aabb, cells_per_block: [usize; 3]) -> Self {
        BlockDecomposition::new(domain, [8, 8, 8], cells_per_block, 1)
    }

    pub fn num_blocks(&self) -> usize {
        self.blocks_per_axis[0] * self.blocks_per_axis[1] * self.blocks_per_axis[2]
    }

    /// The full mesh as one grid.
    pub fn global_grid(&self) -> RegularGrid {
        RegularGrid::new(
            self.domain,
            [
                self.blocks_per_axis[0] * self.cells_per_block[0],
                self.blocks_per_axis[1] * self.cells_per_block[1],
                self.blocks_per_axis[2] * self.cells_per_block[2],
            ],
        )
    }

    /// Total cell count over all blocks (ghosts not counted — they duplicate
    /// neighbours' cells).
    pub fn total_cells(&self) -> usize {
        self.num_blocks()
            * self.cells_per_block[0]
            * self.cells_per_block[1]
            * self.cells_per_block[2]
    }

    /// Linear id of the block at lattice coordinates `(bi, bj, bk)`.
    pub fn id_of(&self, bi: usize, bj: usize, bk: usize) -> BlockId {
        debug_assert!(
            bi < self.blocks_per_axis[0]
                && bj < self.blocks_per_axis[1]
                && bk < self.blocks_per_axis[2]
        );
        BlockId(((bk * self.blocks_per_axis[1] + bj) * self.blocks_per_axis[0] + bi) as u32)
    }

    /// Lattice coordinates of block `id`.
    pub fn coords_of(&self, id: BlockId) -> [usize; 3] {
        let i = id.0 as usize;
        debug_assert!(i < self.num_blocks());
        let nx = self.blocks_per_axis[0];
        let ny = self.blocks_per_axis[1];
        [i % nx, (i / nx) % ny, i / (nx * ny)]
    }

    /// Extent of one block on each axis.
    pub fn block_size(&self) -> Vec3 {
        let s = self.domain.size();
        Vec3::new(
            s.x / self.blocks_per_axis[0] as f64,
            s.y / self.blocks_per_axis[1] as f64,
            s.z / self.blocks_per_axis[2] as f64,
        )
    }

    /// Spatial bounds of block `id` (core region, excluding ghost layers).
    pub fn block_bounds(&self, id: BlockId) -> Aabb {
        let [bi, bj, bk] = self.coords_of(id);
        let s = self.block_size();
        let min = self.domain.min + Vec3::new(bi as f64 * s.x, bj as f64 * s.y, bk as f64 * s.z);
        Aabb::new(min, min + s)
    }

    /// Cell spacing (same for every block and the global grid).
    pub fn spacing(&self) -> Vec3 {
        self.global_grid().spacing()
    }

    /// Which block owns point `p`. Points exactly on an interior block face
    /// belong to the higher-indexed block (consistent tie-break); points on
    /// the domain's upper faces belong to the last block. `None` outside the
    /// domain.
    pub fn locate(&self, p: Vec3) -> Option<BlockId> {
        let tol = 1e-12 * self.domain.size().max_abs_component();
        if !self.domain.contains_eps(p, tol) {
            return None;
        }
        let s = self.block_size();
        let u = p - self.domain.min;
        let clamp_axis = |v: f64, n: usize| -> usize {
            let i = (v).floor() as isize;
            i.clamp(0, n as isize - 1) as usize
        };
        Some(self.id_of(
            clamp_axis(u.x / s.x, self.blocks_per_axis[0]),
            clamp_axis(u.y / s.y, self.blocks_per_axis[1]),
            clamp_axis(u.z / s.z, self.blocks_per_axis[2]),
        ))
    }

    /// Face/edge/corner-adjacent neighbour block ids (up to 26).
    pub fn neighbors(&self, id: BlockId) -> Vec<BlockId> {
        let [bi, bj, bk] = self.coords_of(id);
        let [nx, ny, nz] = self.blocks_per_axis;
        let mut out = Vec::with_capacity(26);
        for dk in -1i64..=1 {
            for dj in -1i64..=1 {
                for di in -1i64..=1 {
                    if di == 0 && dj == 0 && dk == 0 {
                        continue;
                    }
                    let (i, j, k) = (bi as i64 + di, bj as i64 + dj, bk as i64 + dk);
                    if i >= 0
                        && j >= 0
                        && k >= 0
                        && (i as usize) < nx
                        && (j as usize) < ny
                        && (k as usize) < nz
                    {
                        out.push(self.id_of(i as usize, j as usize, k as usize));
                    }
                }
            }
        }
        out
    }

    /// All block ids in order.
    pub fn all_blocks(&self) -> impl Iterator<Item = BlockId> {
        (0..self.num_blocks() as u32).map(BlockId)
    }

    /// Number of bytes of node data one block holds in memory (including
    /// ghost nodes, 3 × f32 per node).
    pub fn block_payload_bytes(&self) -> usize {
        let n = self.block_nodes();
        n[0] * n[1] * n[2] * 12
    }

    /// Node counts per axis for a block's lattice including ghost layers.
    pub fn block_nodes(&self) -> [usize; 3] {
        [
            self.cells_per_block[0] + 1 + 2 * self.ghost,
            self.cells_per_block[1] + 1 + 2 * self.ghost,
            self.cells_per_block[2] + 1 + 2 * self.ghost,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decomp() -> BlockDecomposition {
        BlockDecomposition::new(Aabb::new(Vec3::ZERO, Vec3::splat(8.0)), [4, 2, 2], [4, 4, 4], 1)
    }

    #[test]
    fn counts() {
        let d = decomp();
        assert_eq!(d.num_blocks(), 16);
        assert_eq!(d.total_cells(), 16 * 64);
        assert_eq!(d.global_grid().cells, [16, 8, 8]);
    }

    #[test]
    fn paper_layout_is_512_blocks() {
        let d = BlockDecomposition::paper_512(Aabb::unit(), [16, 16, 16]);
        assert_eq!(d.num_blocks(), 512);
    }

    #[test]
    fn id_coord_roundtrip() {
        let d = decomp();
        for id in d.all_blocks() {
            let [i, j, k] = d.coords_of(id);
            assert_eq!(d.id_of(i, j, k), id);
        }
    }

    #[test]
    fn block_bounds_tile_domain() {
        let d = decomp();
        let total: f64 = d.all_blocks().map(|b| d.block_bounds(b).volume()).sum();
        assert!((total - d.domain.volume()).abs() < 1e-9);
        // Every block is inside the domain.
        for id in d.all_blocks() {
            let b = d.block_bounds(id);
            assert!(d.domain.contains(b.min) && d.domain.contains(b.max));
        }
    }

    #[test]
    fn locate_agrees_with_bounds() {
        let d = decomp();
        for id in d.all_blocks() {
            let c = d.block_bounds(id).center();
            assert_eq!(d.locate(c), Some(id));
        }
        assert_eq!(d.locate(Vec3::splat(-1.0)), None);
        assert_eq!(d.locate(Vec3::splat(9.0)), None);
    }

    #[test]
    fn locate_upper_domain_face_is_last_block() {
        let d = decomp();
        assert_eq!(d.locate(d.domain.max), Some(d.id_of(3, 1, 1)));
    }

    #[test]
    fn neighbors_interior_corner_edge() {
        let d = decomp();
        // Interior block of a 4x2x2 lattice: (1,0,0) has 2*2*3 - 1 = 11 neighbors.
        assert_eq!(d.neighbors(d.id_of(1, 0, 0)).len(), 11);
        // Corner block (0,0,0): 2*2*2 - 1 = 7.
        assert_eq!(d.neighbors(d.id_of(0, 0, 0)).len(), 7);
        // Neighborhood is symmetric.
        let a = d.id_of(1, 1, 1);
        for n in d.neighbors(a) {
            assert!(d.neighbors(n).contains(&a));
        }
    }

    #[test]
    fn payload_bytes_includes_ghosts() {
        let d = decomp();
        // 4 cells + 1 node + 2 ghost nodes = 7 nodes per axis.
        assert_eq!(d.block_nodes(), [7, 7, 7]);
        assert_eq!(d.block_payload_bytes(), 7 * 7 * 7 * 12);
    }

    #[test]
    #[should_panic(expected = "ghost layer")]
    fn oversized_ghost_rejected() {
        BlockDecomposition::new(Aabb::unit(), [2, 2, 2], [2, 2, 2], 3);
    }
}
