//! Rectilinear (stretched) grids — the paper's footnote 1: "While results
//! for regular grids are presented in this work, the algorithms discussed
//! also work on arbitrary grids."
//!
//! A [`RectilinearGrid`] has monotone per-axis node coordinates (e.g.
//! boundary-layer clustering near a wall). Sampling and interpolation are
//! the non-uniform generalization of the regular-grid path: cell lookup by
//! binary search, trilinear weights from the local cell widths. The module
//! is self-contained: [`RectilinearField`] adapts a sampled rectilinear
//! dataset back to the [`VectorField`] interface, so everything downstream
//! (tracer, algorithms) runs unchanged on stretched data.

use crate::analytic::VectorField;
use serde::{Deserialize, Serialize};
use streamline_math::{Aabb, Vec3};

/// A grid with independent, strictly increasing node coordinates per axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RectilinearGrid {
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    pub z: Vec<f64>,
}

impl RectilinearGrid {
    pub fn new(x: Vec<f64>, y: Vec<f64>, z: Vec<f64>) -> Self {
        for (axis, c) in [("x", &x), ("y", &y), ("z", &z)] {
            assert!(c.len() >= 2, "axis {axis} needs at least two nodes");
            assert!(
                c.windows(2).all(|w| w[1] > w[0]),
                "axis {axis} coordinates must strictly increase"
            );
        }
        RectilinearGrid { x, y, z }
    }

    /// Uniform grid helper (for tests and as a degenerate case).
    pub fn uniform(bounds: Aabb, cells: [usize; 3]) -> Self {
        let axis = |lo: f64, hi: f64, n: usize| -> Vec<f64> {
            (0..=n).map(|i| lo + (hi - lo) * i as f64 / n as f64).collect()
        };
        RectilinearGrid::new(
            axis(bounds.min.x, bounds.max.x, cells[0]),
            axis(bounds.min.y, bounds.max.y, cells[1]),
            axis(bounds.min.z, bounds.max.z, cells[2]),
        )
    }

    /// A grid geometrically clustered toward the low end of each axis
    /// (boundary-layer style): node i at `lo + (hi-lo)·(r^i - 1)/(r^n - 1)`.
    pub fn clustered(bounds: Aabb, cells: [usize; 3], ratio: f64) -> Self {
        assert!(ratio > 1.0, "clustering ratio must exceed 1");
        let axis = |lo: f64, hi: f64, n: usize| -> Vec<f64> {
            let denom = ratio.powi(n as i32) - 1.0;
            (0..=n).map(|i| lo + (hi - lo) * (ratio.powi(i as i32) - 1.0) / denom).collect()
        };
        RectilinearGrid::new(
            axis(bounds.min.x, bounds.max.x, cells[0]),
            axis(bounds.min.y, bounds.max.y, cells[1]),
            axis(bounds.min.z, bounds.max.z, cells[2]),
        )
    }

    pub fn bounds(&self) -> Aabb {
        Aabb::new(
            Vec3::new(self.x[0], self.y[0], self.z[0]),
            Vec3::new(
                *self.x.last().expect("nonempty"),
                *self.y.last().expect("nonempty"),
                *self.z.last().expect("nonempty"),
            ),
        )
    }

    pub fn nodes(&self) -> [usize; 3] {
        [self.x.len(), self.y.len(), self.z.len()]
    }

    pub fn total_nodes(&self) -> usize {
        self.x.len() * self.y.len() * self.z.len()
    }

    #[inline]
    fn node_index(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.y.len() + j) * self.x.len() + i
    }

    pub fn node_pos(&self, i: usize, j: usize, k: usize) -> Vec3 {
        Vec3::new(self.x[i], self.y[j], self.z[k])
    }

    /// Index of the cell interval containing `v` along `coords` (clamped to
    /// the last interval for `v == max`); `None` outside.
    fn locate_axis(coords: &[f64], v: f64) -> Option<usize> {
        let tol = 1e-12 * (coords[coords.len() - 1] - coords[0]).abs().max(1.0);
        if v < coords[0] - tol || v > coords[coords.len() - 1] + tol {
            return None;
        }
        // Binary search for the interval.
        let idx = match coords.binary_search_by(|c| c.partial_cmp(&v).expect("finite")) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        Some(idx.min(coords.len() - 2))
    }

    /// The cell `(i, j, k)` containing `p`, or `None` outside the grid.
    pub fn locate(&self, p: Vec3) -> Option<[usize; 3]> {
        Some([
            Self::locate_axis(&self.x, p.x)?,
            Self::locate_axis(&self.y, p.y)?,
            Self::locate_axis(&self.z, p.z)?,
        ])
    }
}

/// A vector field sampled at the nodes of a rectilinear grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RectilinearField {
    pub grid: RectilinearGrid,
    /// Row-major (x fastest) node samples.
    pub data: Vec<[f32; 3]>,
}

impl RectilinearField {
    /// Sample `field` at every node.
    pub fn sample_from(grid: RectilinearGrid, field: &dyn VectorField) -> Self {
        let [nx, ny, nz] = grid.nodes();
        let mut data = vec![[0.0f32; 3]; grid.total_nodes()];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let p = grid.node_pos(i, j, k);
                    data[grid.node_index(i, j, k)] = field.eval(p).to_f32_array();
                }
            }
        }
        RectilinearField { grid, data }
    }

    /// Non-uniform trilinear interpolation at `p`; `None` outside the grid.
    pub fn sample(&self, p: Vec3) -> Option<Vec3> {
        let [ci, cj, ck] = self.grid.locate(p)?;
        let g = &self.grid;
        let tx = ((p.x - g.x[ci]) / (g.x[ci + 1] - g.x[ci])).clamp(0.0, 1.0);
        let ty = ((p.y - g.y[cj]) / (g.y[cj + 1] - g.y[cj])).clamp(0.0, 1.0);
        let tz = ((p.z - g.z[ck]) / (g.z[ck + 1] - g.z[ck])).clamp(0.0, 1.0);
        let idx = |i, j, k| g.node_index(i, j, k);
        let d = &self.data;
        let mut out = [0.0f64; 3];
        for (c, o) in out.iter_mut().enumerate() {
            let lerp = |a: usize, b: usize, t: f64| d[a][c] as f64 * (1.0 - t) + d[b][c] as f64 * t;
            let x00 = lerp(idx(ci, cj, ck), idx(ci + 1, cj, ck), tx);
            let x10 = lerp(idx(ci, cj + 1, ck), idx(ci + 1, cj + 1, ck), tx);
            let x01 = lerp(idx(ci, cj, ck + 1), idx(ci + 1, cj, ck + 1), tx);
            let x11 = lerp(idx(ci, cj + 1, ck + 1), idx(ci + 1, cj + 1, ck + 1), tx);
            let y0 = x00 * (1.0 - ty) + x10 * ty;
            let y1 = x01 * (1.0 - ty) + x11 * ty;
            *o = y0 * (1.0 - tz) + y1 * tz;
        }
        Some(Vec3::new(out[0], out[1], out[2]))
    }
}

/// [`RectilinearField`] as a total [`VectorField`] (clamped to the boundary
/// outside the grid) so the tracer and the cluster algorithms can consume
/// stretched-grid data unchanged.
pub struct RectilinearAdapter {
    pub field: RectilinearField,
}

impl VectorField for RectilinearAdapter {
    fn eval(&self, p: Vec3) -> Vec3 {
        let clamped = self.field.grid.bounds().clamp_point(p);
        self.field.sample(clamped).expect("clamped point is inside the grid")
    }

    fn name(&self) -> &'static str {
        "rectilinear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::Uniform;

    fn stretched() -> RectilinearGrid {
        RectilinearGrid::clustered(Aabb::unit(), [8, 8, 8], 1.4)
    }

    #[test]
    fn clustered_grid_is_monotone_and_covers_bounds() {
        let g = stretched();
        assert_eq!(g.bounds(), Aabb::unit());
        assert!(g.x.windows(2).all(|w| w[1] > w[0]));
        // Clustering: first cell much smaller than last.
        let first = g.x[1] - g.x[0];
        let last = g.x[8] - g.x[7];
        assert!(last / first > 5.0, "ratio {}", last / first);
    }

    #[test]
    fn locate_respects_nonuniform_cells() {
        let g = stretched();
        for (i, w) in g.x.windows(2).enumerate() {
            let mid = 0.5 * (w[0] + w[1]);
            assert_eq!(g.locate(Vec3::new(mid, 0.5, 0.5)).unwrap()[0], i);
        }
        assert!(g.locate(Vec3::new(-0.1, 0.5, 0.5)).is_none());
        assert!(g.locate(Vec3::new(1.1, 0.5, 0.5)).is_none());
        // Upper boundary belongs to the last cell.
        assert_eq!(g.locate(Vec3::splat(1.0)).unwrap(), [7, 7, 7]);
    }

    #[test]
    fn interpolation_exact_for_linear_fields_on_stretched_grid() {
        struct Linear;
        impl VectorField for Linear {
            fn eval(&self, p: Vec3) -> Vec3 {
                Vec3::new(2.0 * p.x - p.y, p.z + 3.0, p.x + p.y + p.z)
            }
            fn name(&self) -> &'static str {
                "linear"
            }
        }
        let f = RectilinearField::sample_from(stretched(), &Linear);
        for p in [Vec3::new(0.03, 0.9, 0.5), Vec3::new(0.77, 0.01, 0.99), Vec3::splat(0.5)] {
            let v = f.sample(p).unwrap();
            assert!(v.distance(Linear.eval(p)) < 1e-5, "at {p:?}");
        }
    }

    #[test]
    fn uniform_grid_matches_regular_block_sampling() {
        // A uniform rectilinear grid must agree with the regular-grid path.
        use crate::block::BlockId;
        use crate::decomp::BlockDecomposition;
        use crate::sample::sample_block_nodes;
        struct Wavy;
        impl VectorField for Wavy {
            fn eval(&self, p: Vec3) -> Vec3 {
                Vec3::new((3.0 * p.x).sin(), p.y * p.z, (2.0 * p.z).cos())
            }
            fn name(&self) -> &'static str {
                "wavy"
            }
        }
        let rect =
            RectilinearField::sample_from(RectilinearGrid::uniform(Aabb::unit(), [8, 8, 8]), &Wavy);
        let d = BlockDecomposition::new(Aabb::unit(), [1, 1, 1], [8, 8, 8], 0);
        let block = sample_block_nodes(&Wavy, &d, BlockId(0));
        for p in [Vec3::splat(0.3), Vec3::new(0.9, 0.1, 0.6)] {
            let a = rect.sample(p).unwrap();
            let b = block.sample(p).unwrap();
            assert!(a.distance(b) < 1e-6, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn adapter_is_total_and_continuous_at_boundary() {
        let f = RectilinearField::sample_from(stretched(), &Uniform(Vec3::new(1.0, -2.0, 0.5)));
        let a = RectilinearAdapter { field: f };
        assert!(a.eval(Vec3::splat(5.0)).distance(Vec3::new(1.0, -2.0, 0.5)) < 1e-6);
        assert!(a.eval(Vec3::splat(0.5)).distance(Vec3::new(1.0, -2.0, 0.5)) < 1e-6);
    }

    #[test]
    fn streamlines_run_through_the_full_pipeline_on_stretched_data() {
        // End-to-end: a rectilinear-sampled field, re-decomposed into the
        // regular block pipeline through the adapter, traced by the cluster
        // tracer — the footnote's claim made executable.
        use crate::block::BlockId;
        use crate::dataset::{Dataset, DatasetConfig};
        use crate::decomp::BlockDecomposition;
        use crate::sample::SamplingMode;
        use std::sync::Arc;
        let rect = RectilinearField::sample_from(
            RectilinearGrid::clustered(Aabb::unit(), [16, 16, 16], 1.2),
            &crate::analytic::DoubleGyre { amplitude: 0.1 },
        );
        let cfg = DatasetConfig {
            blocks_per_axis: [2, 2, 2],
            cells_per_block: [6, 6, 6],
            ghost: 1,
            seed: 3,
        };
        let ds = Dataset::custom(
            "stretched",
            BlockDecomposition::new(Aabb::unit(), cfg.blocks_per_axis, cfg.cells_per_block, 1),
            Arc::new(RectilinearAdapter { field: rect }),
            SamplingMode::Direct,
            cfg,
        );
        let b = ds.build_block(BlockId(0));
        assert!(b.sample(b.bounds.center()).unwrap().is_finite());
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_monotone_axis_rejected() {
        RectilinearGrid::new(vec![0.0, 1.0, 0.5], vec![0.0, 1.0], vec![0.0, 1.0]);
    }
}
