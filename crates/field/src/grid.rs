//! Regular (uniform rectilinear) grids.
//!
//! The paper's scaling studies resample every dataset "onto 512 blocks with 1
//! million cells per block" on regular grids (§3.2, footnote 1). A
//! [`RegularGrid`] describes one such structured lattice: an axis-aligned
//! domain divided into `cells` cells per axis, with node-centered samples at
//! the `cells + 1` lattice points per axis.

use serde::{Deserialize, Serialize};
use streamline_math::{Aabb, Vec3};

/// A uniform structured grid over an axis-aligned domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegularGrid {
    /// Spatial extent covered by the grid.
    pub bounds: Aabb,
    /// Cell counts per axis (nodes per axis = cells + 1).
    pub cells: [usize; 3],
}

impl RegularGrid {
    pub fn new(bounds: Aabb, cells: [usize; 3]) -> Self {
        assert!(
            cells.iter().all(|&c| c >= 1),
            "grid needs at least one cell per axis, got {cells:?}"
        );
        RegularGrid { bounds, cells }
    }

    /// Edge length of one cell on each axis.
    pub fn spacing(&self) -> Vec3 {
        let s = self.bounds.size();
        Vec3::new(
            s.x / self.cells[0] as f64,
            s.y / self.cells[1] as f64,
            s.z / self.cells[2] as f64,
        )
    }

    /// Nodes per axis.
    pub fn nodes(&self) -> [usize; 3] {
        [self.cells[0] + 1, self.cells[1] + 1, self.cells[2] + 1]
    }

    pub fn total_cells(&self) -> usize {
        self.cells[0] * self.cells[1] * self.cells[2]
    }

    pub fn total_nodes(&self) -> usize {
        let n = self.nodes();
        n[0] * n[1] * n[2]
    }

    /// Position of node `(i, j, k)` (zero-based, node-centered lattice).
    pub fn node_pos(&self, i: usize, j: usize, k: usize) -> Vec3 {
        let h = self.spacing();
        self.bounds.min + Vec3::new(i as f64 * h.x, j as f64 * h.y, k as f64 * h.z)
    }

    /// Center of cell `(i, j, k)`.
    pub fn cell_center(&self, i: usize, j: usize, k: usize) -> Vec3 {
        let h = self.spacing();
        self.bounds.min
            + Vec3::new((i as f64 + 0.5) * h.x, (j as f64 + 0.5) * h.y, (k as f64 + 0.5) * h.z)
    }

    /// Row-major (x fastest) linear index of node `(i, j, k)`.
    #[inline]
    pub fn node_index(&self, i: usize, j: usize, k: usize) -> usize {
        let n = self.nodes();
        debug_assert!(i < n[0] && j < n[1] && k < n[2]);
        (k * n[1] + j) * n[0] + i
    }

    /// Cell containing point `p`, clamped to valid cells; `None` when `p` is
    /// outside the grid bounds (beyond a tiny tolerance).
    pub fn locate_cell(&self, p: Vec3) -> Option<[usize; 3]> {
        if !self.bounds.contains_eps(p, 1e-12 * self.bounds.size().max_abs_component()) {
            return None;
        }
        let h = self.spacing();
        let u = p - self.bounds.min;
        let clamp_axis = |v: f64, cells: usize| -> usize {
            let i = (v).floor() as isize;
            i.clamp(0, cells as isize - 1) as usize
        };
        Some([
            clamp_axis(u.x / h.x, self.cells[0]),
            clamp_axis(u.y / h.y, self.cells[1]),
            clamp_axis(u.z / h.z, self.cells[2]),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> RegularGrid {
        RegularGrid::new(Aabb::new(Vec3::ZERO, Vec3::new(2.0, 4.0, 8.0)), [2, 4, 8])
    }

    #[test]
    fn spacing_uniform() {
        assert_eq!(grid().spacing(), Vec3::splat(1.0));
    }

    #[test]
    fn counts() {
        let g = grid();
        assert_eq!(g.total_cells(), 64);
        assert_eq!(g.nodes(), [3, 5, 9]);
        assert_eq!(g.total_nodes(), 135);
    }

    #[test]
    fn node_positions_cover_bounds() {
        let g = grid();
        assert_eq!(g.node_pos(0, 0, 0), g.bounds.min);
        assert_eq!(g.node_pos(2, 4, 8), g.bounds.max);
    }

    #[test]
    fn cell_center_is_offset_half() {
        let g = grid();
        assert_eq!(g.cell_center(0, 0, 0), Vec3::splat(0.5));
    }

    #[test]
    fn node_index_unique_and_in_range() {
        let g = grid();
        let n = g.nodes();
        let mut seen = vec![false; g.total_nodes()];
        for k in 0..n[2] {
            for j in 0..n[1] {
                for i in 0..n[0] {
                    let idx = g.node_index(i, j, k);
                    assert!(!seen[idx]);
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn locate_cell_interior_and_boundary() {
        let g = grid();
        assert_eq!(g.locate_cell(Vec3::new(0.5, 0.5, 0.5)), Some([0, 0, 0]));
        // Upper corner belongs to the last cell.
        assert_eq!(g.locate_cell(g.bounds.max), Some([1, 3, 7]));
        assert_eq!(g.locate_cell(Vec3::new(-1.0, 0.0, 0.0)), None);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        RegularGrid::new(Aabb::unit(), [0, 1, 1]);
    }
}
