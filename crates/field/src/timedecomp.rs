//! Space-time block decomposition for pathlines.
//!
//! §4: "Each block has a time step associated with it, thus two blocks that
//! occupy the same space at different times are considered independent."
//! A pathline crossing time `t` between snapshots `k` and `k+1` needs the
//! spatial block at *both* snapshots resident to interpolate in time — which
//! is why §8 observes that "computing pathlines leads to many small reads
//! that can often overwhelm the file system".

use crate::block::BlockId;
use crate::decomp::BlockDecomposition;
use serde::{Deserialize, Serialize};
use streamline_math::Vec3;

/// A spatial block at one snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpaceTimeBlockId {
    pub space: BlockId,
    /// Snapshot index.
    pub step: u32,
}

impl std::fmt::Display for SpaceTimeBlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@t{}", self.space, self.step)
    }
}

/// The spatial decomposition crossed with uniformly indexed snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeBlockDecomposition {
    pub space: BlockDecomposition,
    /// Number of snapshots (>= 2).
    pub n_snapshots: usize,
    pub t_start: f64,
    pub t_end: f64,
}

impl TimeBlockDecomposition {
    pub fn new(space: BlockDecomposition, n_snapshots: usize, t_start: f64, t_end: f64) -> Self {
        assert!(n_snapshots >= 2, "pathlines need at least two snapshots");
        assert!(t_end > t_start, "empty time range");
        TimeBlockDecomposition { space, n_snapshots, t_start, t_end }
    }

    /// Total space-time blocks (the dataset a pathline run may touch).
    pub fn num_blocks(&self) -> usize {
        self.space.num_blocks() * self.n_snapshots
    }

    /// Number of time *intervals* (snapshot pairs).
    pub fn n_intervals(&self) -> usize {
        self.n_snapshots - 1
    }

    /// Snapshot time of index `step`.
    pub fn time_of(&self, step: u32) -> f64 {
        debug_assert!((step as usize) < self.n_snapshots);
        self.t_start + (self.t_end - self.t_start) * step as f64 / (self.n_snapshots - 1) as f64
    }

    /// Interval index `k` with `time_of(k) <= t <= time_of(k+1)`, clamped.
    pub fn interval_of(&self, t: f64) -> u32 {
        let dt = (self.t_end - self.t_start) / (self.n_snapshots - 1) as f64;
        let k = ((t - self.t_start) / dt).floor();
        (k.max(0.0) as u32).min(self.n_intervals() as u32 - 1)
    }

    /// The two space-time blocks a particle at `(p, t)` needs resident.
    pub fn blocks_needed(&self, p: Vec3, t: f64) -> Option<[SpaceTimeBlockId; 2]> {
        let space = self.space.locate(p)?;
        let k = self.interval_of(t);
        Some([SpaceTimeBlockId { space, step: k }, SpaceTimeBlockId { space, step: k + 1 }])
    }

    /// Linear index of a space-time block (for stores keyed by flat ids).
    pub fn flat_index(&self, id: SpaceTimeBlockId) -> usize {
        id.step as usize * self.space.num_blocks() + id.space.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_math::Aabb;

    fn decomp() -> TimeBlockDecomposition {
        let space = BlockDecomposition::new(Aabb::unit(), [2, 2, 2], [4, 4, 4], 1);
        TimeBlockDecomposition::new(space, 11, 0.0, 20.0)
    }

    #[test]
    fn counts_and_times() {
        let d = decomp();
        assert_eq!(d.num_blocks(), 8 * 11);
        assert_eq!(d.n_intervals(), 10);
        assert_eq!(d.time_of(0), 0.0);
        assert_eq!(d.time_of(10), 20.0);
        assert_eq!(d.time_of(5), 10.0);
    }

    #[test]
    fn interval_lookup() {
        let d = decomp();
        assert_eq!(d.interval_of(-1.0), 0);
        assert_eq!(d.interval_of(0.0), 0);
        assert_eq!(d.interval_of(1.9), 0);
        assert_eq!(d.interval_of(2.0), 1);
        assert_eq!(d.interval_of(19.99), 9);
        assert_eq!(d.interval_of(20.0), 9);
        assert_eq!(d.interval_of(25.0), 9);
    }

    #[test]
    fn blocks_needed_bracket_time() {
        let d = decomp();
        let p = Vec3::splat(0.3);
        let [a, b] = d.blocks_needed(p, 3.5).unwrap();
        assert_eq!(a.space, b.space);
        assert_eq!(a.step, 1);
        assert_eq!(b.step, 2);
        assert!(d.blocks_needed(Vec3::splat(5.0), 3.5).is_none());
    }

    #[test]
    fn flat_index_bijective() {
        let d = decomp();
        let mut seen = std::collections::HashSet::new();
        for step in 0..11u32 {
            for s in d.space.all_blocks() {
                let idx = d.flat_index(SpaceTimeBlockId { space: s, step });
                assert!(idx < d.num_blocks());
                assert!(seen.insert(idx));
            }
        }
        assert_eq!(seen.len(), d.num_blocks());
    }

    #[test]
    fn display() {
        assert_eq!(SpaceTimeBlockId { space: BlockId(4), step: 2 }.to_string(), "B4@t2");
    }
}
