//! Time-varying vector fields — the substrate for pathlines (§8).
//!
//! "The same considerations also apply to pathlines, which depend on
//! considerably larger amounts of data since it becomes necessary to
//! advance through multiple time steps of a simulation as well as space."
//!
//! An [`UnsteadyField`] is the analytic ground truth; simulations deliver it
//! as a sequence of sampled time steps, which [`TimeSeriesField`] models by
//! linear interpolation between snapshots — exactly what a pathline code
//! sees when it loads two consecutive time steps of a block.

use crate::analytic::VectorField;
use std::sync::Arc;
use streamline_math::Vec3;

/// A vector field `v(x, t)` defined over a closed time interval.
pub trait UnsteadyField: Send + Sync {
    fn eval(&self, p: Vec3, t: f64) -> Vec3;

    /// The `[t_start, t_end]` interval where the field is defined.
    fn time_range(&self) -> (f64, f64);

    fn name(&self) -> &'static str;
}

/// Any steady field viewed as an unsteady one over `[0, duration]`.
pub struct Steady<F> {
    pub inner: F,
    pub duration: f64,
}

impl<F: VectorField> UnsteadyField for Steady<F> {
    fn eval(&self, p: Vec3, _t: f64) -> Vec3 {
        self.inner.eval(p)
    }

    fn time_range(&self) -> (f64, f64) {
        (0.0, self.duration)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// The classic time-dependent double gyre (Shadden et al., the standard
/// pathline / FTLE benchmark): two rolls over `[0,2]×[0,1]` whose dividing
/// line oscillates with amplitude `eps` and angular frequency `omega`.
#[derive(Debug, Clone, Copy)]
pub struct UnsteadyDoubleGyre {
    pub amplitude: f64,
    pub eps: f64,
    pub omega: f64,
    pub duration: f64,
}

impl UnsteadyDoubleGyre {
    /// The parameters used throughout the LCS literature.
    pub fn standard() -> Self {
        UnsteadyDoubleGyre {
            amplitude: 0.1,
            eps: 0.25,
            omega: std::f64::consts::TAU / 10.0,
            duration: 20.0,
        }
    }
}

impl UnsteadyField for UnsteadyDoubleGyre {
    fn eval(&self, p: Vec3, t: f64) -> Vec3 {
        use std::f64::consts::PI;
        let a_t = self.eps * (self.omega * t).sin();
        let b_t = 1.0 - 2.0 * a_t;
        let f = a_t * p.x * p.x + b_t * p.x;
        let dfdx = 2.0 * a_t * p.x + b_t;
        Vec3::new(
            -PI * self.amplitude * (PI * f).sin() * (PI * p.y).cos(),
            PI * self.amplitude * (PI * f).cos() * (PI * p.y).sin() * dfdx,
            0.0,
        )
    }

    fn time_range(&self) -> (f64, f64) {
        (0.0, self.duration)
    }

    fn name(&self) -> &'static str {
        "unsteady-double-gyre"
    }
}

/// A field reconstructed from snapshots at fixed times — what a pathline
/// integrator actually works with. Linear interpolation between the two
/// bracketing snapshots; clamped at the ends.
pub struct TimeSeriesField {
    /// Snapshot times, strictly increasing, at least two.
    times: Vec<f64>,
    snapshots: Vec<Arc<dyn VectorField>>,
    label: &'static str,
}

impl TimeSeriesField {
    pub fn new(times: Vec<f64>, snapshots: Vec<Arc<dyn VectorField>>, label: &'static str) -> Self {
        assert!(times.len() >= 2, "need at least two snapshots");
        assert_eq!(times.len(), snapshots.len());
        assert!(times.windows(2).all(|w| w[1] > w[0]), "times must increase");
        TimeSeriesField { times, snapshots, label }
    }

    /// Sample an analytic unsteady field at `n_steps + 1` uniform times —
    /// the "output from a simulation" path for tests and experiments.
    pub fn discretize<U: UnsteadyField + Clone + 'static>(field: &U, n_steps: usize) -> Self {
        assert!(n_steps >= 1);
        let (t0, t1) = field.time_range();
        let times: Vec<f64> =
            (0..=n_steps).map(|i| t0 + (t1 - t0) * i as f64 / n_steps as f64).collect();
        let snapshots = times
            .iter()
            .map(|&t| Arc::new(FrozenSlice { field: field.clone(), t }) as Arc<dyn VectorField>)
            .collect();
        TimeSeriesField::new(times, snapshots, "discretized")
    }

    pub fn n_snapshots(&self) -> usize {
        self.times.len()
    }

    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Index `k` such that `times[k] <= t <= times[k+1]` (clamped).
    pub fn bracket(&self, t: f64) -> usize {
        if t <= self.times[0] {
            return 0;
        }
        let last = self.times.len() - 2;
        match self.times.binary_search_by(|x| x.partial_cmp(&t).expect("finite time")) {
            Ok(i) => i.min(last),
            Err(i) => (i.saturating_sub(1)).min(last),
        }
    }

    pub fn snapshot(&self, k: usize) -> &Arc<dyn VectorField> {
        &self.snapshots[k]
    }
}

impl UnsteadyField for TimeSeriesField {
    fn eval(&self, p: Vec3, t: f64) -> Vec3 {
        let k = self.bracket(t);
        let (ta, tb) = (self.times[k], self.times[k + 1]);
        let w = ((t - ta) / (tb - ta)).clamp(0.0, 1.0);
        self.snapshots[k].eval(p).lerp(self.snapshots[k + 1].eval(p), w)
    }

    fn time_range(&self) -> (f64, f64) {
        (self.times[0], *self.times.last().expect("nonempty"))
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

/// One time slice of an unsteady field, viewed as a steady field.
#[derive(Clone)]
pub struct FrozenSlice<U> {
    pub field: U,
    pub t: f64,
}

impl<U: UnsteadyField> VectorField for FrozenSlice<U> {
    fn eval(&self, p: Vec3) -> Vec3 {
        self.field.eval(p, self.t)
    }

    fn name(&self) -> &'static str {
        "frozen-slice"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::Uniform;

    #[test]
    fn steady_wrapper_is_time_independent() {
        let f = Steady { inner: Uniform(Vec3::X), duration: 5.0 };
        assert_eq!(f.eval(Vec3::ZERO, 0.0), f.eval(Vec3::ZERO, 4.9));
        assert_eq!(f.time_range(), (0.0, 5.0));
    }

    #[test]
    fn double_gyre_reduces_to_steady_at_eps_zero() {
        let mut g = UnsteadyDoubleGyre::standard();
        g.eps = 0.0;
        let p = Vec3::new(0.7, 0.3, 0.0);
        assert!(g.eval(p, 0.0).distance(g.eval(p, 7.3)) < 1e-14);
    }

    #[test]
    fn double_gyre_oscillates() {
        let g = UnsteadyDoubleGyre::standard();
        let p = Vec3::new(0.7, 0.3, 0.0);
        // A quarter period shifts the gyre boundary; the velocity changes.
        assert!(g.eval(p, 0.0).distance(g.eval(p, 2.5)) > 1e-3);
        // Full period returns.
        assert!(g.eval(p, 0.0).distance(g.eval(p, 10.0)) < 1e-12);
    }

    #[test]
    fn double_gyre_walls_impermeable_at_all_times() {
        let g = UnsteadyDoubleGyre::standard();
        for t in [0.0, 1.3, 4.7, 9.9] {
            assert!(g.eval(Vec3::new(0.0, 0.5, 0.0), t).x.abs() < 1e-12);
            assert!(g.eval(Vec3::new(2.0, 0.5, 0.0), t).x.abs() < 1e-12);
            assert!(g.eval(Vec3::new(0.5, 0.0, 0.0), t).y.abs() < 1e-12);
            assert!(g.eval(Vec3::new(0.5, 1.0, 0.0), t).y.abs() < 1e-12);
        }
    }

    #[test]
    fn discretized_matches_analytic_at_snapshots_and_interpolates() {
        let g = UnsteadyDoubleGyre::standard();
        let ts = TimeSeriesField::discretize(&g, 40);
        let p = Vec3::new(1.2, 0.6, 0.0);
        // Exact at snapshot times.
        for &t in ts.times().iter().step_by(7) {
            assert!(ts.eval(p, t).distance(g.eval(p, t)) < 1e-12);
        }
        // Close in between (dt = 0.5, smooth field).
        let mid = 3.25;
        assert!(ts.eval(p, mid).distance(g.eval(p, mid)) < 5e-3);
        // Clamped outside.
        assert_eq!(ts.eval(p, -1.0), ts.eval(p, 0.0));
    }

    #[test]
    fn bracket_indices() {
        let g = UnsteadyDoubleGyre::standard();
        let ts = TimeSeriesField::discretize(&g, 10); // times 0, 2, 4, ..
        assert_eq!(ts.bracket(-0.5), 0);
        assert_eq!(ts.bracket(0.0), 0);
        assert_eq!(ts.bracket(1.0), 0);
        assert_eq!(ts.bracket(2.0), 1);
        assert_eq!(ts.bracket(19.9), 9);
        assert_eq!(ts.bracket(25.0), 9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_snapshot_rejected() {
        TimeSeriesField::new(vec![0.0], vec![Arc::new(Uniform(Vec3::X))], "x");
    }
}
