//! Synthetic analog of the GenASiS core-collapse supernova magnetic field
//! (§3.2, Figure 1).
//!
//! The paper seeds streamlines "outside the proto-neutron star" in "the
//! complex magnetic field inside the supernova shock front". What the three
//! algorithms care about is the *shape* of that field, not its MHD pedigree:
//!
//! * strong differential rotation around the core axis (streamlines wind
//!   tightly near the center),
//! * a shock shell at radius `r_shock` that deflects trajectories outward,
//! * several off-axis attracting vortex tubes ("critical points or invariant
//!   manifolds of strongly attracting nature draw streamlines towards them",
//!   §3.1) so that streamline density becomes spatially non-uniform — the
//!   regime where Static Allocation load-imbalances and Load On Demand
//!   thrashes its cache,
//! * multi-scale solenoidal perturbations so trajectories cross many blocks.

use crate::analytic::VectorField;
use rand::Rng;
use streamline_math::{rng, Vec3};

/// A vortex tube attractor: swirl around an axis plus inward pull.
#[derive(Debug, Clone, Copy)]
struct VortexTube {
    center: Vec3,
    axis: Vec3,
    /// Swirl strength.
    circulation: f64,
    /// Inward (attracting) strength.
    attraction: f64,
    /// Gaussian radius of influence.
    radius: f64,
}

impl VortexTube {
    fn eval(&self, p: Vec3) -> Vec3 {
        let d = p - self.center;
        // Component of d perpendicular to the tube axis.
        let axial = self.axis * d.dot(self.axis);
        let radial = d - axial;
        let r2 = radial.norm_sq();
        let w = (-r2 / (self.radius * self.radius)).exp();
        let swirl = self.axis.cross(radial) * self.circulation;
        let pull = -radial * self.attraction;
        (swirl + pull) * w
    }
}

/// One solenoidal Fourier mode: `v = curl(a sin(k·x + φ)) = (k × a) cos(k·x + φ)`,
/// exactly divergence-free.
#[derive(Debug, Clone, Copy)]
struct FourierMode {
    k: Vec3,
    k_cross_a: Vec3,
    phase: f64,
}

impl FourierMode {
    fn eval(&self, p: Vec3) -> Vec3 {
        self.k_cross_a * (self.k.dot(p) + self.phase).cos()
    }
}

/// Synthetic supernova magnetic-field analog over a cube centred at the
/// origin. Built deterministically from `seed`.
#[derive(Debug, Clone)]
pub struct SupernovaField {
    /// Half-width of the domain cube the field is designed for.
    pub half_width: f64,
    /// Proto-neutron-star core radius (fast rotation inside).
    pub r_core: f64,
    /// Shock front radius.
    pub r_shock: f64,
    tubes: Vec<VortexTube>,
    modes: Vec<FourierMode>,
}

impl SupernovaField {
    /// Build the standard configuration for a domain `[-h, h]^3`.
    pub fn new(half_width: f64, seed: u64) -> Self {
        let h = half_width;
        let mut rng_t = rng::stream(seed, "supernova-tubes");
        let mut tubes = Vec::new();
        // Six attracting vortex tubes scattered in the shock interior.
        for _ in 0..6 {
            let center = rng::point_in_ball(&mut rng_t, Vec3::ZERO, 0.55 * h);
            let axis = Vec3::new(
                rng_t.gen_range(-1.0..=1.0),
                rng_t.gen_range(-1.0..=1.0),
                rng_t.gen_range(-1.0..=1.0),
            )
            .normalized()
            .unwrap_or(Vec3::Z);
            tubes.push(VortexTube {
                center,
                axis,
                circulation: rng_t.gen_range(2.0..5.0),
                attraction: rng_t.gen_range(0.8..2.0),
                radius: rng_t.gen_range(0.08..0.18) * h,
            });
        }
        let mut rng_m = rng::stream(seed, "supernova-modes");
        let mut modes = Vec::new();
        // Multi-scale solenoidal turbulence proxy: 8 modes, wavenumbers 2-6,
        // strong enough that field lines wander across many blocks before
        // terminating — the data-dependent non-locality §1 emphasizes.
        for _ in 0..8 {
            let k = Vec3::new(
                rng_m.gen_range(-6.0..=6.0),
                rng_m.gen_range(-6.0..=6.0),
                rng_m.gen_range(-6.0..=6.0),
            ) / h;
            let a = Vec3::new(
                rng_m.gen_range(-1.0..=1.0),
                rng_m.gen_range(-1.0..=1.0),
                rng_m.gen_range(-1.0..=1.0),
            );
            let amp = rng_m.gen_range(0.15..0.45);
            let k_cross_a = k.cross(a).normalized().unwrap_or(Vec3::X) * amp;
            modes.push(FourierMode {
                k,
                k_cross_a,
                phase: rng_m.gen_range(0.0..std::f64::consts::TAU),
            });
        }
        SupernovaField { half_width, r_core: 0.25 * h, r_shock: 0.75 * h, tubes, modes }
    }
}

impl VectorField for SupernovaField {
    fn eval(&self, p: Vec3) -> Vec3 {
        let r = p.norm();
        // Differential rotation about z: fast inside the core, decaying as
        // 1/(1 + (r/r_core)^2) outside — tight winding near the center.
        let omega = 3.0 / (1.0 + (r / self.r_core).powi(2));
        let mut v = Vec3::new(-omega * p.y, omega * p.x, 0.0);

        // Shock shell: outward radial pulse centred on r_shock.
        let shell_w = 0.08 * self.half_width;
        let shock = (-((r - self.r_shock) / shell_w).powi(2)).exp();
        if r > 1e-12 {
            v += (p / r) * (0.8 * shock);
        }

        // Attracting vortex tubes.
        for t in &self.tubes {
            v += t.eval(p);
        }
        // Solenoidal fine structure.
        for m in &self.modes {
            v += m.eval(p);
        }
        v
    }

    fn name(&self) -> &'static str {
        "supernova"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = SupernovaField::new(1.0, 9);
        let b = SupernovaField::new(1.0, 9);
        let p = Vec3::new(0.2, -0.4, 0.1);
        assert_eq!(a.eval(p), b.eval(p));
    }

    #[test]
    fn seeds_change_field() {
        let a = SupernovaField::new(1.0, 9);
        let b = SupernovaField::new(1.0, 10);
        let p = Vec3::new(0.2, -0.4, 0.1);
        assert!(a.eval(p).distance(b.eval(p)) > 1e-9);
    }

    #[test]
    fn finite_everywhere_in_domain() {
        let f = SupernovaField::new(1.0, 3);
        for i in -4..=4 {
            for j in -4..=4 {
                for k in -4..=4 {
                    let p = Vec3::new(i as f64, j as f64, k as f64) * 0.25;
                    assert!(f.eval(p).is_finite(), "non-finite at {p:?}");
                }
            }
        }
    }

    #[test]
    fn core_rotation_dominates_near_center() {
        let f = SupernovaField::new(1.0, 3);
        // Near the axis at small radius the azimuthal speed should be
        // significant (fast core rotation).
        let p = Vec3::new(0.05, 0.0, 0.0);
        let v = f.eval(p);
        assert!(v.norm() > 0.05, "core should rotate, |v| = {}", v.norm());
    }

    #[test]
    fn tubes_attract() {
        let f = SupernovaField::new(1.0, 3);
        // At a point offset from a tube center the field should have an
        // inward component toward at least one tube (statistical check on
        // the constructed tubes directly).
        let t = &f.tubes[0];
        let radial_dir = t.axis.cross(Vec3::X).normalized().unwrap_or(Vec3::Y);
        let p = t.center + radial_dir * (0.5 * t.radius);
        let v = t.eval(p);
        // Inward means v has negative dot with the perpendicular offset.
        let d = p - t.center;
        let perp = d - t.axis * d.dot(t.axis);
        assert!(v.dot(perp) < 0.0);
    }
}
