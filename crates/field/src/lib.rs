//! Vector-field data substrate.
//!
//! Everything the SC09 streamline algorithms consume lives here: the
//! [`VectorField`] trait with analytic test fields and the three application
//! fields of the paper (§3.2 — supernova, tokamak, thermal hydraulics), the
//! regular-grid block decomposition (§4: "the problem mesh is decomposed into
//! a number of spatially disjoint blocks"), the node-centered sampling
//! pipeline that mimics the paper's face→cell→node resampling of GenASiS
//! output, trilinear interpolation inside a block, and seed-set generators
//! for the sparse/dense initial conditions of §5.

pub mod analytic;
pub mod block;
pub mod dataset;
pub mod decomp;
pub mod grid;
pub mod group;
pub mod interp;
pub mod rectilinear;
pub mod sample;
pub mod sampler;
pub mod seeds;
pub mod supernova;
pub mod thermal;
pub mod timedecomp;
pub mod tokamak;
pub mod unsteady;

pub use analytic::VectorField;
pub use block::{Block, BlockId, BlockShapeError};
pub use dataset::{Dataset, DatasetConfig};
pub use decomp::BlockDecomposition;
pub use grid::RegularGrid;
pub use group::{simd_isa, GroupSampler, GROUP_WIDTH};
pub use sampler::{CellSampler, SamplerStats};
pub use seeds::SeedSet;
