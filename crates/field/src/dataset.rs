//! The three application problems of §3.2, packaged as self-describing
//! datasets: a block decomposition, a field, a sampling pipeline and the
//! paper's sparse/dense seeding scenarios.

use crate::analytic::VectorField;
use crate::block::{Block, BlockId};
use crate::decomp::BlockDecomposition;
use crate::sample::{sample_block, SamplingMode};
use crate::seeds::{dense_ball, dense_circle, sparse_lattice, sparse_random, SeedSet};
use crate::supernova::SupernovaField;
use crate::thermal::ThermalHydraulicsField;
use crate::tokamak::TokamakField;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use streamline_math::{rng, Aabb, Vec3};

/// Sparse or dense initial seeding (§3.1 "Seed Set Distribution").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Seeding {
    Sparse,
    Dense,
}

impl Seeding {
    pub fn label(self) -> &'static str {
        match self {
            Seeding::Sparse => "sparse",
            Seeding::Dense => "dense",
        }
    }
}

/// Resolution and determinism knobs for building a dataset.
///
/// The paper uses 512 blocks of 1M cells; the default here keeps the same
/// 512-block topology at laptop-scale cell counts (the I/O cost model charges
/// paper-scale block sizes separately — see `streamline_iosim::DiskModel`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    pub blocks_per_axis: [usize; 3],
    pub cells_per_block: [usize; 3],
    pub ghost: usize,
    /// Master seed for field construction and seed placement.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            blocks_per_axis: [8, 8, 8],
            cells_per_block: [16, 16, 16],
            ghost: 1,
            seed: 42,
        }
    }
}

impl DatasetConfig {
    /// A small configuration for unit tests (64 blocks, tiny cells).
    pub fn tiny() -> Self {
        DatasetConfig { blocks_per_axis: [4, 4, 4], cells_per_block: [8, 8, 8], ghost: 1, seed: 42 }
    }
}

/// Which application problem a dataset models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Application {
    Astrophysics,
    Fusion,
    ThermalHydraulics,
    /// A user-supplied field (built with [`Dataset::custom`]).
    Custom,
}

/// A fully specified dataset: decomposition + field + sampling pipeline.
///
/// ```
/// use streamline_field::dataset::{Dataset, DatasetConfig, Seeding};
///
/// let ds = Dataset::fusion(DatasetConfig::tiny());
/// assert_eq!(ds.decomp.num_blocks(), 64);
/// let seeds = ds.seeds_with_count(Seeding::Sparse, 100);
/// assert!(seeds.points.iter().all(|&p| ds.decomp.domain.contains(p)));
/// let block = ds.build_block(streamline_field::BlockId(7));
/// assert!(block.sample(block.bounds.center()).unwrap().is_finite());
/// ```
#[derive(Clone)]
pub struct Dataset {
    pub name: &'static str,
    pub application: Application,
    pub decomp: BlockDecomposition,
    pub field: Arc<dyn VectorField>,
    pub sampling: SamplingMode,
    config: DatasetConfig,
    /// Torus geometry for fusion seeding (major, minor radius).
    torus: Option<(f64, f64)>,
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("name", &self.name)
            .field("decomp", &self.decomp)
            .field("sampling", &self.sampling)
            .finish()
    }
}

impl Dataset {
    /// Astrophysics / supernova (§3.2): supernova field over `[-1,1]^3`,
    /// sampled through the paper's face→cell→node pipeline.
    pub fn astrophysics(cfg: DatasetConfig) -> Dataset {
        let domain = Aabb::centered_cube(1.0);
        Dataset {
            name: "astrophysics",
            application: Application::Astrophysics,
            decomp: BlockDecomposition::new(
                domain,
                cfg.blocks_per_axis,
                cfg.cells_per_block,
                cfg.ghost,
            ),
            field: Arc::new(SupernovaField::new(1.0, cfg.seed)),
            sampling: SamplingMode::FaceCellNode,
            config: cfg,
            torus: None,
        }
    }

    /// Tokamak / magnetically confined fusion (§3.2).
    pub fn fusion(cfg: DatasetConfig) -> Dataset {
        let (r_major, r_minor) = (3.0, 1.0);
        // Domain box padding the torus slightly.
        let pad = 0.2;
        let half_xy = r_major + r_minor + pad;
        let half_z = r_minor + pad;
        let domain =
            Aabb::new(Vec3::new(-half_xy, -half_xy, -half_z), Vec3::new(half_xy, half_xy, half_z));
        Dataset {
            name: "fusion",
            application: Application::Fusion,
            decomp: BlockDecomposition::new(
                domain,
                cfg.blocks_per_axis,
                cfg.cells_per_block,
                cfg.ghost,
            ),
            field: Arc::new(TokamakField::standard(r_major, r_minor)),
            sampling: SamplingMode::Direct,
            config: cfg,
            torus: Some((r_major, r_minor)),
        }
    }

    /// Thermal hydraulics mixing box (§3.2) over the unit cube.
    pub fn thermal_hydraulics(cfg: DatasetConfig) -> Dataset {
        Dataset {
            name: "thermal-hydraulics",
            application: Application::ThermalHydraulics,
            decomp: BlockDecomposition::new(
                ThermalHydraulicsField::domain(),
                cfg.blocks_per_axis,
                cfg.cells_per_block,
                cfg.ghost,
            ),
            field: Arc::new(ThermalHydraulicsField::standard()),
            sampling: SamplingMode::Direct,
            config: cfg,
            torus: None,
        }
    }

    /// A dataset over an arbitrary field and decomposition — the hook for
    /// users bringing their own data.
    pub fn custom(
        name: &'static str,
        decomp: BlockDecomposition,
        field: Arc<dyn VectorField>,
        sampling: SamplingMode,
        config: DatasetConfig,
    ) -> Dataset {
        Dataset {
            name,
            application: Application::Custom,
            decomp,
            field,
            sampling,
            config,
            torus: None,
        }
    }

    /// Build (sample) the node data for one block.
    pub fn build_block(&self, id: BlockId) -> Block {
        sample_block(self.sampling, self.field.as_ref(), &self.decomp, id)
    }

    /// The paper's seed counts for this application and seeding.
    pub fn paper_seed_count(&self, seeding: Seeding) -> usize {
        match (self.application, seeding) {
            (Application::Astrophysics, _) => 20_000,
            (Application::Fusion, _) => 10_000,
            (Application::ThermalHydraulics, Seeding::Sparse) => 4_096,
            (Application::ThermalHydraulics, Seeding::Dense) => 22_000,
            (Application::Custom, _) => 1_000,
        }
    }

    /// Seed set at the paper's counts.
    pub fn seeds(&self, seeding: Seeding) -> SeedSet {
        self.seeds_with_count(seeding, self.paper_seed_count(seeding))
    }

    /// Seed set with an explicit count (for scaled-down tests/benches).
    pub fn seeds_with_count(&self, seeding: Seeding, n: usize) -> SeedSet {
        let seed = self.config.seed;
        let mut s = match (self.application, seeding) {
            (Application::Astrophysics, Seeding::Sparse) => {
                // "sparse ... seed points sets": spread through the volume,
                // inset from the boundary so streamlines have room to evolve.
                sparse_random(&self.decomp.domain, n, 0.25, seed)
            }
            (Application::Astrophysics, Seeding::Dense) => {
                // "seeded outside the proto-neutron star": a cluster between
                // the core and the shock front, where rotation and the shock
                // pulse disperse trajectories through the domain.
                let f = SupernovaField::new(1.0, seed);
                let center = Vec3::new(0.6 * f.r_shock, 0.0, 0.0);
                dense_ball(center, 0.18, n, seed)
            }
            (Application::Fusion, Seeding::Sparse) => self.fusion_sparse(n),
            (Application::Fusion, Seeding::Dense) => {
                let (r_major, _) = self.torus.expect("fusion dataset has torus geometry");
                dense_ball(Vec3::new(r_major, 0.0, 0.0), 0.25, n, seed)
            }
            (Application::ThermalHydraulics, Seeding::Sparse) => {
                // "4,096 seed points evenly on a 16x16x16 grid" (scaled when
                // n differs: generate the covering lattice, truncate to n).
                let per_axis = (n as f64).cbrt().ceil().max(1.0) as usize;
                let mut s = sparse_lattice(&self.decomp.domain, [per_axis; 3]);
                s.points.truncate(n);
                s
            }
            (Application::ThermalHydraulics, Seeding::Dense) => {
                // "22,000 streamlines in the shape of a circle immediately
                // around the inlet".
                let inlet = ThermalHydraulicsField::INLET_WARM + Vec3::new(0.02, 0.0, 0.0);
                dense_circle(inlet, Vec3::X, 0.05, n, seed)
            }
            (Application::Custom, Seeding::Sparse) => {
                sparse_random(&self.decomp.domain, n, 0.25, seed)
            }
            (Application::Custom, Seeding::Dense) => {
                let d = self.decomp.domain;
                dense_ball(d.center(), 0.1 * d.size().max_abs_component(), n, seed)
            }
        };
        s.label = format!("{}-{}", self.name, seeding.label());
        s
    }

    /// Sparse fusion seeds: uniform over the torus interior (minor radius
    /// < 0.85·a) so every seed lies in the confined plasma.
    fn fusion_sparse(&self, n: usize) -> SeedSet {
        let (r_major, r_minor) = self.torus.expect("fusion dataset has torus geometry");
        let mut r = rng::stream(self.config.seed, "fusion-sparse");
        let mut points = Vec::with_capacity(n);
        while points.len() < n {
            let p = rng::point_in_aabb(&mut r, &self.decomp.domain);
            let rho = (p.x * p.x + p.y * p.y).sqrt();
            let dr = rho - r_major;
            let minor = (dr * dr + p.z * p.z).sqrt();
            if minor < 0.85 * r_minor {
                points.push(p);
            }
        }
        SeedSet { label: String::new(), points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_build_blocks() {
        let cfg = DatasetConfig::tiny();
        for ds in
            [Dataset::astrophysics(cfg), Dataset::fusion(cfg), Dataset::thermal_hydraulics(cfg)]
        {
            let id = BlockId(7);
            let b = ds.build_block(id);
            assert_eq!(b.id, id);
            assert_eq!(b.bounds, ds.decomp.block_bounds(id));
            // Block data should not be all-zero for these fields.
            assert!(b.data.iter().any(|v| v.iter().any(|&c| c != 0.0)), "{}", ds.name);
            // Every interior point samples finitely.
            let c = b.bounds.center();
            assert!(b.sample(c).unwrap().is_finite());
        }
    }

    #[test]
    fn paper_seed_counts() {
        let cfg = DatasetConfig::tiny();
        assert_eq!(Dataset::astrophysics(cfg).paper_seed_count(Seeding::Sparse), 20_000);
        assert_eq!(Dataset::fusion(cfg).paper_seed_count(Seeding::Dense), 10_000);
        let th = Dataset::thermal_hydraulics(cfg);
        assert_eq!(th.paper_seed_count(Seeding::Sparse), 4_096);
        assert_eq!(th.paper_seed_count(Seeding::Dense), 22_000);
    }

    #[test]
    fn seeds_are_inside_domain() {
        let cfg = DatasetConfig::tiny();
        for ds in
            [Dataset::astrophysics(cfg), Dataset::fusion(cfg), Dataset::thermal_hydraulics(cfg)]
        {
            for seeding in [Seeding::Sparse, Seeding::Dense] {
                let s = ds.seeds_with_count(seeding, 200);
                assert_eq!(s.len(), 200);
                let inside = s.points.iter().filter(|&&p| ds.decomp.domain.contains(p)).count();
                assert_eq!(inside, 200, "{} {}", ds.name, seeding.label());
            }
        }
    }

    #[test]
    fn dense_seeds_are_localized_sparse_are_not() {
        let cfg = DatasetConfig::tiny();
        let ds = Dataset::thermal_hydraulics(cfg);
        let dense = ds.seeds_with_count(Seeding::Dense, 500);
        let sparse = ds.seeds_with_count(Seeding::Sparse, 512);
        let dense_extent = dense.bounds().unwrap().size().max_abs_component();
        let sparse_extent = sparse.bounds().unwrap().size().max_abs_component();
        assert!(
            dense_extent < 0.3 * sparse_extent,
            "dense extent {dense_extent} vs sparse {sparse_extent}"
        );
    }

    #[test]
    fn fusion_sparse_seeds_inside_torus() {
        let ds = Dataset::fusion(DatasetConfig::tiny());
        let s = ds.seeds_with_count(Seeding::Sparse, 100);
        for &p in &s.points {
            let rho = (p.x * p.x + p.y * p.y).sqrt();
            let minor = ((rho - 3.0).powi(2) + p.z * p.z).sqrt();
            assert!(minor < 0.85, "seed outside plasma: {p:?}");
        }
    }

    #[test]
    fn seeding_deterministic() {
        let cfg = DatasetConfig::tiny();
        let a = Dataset::astrophysics(cfg).seeds_with_count(Seeding::Sparse, 64);
        let b = Dataset::astrophysics(cfg).seeds_with_count(Seeding::Sparse, 64);
        assert_eq!(a.points, b.points);
    }
}
