//! A resident data block: node-centered vector samples over one tile of the
//! decomposed mesh, plus ghost layers.
//!
//! Blocks are the unit of I/O, caching and ownership in all three algorithms.
//! The in-memory payload is `f32` (matching typical simulation output); all
//! arithmetic on sampled values is done in `f64`.

use crate::interp;
use serde::{Deserialize, Serialize};
use std::fmt;
use streamline_math::{Aabb, Vec3};

/// Identifier of a block within a [`crate::BlockDecomposition`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl BlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A block shape the interpolation stencil cannot handle: trilinear
/// interpolation needs at least one cell (two nodes) per axis, or the
/// `(f.floor() as usize).min(n - 2)` corner clamp underflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockShapeError {
    pub id: BlockId,
    pub nodes: [usize; 3],
}

impl fmt::Display for BlockShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block {} has a degenerate lattice {:?}: every axis needs >= 2 nodes",
            self.id, self.nodes
        )
    }
}

impl std::error::Error for BlockShapeError {}

/// Node-centered vector samples over one block (including ghost nodes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    pub id: BlockId,
    /// Core spatial bounds (excludes the ghost margin).
    pub bounds: Aabb,
    /// Ghost layers on every face, in cells.
    pub ghost: usize,
    /// Node counts per axis, including ghost nodes. Every axis is >= 2.
    pub nodes: [usize; 3],
    /// Cell spacing.
    pub spacing: Vec3,
    /// Reciprocal cell spacing, hoisted at construction so the sampling hot
    /// path multiplies instead of divides.
    pub inv_spacing: Vec3,
    /// Position of node (0,0,0) — `bounds.min − ghost·spacing`.
    pub origin: Vec3,
    /// Row-major (x fastest) `[vx, vy, vz]` per node.
    pub data: Vec<[f32; 3]>,
}

impl Block {
    /// Allocate a zero-filled block. `nodes` includes ghost nodes.
    ///
    /// Panics on a degenerate lattice (< 2 nodes on any axis); use
    /// [`Self::try_zeroed`] when the shape comes from untrusted input.
    pub fn zeroed(
        id: BlockId,
        bounds: Aabb,
        ghost: usize,
        nodes: [usize; 3],
        spacing: Vec3,
    ) -> Self {
        Self::try_zeroed(id, bounds, ghost, nodes, spacing).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Allocate a zero-filled block, rejecting lattices with fewer than two
    /// nodes on any axis (the trilinear stencil needs a full cell).
    pub fn try_zeroed(
        id: BlockId,
        bounds: Aabb,
        ghost: usize,
        nodes: [usize; 3],
        spacing: Vec3,
    ) -> Result<Self, BlockShapeError> {
        if nodes.iter().any(|&n| n < 2) {
            return Err(BlockShapeError { id, nodes });
        }
        let origin = bounds.min - spacing * ghost as f64;
        let inv_spacing = Vec3::new(1.0 / spacing.x, 1.0 / spacing.y, 1.0 / spacing.z);
        Ok(Block {
            id,
            bounds,
            ghost,
            nodes,
            spacing,
            inv_spacing,
            origin,
            data: vec![[0.0; 3]; nodes[0] * nodes[1] * nodes[2]],
        })
    }

    /// Linear index of node `(i, j, k)` in ghost-inclusive coordinates.
    #[inline]
    pub fn node_index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nodes[0] && j < self.nodes[1] && k < self.nodes[2]);
        (k * self.nodes[1] + j) * self.nodes[0] + i
    }

    /// Position of node `(i, j, k)` in ghost-inclusive coordinates.
    #[inline]
    pub fn node_pos(&self, i: usize, j: usize, k: usize) -> Vec3 {
        self.origin
            + Vec3::new(
                i as f64 * self.spacing.x,
                j as f64 * self.spacing.y,
                k as f64 * self.spacing.z,
            )
    }

    /// Set the sample at node `(i, j, k)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: Vec3) {
        let idx = self.node_index(i, j, k);
        self.data[idx] = v.to_f32_array();
    }

    /// Sample at node `(i, j, k)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> Vec3 {
        Vec3::from_f32_array(self.data[self.node_index(i, j, k)])
    }

    /// Region where trilinear interpolation is defined (the ghost-extended
    /// node lattice extent).
    pub fn interp_bounds(&self) -> Aabb {
        let hi = self.node_pos(self.nodes[0] - 1, self.nodes[1] - 1, self.nodes[2] - 1);
        Aabb::new(self.origin, hi)
    }

    /// True when `p` lies in the block's core region.
    #[inline]
    pub fn contains_core(&self, p: Vec3) -> bool {
        self.bounds.contains(p)
    }

    /// Trilinear interpolation of the field at `p`. Valid anywhere in
    /// [`Self::interp_bounds`] (core plus ghost margin); `None` outside.
    #[inline]
    pub fn sample(&self, p: Vec3) -> Option<Vec3> {
        interp::trilinear(self, p)
    }

    /// In-memory payload size in bytes (node data only).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Block {
        // 2x2x2 cells + 1 ghost layer => 5 nodes per axis over core [0,2]^3.
        Block::zeroed(
            BlockId(3),
            Aabb::new(Vec3::ZERO, Vec3::splat(2.0)),
            1,
            [5, 5, 5],
            Vec3::splat(1.0),
        )
    }

    #[test]
    fn origin_offset_by_ghost() {
        let b = block();
        assert_eq!(b.origin, Vec3::splat(-1.0));
        assert_eq!(b.node_pos(0, 0, 0), Vec3::splat(-1.0));
        assert_eq!(b.node_pos(4, 4, 4), Vec3::splat(3.0));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = block();
        b.set(1, 2, 3, Vec3::new(0.5, -1.5, 2.5));
        assert_eq!(b.get(1, 2, 3), Vec3::new(0.5, -1.5, 2.5));
        assert_eq!(b.get(0, 0, 0), Vec3::ZERO);
    }

    #[test]
    fn interp_bounds_cover_core_plus_ghost() {
        let b = block();
        let ib = b.interp_bounds();
        assert_eq!(ib.min, Vec3::splat(-1.0));
        assert_eq!(ib.max, Vec3::splat(3.0));
        assert!(ib.contains(b.bounds.min) && ib.contains(b.bounds.max));
    }

    #[test]
    fn payload_bytes_counts_all_nodes() {
        assert_eq!(block().payload_bytes(), 125 * 12);
    }

    #[test]
    fn display_format() {
        assert_eq!(BlockId(17).to_string(), "B17");
    }

    #[test]
    fn degenerate_lattice_is_rejected_with_typed_error() {
        // Regression: a single-node axis used to underflow the `n - 2`
        // corner clamp inside trilinear interpolation. Such shapes must be
        // refused at construction instead.
        for nodes in [[1, 5, 5], [5, 1, 5], [5, 5, 1], [0, 5, 5], [1, 1, 1]] {
            let err = Block::try_zeroed(
                BlockId(7),
                Aabb::new(Vec3::ZERO, Vec3::splat(2.0)),
                0,
                nodes,
                Vec3::splat(1.0),
            )
            .expect_err("degenerate lattice must be rejected");
            assert_eq!(err, BlockShapeError { id: BlockId(7), nodes });
            assert!(err.to_string().contains("degenerate lattice"));
        }
    }

    #[test]
    fn minimal_valid_lattice_is_accepted() {
        let b = Block::try_zeroed(
            BlockId(0),
            Aabb::new(Vec3::ZERO, Vec3::splat(1.0)),
            0,
            [2, 2, 2],
            Vec3::splat(1.0),
        )
        .expect("one cell per axis is the smallest valid block");
        assert!(b.sample(Vec3::splat(0.5)).is_some());
    }

    #[test]
    fn inv_spacing_is_reciprocal_of_spacing() {
        let b = Block::zeroed(
            BlockId(0),
            Aabb::new(Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0)),
            0,
            [3, 3, 3],
            Vec3::new(0.5, 0.25, 2.0),
        );
        assert_eq!(b.inv_spacing, Vec3::new(2.0, 4.0, 0.5));
    }
}
