//! A resident data block: node-centered vector samples over one tile of the
//! decomposed mesh, plus ghost layers.
//!
//! Blocks are the unit of I/O, caching and ownership in all three algorithms.
//! The in-memory payload is `f32` (matching typical simulation output); all
//! arithmetic on sampled values is done in `f64`.

use crate::interp;
use serde::{Deserialize, Serialize};
use std::fmt;
use streamline_math::{Aabb, Vec3};

/// Identifier of a block within a [`crate::BlockDecomposition`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl BlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Node-centered vector samples over one block (including ghost nodes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    pub id: BlockId,
    /// Core spatial bounds (excludes the ghost margin).
    pub bounds: Aabb,
    /// Ghost layers on every face, in cells.
    pub ghost: usize,
    /// Node counts per axis, including ghost nodes.
    pub nodes: [usize; 3],
    /// Cell spacing.
    pub spacing: Vec3,
    /// Position of node (0,0,0) — `bounds.min − ghost·spacing`.
    pub origin: Vec3,
    /// Row-major (x fastest) `[vx, vy, vz]` per node.
    pub data: Vec<[f32; 3]>,
}

impl Block {
    /// Allocate a zero-filled block. `nodes` includes ghost nodes.
    pub fn zeroed(
        id: BlockId,
        bounds: Aabb,
        ghost: usize,
        nodes: [usize; 3],
        spacing: Vec3,
    ) -> Self {
        let origin = bounds.min - spacing * ghost as f64;
        Block {
            id,
            bounds,
            ghost,
            nodes,
            spacing,
            origin,
            data: vec![[0.0; 3]; nodes[0] * nodes[1] * nodes[2]],
        }
    }

    /// Linear index of node `(i, j, k)` in ghost-inclusive coordinates.
    #[inline]
    pub fn node_index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nodes[0] && j < self.nodes[1] && k < self.nodes[2]);
        (k * self.nodes[1] + j) * self.nodes[0] + i
    }

    /// Position of node `(i, j, k)` in ghost-inclusive coordinates.
    #[inline]
    pub fn node_pos(&self, i: usize, j: usize, k: usize) -> Vec3 {
        self.origin
            + Vec3::new(
                i as f64 * self.spacing.x,
                j as f64 * self.spacing.y,
                k as f64 * self.spacing.z,
            )
    }

    /// Set the sample at node `(i, j, k)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: Vec3) {
        let idx = self.node_index(i, j, k);
        self.data[idx] = v.to_f32_array();
    }

    /// Sample at node `(i, j, k)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> Vec3 {
        Vec3::from_f32_array(self.data[self.node_index(i, j, k)])
    }

    /// Region where trilinear interpolation is defined (the ghost-extended
    /// node lattice extent).
    pub fn interp_bounds(&self) -> Aabb {
        let hi = self.node_pos(self.nodes[0] - 1, self.nodes[1] - 1, self.nodes[2] - 1);
        Aabb::new(self.origin, hi)
    }

    /// True when `p` lies in the block's core region.
    #[inline]
    pub fn contains_core(&self, p: Vec3) -> bool {
        self.bounds.contains(p)
    }

    /// Trilinear interpolation of the field at `p`. Valid anywhere in
    /// [`Self::interp_bounds`] (core plus ghost margin); `None` outside.
    #[inline]
    pub fn sample(&self, p: Vec3) -> Option<Vec3> {
        interp::trilinear(self, p)
    }

    /// In-memory payload size in bytes (node data only).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Block {
        // 2x2x2 cells + 1 ghost layer => 5 nodes per axis over core [0,2]^3.
        Block::zeroed(
            BlockId(3),
            Aabb::new(Vec3::ZERO, Vec3::splat(2.0)),
            1,
            [5, 5, 5],
            Vec3::splat(1.0),
        )
    }

    #[test]
    fn origin_offset_by_ghost() {
        let b = block();
        assert_eq!(b.origin, Vec3::splat(-1.0));
        assert_eq!(b.node_pos(0, 0, 0), Vec3::splat(-1.0));
        assert_eq!(b.node_pos(4, 4, 4), Vec3::splat(3.0));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = block();
        b.set(1, 2, 3, Vec3::new(0.5, -1.5, 2.5));
        assert_eq!(b.get(1, 2, 3), Vec3::new(0.5, -1.5, 2.5));
        assert_eq!(b.get(0, 0, 0), Vec3::ZERO);
    }

    #[test]
    fn interp_bounds_cover_core_plus_ghost() {
        let b = block();
        let ib = b.interp_bounds();
        assert_eq!(ib.min, Vec3::splat(-1.0));
        assert_eq!(ib.max, Vec3::splat(3.0));
        assert!(ib.contains(b.bounds.min) && ib.contains(b.bounds.max));
    }

    #[test]
    fn payload_bytes_counts_all_nodes() {
        assert_eq!(block().payload_bytes(), 125 * 12);
    }

    #[test]
    fn display_format() {
        assert_eq!(BlockId(17).to_string(), "B17");
    }
}
