//! Trilinear interpolation on a block's node lattice.
//!
//! This is the hottest function in the whole system — every Runge–Kutta stage
//! of every integration step of every streamline calls it. It is kept free of
//! heap allocation and uses a single bounds check on the lattice cell.

use crate::block::Block;
use streamline_math::Vec3;

/// Trilinear interpolation of block data at `p`.
///
/// Returns `None` when `p` falls outside the block's ghost-extended node
/// lattice (the caller then hands the streamline to whichever block owns `p`).
#[inline]
pub fn trilinear(block: &Block, p: Vec3) -> Option<Vec3> {
    let [nx, ny, nz] = block.nodes;
    // Fractional lattice coordinates.
    let fx = (p.x - block.origin.x) / block.spacing.x;
    let fy = (p.y - block.origin.y) / block.spacing.y;
    let fz = (p.z - block.origin.z) / block.spacing.z;
    // A small tolerance keeps points on the outer lattice faces valid.
    const EDGE_TOL: f64 = 1e-9;
    if fx < -EDGE_TOL
        || fy < -EDGE_TOL
        || fz < -EDGE_TOL
        || fx > (nx - 1) as f64 + EDGE_TOL
        || fy > (ny - 1) as f64 + EDGE_TOL
        || fz > (nz - 1) as f64 + EDGE_TOL
    {
        return None;
    }
    // Lower cell corner, clamped so the +1 stencil stays in range on the
    // upper faces.
    let i = (fx.floor() as usize).min(nx - 2);
    let j = (fy.floor() as usize).min(ny - 2);
    let k = (fz.floor() as usize).min(nz - 2);
    let tx = (fx - i as f64).clamp(0.0, 1.0);
    let ty = (fy - j as f64).clamp(0.0, 1.0);
    let tz = (fz - k as f64).clamp(0.0, 1.0);

    let idx = |i: usize, j: usize, k: usize| (k * ny + j) * nx + i;
    let d = &block.data;
    let c000 = d[idx(i, j, k)];
    let c100 = d[idx(i + 1, j, k)];
    let c010 = d[idx(i, j + 1, k)];
    let c110 = d[idx(i + 1, j + 1, k)];
    let c001 = d[idx(i, j, k + 1)];
    let c101 = d[idx(i + 1, j, k + 1)];
    let c011 = d[idx(i, j + 1, k + 1)];
    let c111 = d[idx(i + 1, j + 1, k + 1)];

    let mut out = [0.0f64; 3];
    for (c, o) in out.iter_mut().enumerate() {
        let x00 = c000[c] as f64 * (1.0 - tx) + c100[c] as f64 * tx;
        let x10 = c010[c] as f64 * (1.0 - tx) + c110[c] as f64 * tx;
        let x01 = c001[c] as f64 * (1.0 - tx) + c101[c] as f64 * tx;
        let x11 = c011[c] as f64 * (1.0 - tx) + c111[c] as f64 * tx;
        let y0 = x00 * (1.0 - ty) + x10 * ty;
        let y1 = x01 * (1.0 - ty) + x11 * ty;
        *o = y0 * (1.0 - tz) + y1 * tz;
    }
    Some(Vec3::new(out[0], out[1], out[2]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockId;
    use streamline_math::Aabb;

    /// Block over [0,2]^3 with 2 cells/axis, no ghosts, filled from `f`.
    fn filled_block(f: impl Fn(Vec3) -> Vec3) -> Block {
        let mut b = Block::zeroed(
            BlockId(0),
            Aabb::new(Vec3::ZERO, Vec3::splat(2.0)),
            0,
            [3, 3, 3],
            Vec3::splat(1.0),
        );
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..3 {
                    let p = b.node_pos(i, j, k);
                    b.set(i, j, k, f(p));
                }
            }
        }
        b
    }

    #[test]
    fn reproduces_node_values() {
        let b = filled_block(|p| Vec3::new(p.x, 2.0 * p.y, -p.z));
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..3 {
                    let p = b.node_pos(i, j, k);
                    let v = trilinear(&b, p).unwrap();
                    assert!(v.distance(Vec3::new(p.x, 2.0 * p.y, -p.z)) < 1e-6);
                }
            }
        }
    }

    #[test]
    fn exact_for_trilinear_functions() {
        // Trilinear interpolation reproduces any function of the form
        // a + bx + cy + dz + exy + ... + hxyz exactly (up to f32 storage).
        let f = |p: Vec3| {
            Vec3::new(
                1.0 + 2.0 * p.x - p.y + 0.5 * p.x * p.y * p.z,
                p.x * p.y,
                3.0 - p.z + p.y * p.z,
            )
        };
        let b = filled_block(f);
        for p in [Vec3::new(0.25, 0.75, 1.3), Vec3::new(1.9, 0.1, 0.6), Vec3::new(1.0, 1.0, 1.0)] {
            let v = trilinear(&b, p).unwrap();
            assert!(v.distance(f(p)) < 1e-5, "at {p:?}: {v:?} vs {:?}", f(p));
        }
    }

    #[test]
    fn outside_lattice_is_none() {
        let b = filled_block(|_| Vec3::X);
        assert!(trilinear(&b, Vec3::splat(-0.5)).is_none());
        assert!(trilinear(&b, Vec3::new(2.5, 1.0, 1.0)).is_none());
    }

    #[test]
    fn boundary_faces_are_valid() {
        let b = filled_block(|_| Vec3::X);
        assert!(trilinear(&b, Vec3::ZERO).is_some());
        assert!(trilinear(&b, Vec3::splat(2.0)).is_some());
        assert!(trilinear(&b, Vec3::new(2.0, 0.0, 1.0)).is_some());
    }

    #[test]
    fn continuous_across_cell_faces() {
        let f = |p: Vec3| Vec3::new((p.x * 1.7).sin(), p.y, p.z * p.x);
        let b = filled_block(f);
        // Approach an interior cell face (x = 1) from both sides.
        let eps = 1e-9;
        let left = trilinear(&b, Vec3::new(1.0 - eps, 0.5, 0.5)).unwrap();
        let right = trilinear(&b, Vec3::new(1.0 + eps, 0.5, 0.5)).unwrap();
        assert!(left.distance(right) < 1e-6);
    }
}
