//! Trilinear interpolation on a block's node lattice.
//!
//! This is the hottest function in the whole system — every Runge–Kutta stage
//! of every integration step of every streamline calls it. It is kept free of
//! heap allocation and uses a single bounds check on the lattice cell.

use crate::block::Block;
use streamline_math::Vec3;

/// The stencil weights for one query point: lattice cell `(i, j, k)` plus
/// intra-cell fractions. [`CellSampler`](crate::sampler::CellSampler) keys its
/// corner cache on the cell triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CellCoords {
    pub cell: [usize; 3],
    pub t: [f64; 3],
}

/// Tolerance keeping points on the outer lattice faces valid; shared with
/// the lane-group sampler so its in-lattice decisions are the same
/// comparisons on the same values.
pub(crate) const EDGE_TOL: f64 = 1e-9;

/// Map `p` to its lattice cell and intra-cell fractions, or `None` outside
/// the ghost-extended lattice.
///
/// Both [`trilinear`] and the cell-cached sampler resolve coordinates through
/// this one function, so their cell decisions can never disagree.
#[inline]
pub(crate) fn locate_cell(block: &Block, p: Vec3) -> Option<CellCoords> {
    let [nx, ny, nz] = block.nodes;
    debug_assert!(nx >= 2 && ny >= 2 && nz >= 2, "Block construction rejects < 2 nodes per axis");
    // Fractional lattice coordinates; the reciprocal spacing is hoisted into
    // the block at construction so the hot path multiplies.
    let fx = (p.x - block.origin.x) * block.inv_spacing.x;
    let fy = (p.y - block.origin.y) * block.inv_spacing.y;
    let fz = (p.z - block.origin.z) * block.inv_spacing.z;
    if fx < -EDGE_TOL
        || fy < -EDGE_TOL
        || fz < -EDGE_TOL
        || fx > (nx - 1) as f64 + EDGE_TOL
        || fy > (ny - 1) as f64 + EDGE_TOL
        || fz > (nz - 1) as f64 + EDGE_TOL
    {
        return None;
    }
    // Lower cell corner, clamped so the +1 stencil stays in range on the
    // upper faces.
    let i = (fx.floor() as usize).min(nx - 2);
    let j = (fy.floor() as usize).min(ny - 2);
    let k = (fz.floor() as usize).min(nz - 2);
    let tx = (fx - i as f64).clamp(0.0, 1.0);
    let ty = (fy - j as f64).clamp(0.0, 1.0);
    let tz = (fz - k as f64).clamp(0.0, 1.0);
    Some(CellCoords { cell: [i, j, k], t: [tx, ty, tz] })
}

/// Gather the 8 corner samples of cell `(i, j, k)` in c000..c111 order.
#[inline]
pub(crate) fn gather_corners(block: &Block, cell: [usize; 3]) -> [[f32; 3]; 8] {
    let [nx, ny, _] = block.nodes;
    let [i, j, k] = cell;
    // Precomputed strides instead of per-corner index arithmetic: +1 in x,
    // +sy in y, +sz in z from the base corner.
    let sy = nx;
    let sz = nx * ny;
    let base = (k * ny + j) * nx + i;
    let d = &block.data;
    [
        d[base],
        d[base + 1],
        d[base + sy],
        d[base + sy + 1],
        d[base + sz],
        d[base + sz + 1],
        d[base + sz + sy],
        d[base + sz + sy + 1],
    ]
}

/// Trilinear blend of 8 gathered corners with fractions `t`.
///
/// The `1 - t` complements are computed once per axis; each use is the same
/// operation on the same bits as recomputing it inline, so the result is
/// unchanged while the compiler keeps the stencil in registers.
#[inline]
pub(crate) fn lerp_corners(c: &[[f32; 3]; 8], t: [f64; 3]) -> Vec3 {
    let [tx, ty, tz] = t;
    let mx = 1.0 - tx;
    let my = 1.0 - ty;
    let mz = 1.0 - tz;
    let mut out = [0.0f64; 3];
    for (a, o) in out.iter_mut().enumerate() {
        let x00 = c[0][a] as f64 * mx + c[1][a] as f64 * tx;
        let x10 = c[2][a] as f64 * mx + c[3][a] as f64 * tx;
        let x01 = c[4][a] as f64 * mx + c[5][a] as f64 * tx;
        let x11 = c[6][a] as f64 * mx + c[7][a] as f64 * tx;
        let y0 = x00 * my + x10 * ty;
        let y1 = x01 * my + x11 * ty;
        *o = y0 * mz + y1 * tz;
    }
    Vec3::new(out[0], out[1], out[2])
}

/// Trilinear interpolation of block data at `p`.
///
/// Returns `None` when `p` falls outside the block's ghost-extended node
/// lattice (the caller then hands the streamline to whichever block owns `p`).
#[inline]
pub fn trilinear(block: &Block, p: Vec3) -> Option<Vec3> {
    let c = locate_cell(block, p)?;
    Some(lerp_corners(&gather_corners(block, c.cell), c.t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockId;
    use streamline_math::Aabb;

    /// Block over [0,2]^3 with 2 cells/axis, no ghosts, filled from `f`.
    fn filled_block(f: impl Fn(Vec3) -> Vec3) -> Block {
        let mut b = Block::zeroed(
            BlockId(0),
            Aabb::new(Vec3::ZERO, Vec3::splat(2.0)),
            0,
            [3, 3, 3],
            Vec3::splat(1.0),
        );
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..3 {
                    let p = b.node_pos(i, j, k);
                    b.set(i, j, k, f(p));
                }
            }
        }
        b
    }

    #[test]
    fn reproduces_node_values() {
        let b = filled_block(|p| Vec3::new(p.x, 2.0 * p.y, -p.z));
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..3 {
                    let p = b.node_pos(i, j, k);
                    let v = trilinear(&b, p).unwrap();
                    assert!(v.distance(Vec3::new(p.x, 2.0 * p.y, -p.z)) < 1e-6);
                }
            }
        }
    }

    #[test]
    fn exact_for_trilinear_functions() {
        // Trilinear interpolation reproduces any function of the form
        // a + bx + cy + dz + exy + ... + hxyz exactly (up to f32 storage).
        let f = |p: Vec3| {
            Vec3::new(
                1.0 + 2.0 * p.x - p.y + 0.5 * p.x * p.y * p.z,
                p.x * p.y,
                3.0 - p.z + p.y * p.z,
            )
        };
        let b = filled_block(f);
        for p in [Vec3::new(0.25, 0.75, 1.3), Vec3::new(1.9, 0.1, 0.6), Vec3::new(1.0, 1.0, 1.0)] {
            let v = trilinear(&b, p).unwrap();
            assert!(v.distance(f(p)) < 1e-5, "at {p:?}: {v:?} vs {:?}", f(p));
        }
    }

    #[test]
    fn outside_lattice_is_none() {
        let b = filled_block(|_| Vec3::X);
        assert!(trilinear(&b, Vec3::splat(-0.5)).is_none());
        assert!(trilinear(&b, Vec3::new(2.5, 1.0, 1.0)).is_none());
    }

    #[test]
    fn boundary_faces_are_valid() {
        let b = filled_block(|_| Vec3::X);
        assert!(trilinear(&b, Vec3::ZERO).is_some());
        assert!(trilinear(&b, Vec3::splat(2.0)).is_some());
        assert!(trilinear(&b, Vec3::new(2.0, 0.0, 1.0)).is_some());
    }

    #[test]
    fn continuous_across_cell_faces() {
        let f = |p: Vec3| Vec3::new((p.x * 1.7).sin(), p.y, p.z * p.x);
        let b = filled_block(f);
        // Approach an interior cell face (x = 1) from both sides.
        let eps = 1e-9;
        let left = trilinear(&b, Vec3::new(1.0 - eps, 0.5, 0.5)).unwrap();
        let right = trilinear(&b, Vec3::new(1.0 + eps, 0.5, 0.5)).unwrap();
        assert!(left.distance(right) < 1e-6);
    }
}
