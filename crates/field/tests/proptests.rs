//! Property-based tests for the decomposition and interpolation substrate.

use proptest::prelude::*;
use streamline_field::analytic::VectorField;
use streamline_field::block::BlockId;
use streamline_field::decomp::BlockDecomposition;
use streamline_field::sample::sample_block_nodes;
use streamline_math::{Aabb, Vec3};

fn decomp_strategy() -> impl Strategy<Value = BlockDecomposition> {
    (1usize..5, 1usize..5, 1usize..5, 2usize..6).prop_map(|(bx, by, bz, c)| {
        BlockDecomposition::new(
            Aabb::new(Vec3::new(-1.0, 0.0, 2.0), Vec3::new(3.0, 5.0, 4.0)),
            [bx, by, bz],
            [c, c, c],
            1,
        )
    })
}

proptest! {
    /// Every in-domain point is owned by exactly the block whose bounds
    /// contain it (up to face ties, which go to the higher block).
    #[test]
    fn locate_is_consistent_with_bounds(
        d in decomp_strategy(),
        u in 0f64..1.0, v in 0f64..1.0, w in 0f64..1.0,
    ) {
        let p = d.domain.from_unit(Vec3::new(u, v, w));
        let id = d.locate(p).expect("in-domain point must be owned");
        let b = d.block_bounds(id);
        prop_assert!(b.contains_eps(p, 1e-9 * d.domain.size().max_abs_component()));
        // And no *other* block strictly contains it in its interior.
        for other in d.all_blocks() {
            if other != id {
                let ob = d.block_bounds(other).expanded(-1e-9);
                prop_assert!(!ob.contains(p), "{p:?} also strictly inside {other}");
            }
        }
    }

    /// Points outside the domain are never located.
    #[test]
    fn locate_rejects_outside(
        d in decomp_strategy(),
        axis in 0usize..3,
        sign in prop::bool::ANY,
        dist in 0.01f64..10.0,
    ) {
        let mut p = d.domain.center();
        let offset = d.domain.size()[axis] * 0.5 + dist;
        match (axis, sign) {
            (0, true) => p.x += offset,
            (0, false) => p.x -= offset,
            (1, true) => p.y += offset,
            (1, false) => p.y -= offset,
            (_, true) => p.z += offset,
            (_, false) => p.z -= offset,
        }
        prop_assert_eq!(d.locate(p), None);
    }

    /// Block ids and coordinates are a bijection.
    #[test]
    fn id_coords_bijective(d in decomp_strategy()) {
        let mut seen = std::collections::HashSet::new();
        for id in d.all_blocks() {
            let c = d.coords_of(id);
            prop_assert_eq!(d.id_of(c[0], c[1], c[2]), id);
            prop_assert!(seen.insert(c));
        }
        prop_assert_eq!(seen.len(), d.num_blocks());
    }

    /// Trilinear interpolation is bounded by the extremes of the node data
    /// (maximum principle), for any field and any sample point.
    #[test]
    fn interpolation_respects_bounds(
        freq in 0.1f64..3.0,
        u in 0f64..1.0, v in 0f64..1.0, w in 0f64..1.0,
    ) {
        struct Wavy(f64);
        impl VectorField for Wavy {
            fn eval(&self, p: Vec3) -> Vec3 {
                Vec3::new(
                    (self.0 * p.x).sin(),
                    (self.0 * (p.y + p.z)).cos(),
                    p.x * p.y - p.z,
                )
            }
            fn name(&self) -> &'static str { "wavy" }
        }
        let d = BlockDecomposition::new(Aabb::unit(), [2, 2, 2], [4, 4, 4], 1);
        let field = Wavy(freq);
        let block = sample_block_nodes(&field, &d, BlockId(0));
        let p = block.interp_bounds().expanded(-1e-9).from_unit(Vec3::new(u, v, w));
        let s = block.sample(p).expect("inside interp bounds");
        for c in 0..3 {
            let lo = block.data.iter().map(|x| x[c]).fold(f32::INFINITY, f32::min) as f64;
            let hi = block.data.iter().map(|x| x[c]).fold(f32::NEG_INFINITY, f32::max) as f64;
            prop_assert!(s[c] >= lo - 1e-6 && s[c] <= hi + 1e-6,
                "component {c}: {} outside [{lo}, {hi}]", s[c]);
        }
    }

    /// Ghost-layer consistency: the same physical point sampled through two
    /// adjacent blocks agrees (continuity across block faces).
    #[test]
    fn cross_block_sampling_agrees(
        u in 0f64..1.0, v in 0f64..1.0,
    ) {
        struct Smooth;
        impl VectorField for Smooth {
            fn eval(&self, p: Vec3) -> Vec3 {
                Vec3::new(p.x * p.y, (2.0 * p.z).sin(), p.x + 0.5 * p.y)
            }
            fn name(&self) -> &'static str { "smooth" }
        }
        let d = BlockDecomposition::new(Aabb::unit(), [2, 1, 1], [4, 4, 4], 1);
        let left = sample_block_nodes(&Smooth, &d, d.id_of(0, 0, 0));
        let right = sample_block_nodes(&Smooth, &d, d.id_of(1, 0, 0));
        // A point on (or near) the shared face x = 0.5.
        let p = Vec3::new(0.5, u, v);
        let a = left.sample(p).expect("left covers face");
        let b = right.sample(p).expect("right covers face");
        prop_assert!(a.distance(b) < 1e-5, "{a:?} vs {b:?} at {p:?}");
    }
}

proptest! {
    /// The cell-cached sampler is bit-identical to plain `trilinear` over
    /// random lattices and walk-like point sequences — the hit path must be
    /// an exact memoization, never an approximation.
    #[test]
    fn cell_sampler_matches_trilinear_bitwise(
        nx in 2usize..7, ny in 2usize..7, nz in 2usize..7,
        seed in 0u64..1_000,
        n_points in 1usize..200,
    ) {
        use rand::Rng;
        use streamline_field::block::Block;
        use streamline_field::interp::trilinear;
        use streamline_field::sampler::CellSampler;
        use streamline_math::rng;

        let spacing = Vec3::new(0.3, 0.7, 0.11);
        let bounds = Aabb::new(
            Vec3::new(-1.0, 2.0, 0.5),
            Vec3::new(-1.0, 2.0, 0.5)
                + Vec3::new(
                    (nx - 1) as f64 * spacing.x,
                    (ny - 1) as f64 * spacing.y,
                    (nz - 1) as f64 * spacing.z,
                ),
        );
        let mut block = Block::zeroed(BlockId(0), bounds, 0, [nx, ny, nz], spacing);
        let mut r = rng::stream(seed, "proptest-sampler-data");
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    block.set(i, j, k, Vec3::new(
                        r.gen_range(-3.0..3.0),
                        r.gen_range(-3.0..3.0),
                        r.gen_range(-3.0..3.0),
                    ));
                }
            }
        }

        // Walk-like sequence: short hops so consecutive points share a
        // cell (the RK-stage pattern), occasionally jumping outside.
        let mut w = rng::stream(seed, "proptest-sampler-walk");
        let mut sampler = CellSampler::new(&block);
        let mut p = bounds.center();
        for _ in 0..n_points {
            let hop = spacing.x.min(spacing.y).min(spacing.z) * 0.4;
            let q = rng::point_in_ball(&mut w, p, hop);
            p = if w.gen_bool(0.05) { q + bounds.size() } else { q };
            let reference = trilinear(&block, p);
            let fast = sampler.sample(p);
            match (reference, fast) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.x.to_bits(), b.x.to_bits());
                    prop_assert_eq!(a.y.to_bits(), b.y.to_bits());
                    prop_assert_eq!(a.z.to_bits(), b.z.to_bits());
                }
                (a, b) => prop_assert!(false, "coverage disagrees at {:?}: {:?} vs {:?}", p, a, b),
            }
            if !bounds.contains(p) {
                p = bounds.center();
            }
        }
    }
}
