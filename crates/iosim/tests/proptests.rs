//! Property-based tests: the LRU cache against a reference model, the
//! on-disk block format over arbitrary blocks, and the fault-injection
//! store's no-poisoning guarantee over random fault plans.

use proptest::prelude::*;
use std::sync::Arc;
use streamline_field::block::{Block, BlockId};
use streamline_iosim::{
    format, BlockStore, ChaosParams, FaultKind, FaultPlan, FaultStore, LruCache, MemoryStore,
    StoreError, INJECTED_BAD_MAGIC,
};
use streamline_math::{Aabb, Vec3};

fn block_with(id: u32, nodes: [usize; 3], fill: f32) -> Block {
    let mut b = Block::zeroed(
        BlockId(id),
        Aabb::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0)),
        1,
        nodes,
        Vec3::splat(0.5),
    );
    for (i, s) in b.data.iter_mut().enumerate() {
        *s = [fill + i as f32, fill - i as f32, fill * 0.5];
    }
    b
}

/// Reference LRU model: a Vec ordered most-recent-last.
#[derive(Default)]
struct ModelLru {
    cap: usize,
    order: Vec<u32>,
}

impl ModelLru {
    fn get(&mut self, id: u32) -> bool {
        if let Some(pos) = self.order.iter().position(|&x| x == id) {
            let v = self.order.remove(pos);
            self.order.push(v);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, id: u32) -> Option<u32> {
        let mut evicted = None;
        if self.order.len() >= self.cap {
            evicted = Some(self.order.remove(0));
        }
        self.order.push(id);
        evicted
    }
}

proptest! {
    /// The cache behaves exactly like the reference model under arbitrary
    /// access sequences.
    #[test]
    fn lru_matches_reference_model(
        cap in 1usize..8,
        ops in prop::collection::vec((0u32..16, prop::bool::ANY), 1..200),
    ) {
        let mut cache = LruCache::new(cap);
        let mut model = ModelLru { cap, order: Vec::new() };
        for (id, is_get) in ops {
            if is_get {
                let real = cache.get(BlockId(id)).is_some();
                let expect = model.get(id);
                prop_assert_eq!(real, expect, "get mismatch for id {}", id);
            } else if !cache.contains(BlockId(id)) {
                let evicted = cache.insert(Arc::new(block_with(id, [2, 2, 2], 0.0)));
                let expected = model.insert(id);
                prop_assert_eq!(evicted.map(|b| b.0), expected, "insert mismatch for id {}", id);
            }
            prop_assert!(cache.len() <= cap);
            // Same resident set.
            let mut real: Vec<u32> = cache.resident().iter().map(|b| b.0).collect();
            real.sort();
            let mut expect = model.order.clone();
            expect.sort();
            prop_assert_eq!(real, expect);
        }
        // Eq. 2 bookkeeping is consistent.
        let s = cache.stats();
        prop_assert_eq!(s.loaded - s.purged, cache.len() as u64);
    }

    /// Encode/decode round-trips arbitrary block shapes and data exactly.
    #[test]
    fn format_roundtrip(
        id in 0u32..10_000,
        nx in 2usize..6,
        ny in 2usize..6,
        nz in 2usize..6,
        fill in -1e6f32..1e6,
    ) {
        let b = block_with(id, [nx, ny, nz], fill);
        let encoded = format::encode(&b);
        prop_assert_eq!(encoded.len(), format::encoded_size([nx, ny, nz]));
        let d = format::decode(&encoded).unwrap();
        prop_assert_eq!(d, b);
    }

    /// Injected faults deny blocks; they never poison a cache. Across
    /// random fault plans, every block a [`FaultStore`] serves — and
    /// everything an LRU fed from it holds — is bit-identical to the
    /// fault-free build, every denial carries the typed error its schedule
    /// prescribes, and the injection counters account for every attempt.
    #[test]
    fn fault_store_never_poisons_a_cache(
        seed in 0u64..u64::MAX,
        fault_prob in 0.0f64..=1.0,
        transient_prob in 0.0f64..=1.0,
        corrupt_prob in 0.0f64..=1.0,
        max_clears in 1u32..4,
    ) {
        const N: usize = 12;
        let params = ChaosParams {
            fault_prob,
            transient_prob,
            corrupt_prob,
            max_clears,
            latency_prob: 0.0,
            max_latency_us: 0,
        };
        let plan = FaultPlan::random(seed, N, &params).expect("generated params are valid");
        let reference: Vec<Block> =
            (0..N).map(|i| block_with(i as u32, [3, 2, 2], i as f32)).collect();
        let inner = Arc::new(MemoryStore::from_blocks(reference.clone()));
        let fs = FaultStore::new(inner, plan.clone());

        let mut cache = LruCache::new(N);
        let attempts_per_block = u64::from(max_clears) + 2;
        let (mut served, mut io, mut decode) = (0u64, 0u64, 0u64);
        for (i, want) in reference.iter().enumerate() {
            let id = BlockId(i as u32);
            let kind = plan.faults_for(id).kind;
            for attempt in 1..=attempts_per_block {
                match fs.try_load(id) {
                    Ok(b) => {
                        served += 1;
                        prop_assert_eq!(&*b, want, "served block {} altered", i);
                        match kind {
                            None => {}
                            Some(FaultKind::TransientIo { clears_after }) => prop_assert!(
                                attempt > u64::from(clears_after),
                                "transient fault on {} cleared early (attempt {})",
                                i,
                                attempt
                            ),
                            Some(k) => {
                                prop_assert!(!k.is_permanent(), "permanent fault on {} served", i)
                            }
                        }
                        if !cache.contains(id) {
                            cache.insert(Arc::clone(&b));
                        }
                    }
                    Err(StoreError::Io { .. }) => {
                        io += 1;
                        let scheduled = match kind {
                            Some(FaultKind::TransientIo { clears_after }) => {
                                attempt <= u64::from(clears_after)
                            }
                            Some(FaultKind::PermanentIo) => true,
                            _ => false,
                        };
                        prop_assert!(scheduled, "unscheduled Io error on {} attempt {}", i, attempt);
                    }
                    Err(StoreError::Decode { source, .. }) => {
                        decode += 1;
                        prop_assert_eq!(kind, Some(FaultKind::CorruptPayload));
                        prop_assert_eq!(source, format::FormatError::BadMagic(INJECTED_BAD_MAGIC));
                    }
                    Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
                }
            }
        }
        // Whatever made it into the cache is still the fault-free data.
        for id in cache.resident() {
            let got = cache.get(id).expect("resident");
            prop_assert_eq!(&*got, &reference[id.0 as usize]);
        }
        // Exact accounting: injected + served covers every attempt.
        let c = fs.counters();
        prop_assert_eq!(c.attempts, attempts_per_block * N as u64);
        prop_assert_eq!(c.served, served);
        prop_assert_eq!(c.io_injected, io);
        prop_assert_eq!(c.decode_injected, decode);
        prop_assert_eq!(c.served + c.faults_injected(), c.attempts);
        prop_assert_eq!(c.latency_injected, 0);
    }

    /// Arbitrary corruption of the header never panics and never yields a
    /// valid block silently when the magic is damaged.
    #[test]
    fn format_rejects_corrupt_magic(
        flip in 0usize..4,
        bit in 0u8..8,
    ) {
        let b = block_with(1, [2, 2, 2], 1.0);
        let mut bytes = format::encode(&b).to_vec();
        bytes[flip] ^= 1 << bit;
        // Either a clean error, or (if the flip cancels) the same block.
        if let Ok(d) = format::decode(&bytes) {
            prop_assert_eq!(d, b);
        }
    }
}
