//! The disk cost model: how long a block load takes on the simulated
//! cluster.
//!
//! The paper's blocks are 1M cells; our in-memory blocks are scaled down for
//! laptop runs. To preserve the paper's I/O-vs-compute balance the simulated
//! cluster charges I/O at *paper scale*: each load costs
//! `latency + logical_block_bytes / bandwidth` of virtual time regardless of
//! the in-memory payload.

use serde::{Deserialize, Serialize};

/// Cost model for block reads from the (shared) parallel filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Per-read seek/metadata latency in seconds.
    pub latency: f64,
    /// Sustained per-reader bandwidth in bytes/second.
    pub bandwidth: f64,
    /// The size a block load is charged for (paper scale), in bytes.
    pub logical_block_bytes: f64,
}

impl DiskModel {
    /// Paper-scale default: 1M nodes × 12 B ≈ 12 MB blocks, 4 ms latency,
    /// 500 MB/s per-reader bandwidth → ≈ 28 ms per block load.
    pub fn paper_scale() -> Self {
        DiskModel { latency: 4e-3, bandwidth: 500e6, logical_block_bytes: 12e6 }
    }

    /// A model with negligible cost — disables the I/O axis in experiments.
    pub fn free() -> Self {
        DiskModel { latency: 0.0, bandwidth: f64::INFINITY, logical_block_bytes: 0.0 }
    }

    /// Virtual seconds to load one block.
    pub fn block_load_time(&self) -> f64 {
        self.latency + self.logical_block_bytes / self.bandwidth
    }

    /// Virtual seconds to load `bytes` (for non-block reads).
    pub fn read_time(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_around_28ms() {
        let t = DiskModel::paper_scale().block_load_time();
        assert!(t > 0.02 && t < 0.04, "{t}");
    }

    #[test]
    fn free_model_costs_nothing() {
        assert_eq!(DiskModel::free().block_load_time(), 0.0);
        assert_eq!(DiskModel::free().read_time(1e9), 0.0);
    }

    #[test]
    fn read_time_monotone_in_bytes() {
        let m = DiskModel::paper_scale();
        assert!(m.read_time(2e6) > m.read_time(1e6));
        assert!(m.read_time(0.0) == m.latency);
    }
}
