//! Block I/O substrate.
//!
//! The paper's algorithms read blocks from a parallel filesystem; here the
//! same contract is provided three ways:
//!
//! * [`store::DiskStore`] — a real on-disk store with its own binary block
//!   format ([`format`]), used by the thread runtime and the examples,
//! * [`store::MemoryStore`] / [`store::FieldStore`] — in-memory stores for
//!   tests and for the simulated cluster (where I/O *time* is charged by the
//!   [`model::DiskModel`] instead of spent),
//! * [`lru::LruCache`] — the least-recently-used block cache of §4.2/§4.3
//!   ("old blocks are discarded if available main memory is insufficient"),
//!   whose load/purge counters feed block efficiency `E = (B_L − B_P)/B_L`
//!   (Eq. 2).

//!
//! [`fault::FaultStore`] wraps any store with a seeded, deterministic
//! fault-injection plan (transient/permanent I/O errors, corrupt payloads,
//! latency) so the degraded-mode paths in the drivers and the serve stack
//! can be exercised exactly.

pub mod fault;
pub mod format;
pub mod lru;
pub mod model;
pub mod store;
pub mod testutil;

pub use fault::{
    BlockFaults, ChaosConfigError, ChaosParams, FaultCounters, FaultKind, FaultPlan, FaultState,
    FaultStore, RankChaosParams, RankFaultPlan, INJECTED_BAD_MAGIC,
};
pub use lru::{CacheStats, LruCache};
pub use model::DiskModel;
pub use store::{BlockStore, DiskStore, FieldStore, MemoryStore, StoreError};
