//! Shared test helpers (used by this crate's tests and by workspace
//! integration tests; small enough to ship unconditionally).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A temporary directory removed on drop, so a failing assertion mid-test
/// no longer leaks directories under `/tmp`.
///
/// The name combines the prefix, the process id and a process-local counter,
/// so concurrent tests (and concurrent test processes) never collide.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh empty directory under the system temp dir.
    pub fn new(prefix: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path inside the directory (not created).
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes_on_drop() {
        let path = {
            let dir = TempDir::new("slbk-testutil");
            assert!(dir.path().is_dir());
            std::fs::write(dir.join("f.bin"), b"x").unwrap();
            dir.path().to_path_buf()
        };
        assert!(!path.exists(), "directory must be removed on drop");
    }

    #[test]
    fn two_dirs_never_collide() {
        let a = TempDir::new("slbk-testutil");
        let b = TempDir::new("slbk-testutil");
        assert_ne!(a.path(), b.path());
    }
}
