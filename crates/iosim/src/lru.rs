//! The least-recently-used block cache of §4.2/§4.3.
//!
//! "The Load On Demand algorithm makes use of caching of blocks in a LRU
//! fashion; old blocks are discarded if available main memory is
//! insufficient to accommodate new blocks." The cache tracks the counters
//! behind Eq. 2's block efficiency: loads `B_L` and purges `B_P`.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use streamline_field::block::{Block, BlockId};

/// Load/purge/hit counters for one cache (aggregated into Eq. 2 per run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Blocks loaded (B_L).
    pub loaded: u64,
    /// Blocks purged (B_P).
    pub purged: u64,
    /// Requests served without a load.
    pub hits: u64,
    /// Load attempts that errored. A failed load is *not* a load: nothing
    /// entered the cache, so it must not count toward B_L (which would skew
    /// Eq. 2) nor break the `hits + loaded + failed == gets` invariant.
    /// `#[serde(default)]` keeps reports from before this counter readable.
    #[serde(default)]
    pub failed: u64,
}

impl CacheStats {
    /// Block efficiency `E = (B_L − B_P) / B_L` (Eq. 2); 1.0 when nothing
    /// was ever loaded.
    ///
    /// The numerator is computed in `f64`, not by `u64` subtraction: merged
    /// partial per-worker snapshots taken mid-drain can transiently show
    /// `purged > loaded` (one worker's purge of another worker's load), and
    /// the unsigned subtraction panicked in debug builds. E goes negative in
    /// that window, which is the honest reading.
    pub fn efficiency(&self) -> f64 {
        if self.loaded == 0 {
            1.0
        } else {
            (self.loaded as f64 - self.purged as f64) / self.loaded as f64
        }
    }

    pub fn merge(&mut self, other: &CacheStats) {
        self.loaded += other.loaded;
        self.purged += other.purged;
        self.hits += other.hits;
        self.failed += other.failed;
    }

    /// Mirror these counters into `registry` under the stable
    /// `streamline_cache_*` names.
    pub fn export_into(&self, registry: &streamline_obs::MetricsRegistry) {
        use streamline_obs::names;
        registry.set_counter(names::CACHE_LOADED_TOTAL, self.loaded);
        registry.set_counter(names::CACHE_PURGED_TOTAL, self.purged);
        registry.set_counter(names::CACHE_HITS_TOTAL, self.hits);
        registry.set_counter(names::CACHE_FAILED_LOADS_TOTAL, self.failed);
    }
}

struct Entry {
    block: Arc<Block>,
    last_use: u64,
}

/// An LRU cache of blocks with a fixed capacity in block count
/// ("a user defined upper bound", §5).
///
/// ```
/// use std::sync::Arc;
/// use streamline_field::block::{Block, BlockId};
/// use streamline_iosim::LruCache;
/// use streamline_math::{Aabb, Vec3};
///
/// let block = |id| Arc::new(Block::zeroed(BlockId(id), Aabb::unit(), 0, [2, 2, 2], Vec3::splat(1.0)));
/// let mut cache = LruCache::new(2);
/// cache.insert(block(1));
/// cache.insert(block(2));
/// cache.get(BlockId(1));                       // refresh 1, so 2 is now LRU
/// assert_eq!(cache.insert(block(3)), Some(BlockId(2)));
/// assert_eq!(cache.stats().purged, 1);         // B_P of Eq. 2
/// ```
pub struct LruCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<BlockId, Entry>,
    stats: CacheStats,
}

impl LruCache {
    /// `capacity` must be at least 1 (a rank must be able to hold the block
    /// it is integrating in).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be >= 1");
        LruCache { capacity, tick: 0, entries: HashMap::new(), stats: CacheStats::default() }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether `id` is resident (does not touch recency).
    pub fn contains(&self, id: BlockId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Resident block ids (unordered).
    pub fn resident(&self) -> Vec<BlockId> {
        self.entries.keys().copied().collect()
    }

    /// Get a resident block, refreshing its recency. `None` on miss (the
    /// caller decides whether to load — loading costs I/O time that the
    /// algorithms account for explicitly).
    pub fn get(&mut self, id: BlockId) -> Option<Arc<Block>> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&id) {
            Some(e) => {
                e.last_use = tick;
                self.stats.hits += 1;
                Some(Arc::clone(&e.block))
            }
            None => None,
        }
    }

    /// Insert a freshly loaded block, evicting the least-recently-used
    /// resident block if at capacity. Returns the evicted id, if any.
    /// Counts one load (and one purge per eviction).
    pub fn insert(&mut self, block: Arc<Block>) -> Option<BlockId> {
        self.tick += 1;
        let id = block.id;
        debug_assert!(!self.entries.contains_key(&id), "inserting resident block {id}");
        self.stats.loaded += 1;
        let mut evicted = None;
        if self.entries.len() >= self.capacity {
            // O(n) scan; caches hold at most a few hundred blocks.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(&k, _)| k)
                .expect("cache at capacity has entries");
            self.entries.remove(&victim);
            self.stats.purged += 1;
            evicted = Some(victim);
        }
        self.entries.insert(id, Entry { block, last_use: self.tick });
        evicted
    }

    /// Record a load attempt that errored and therefore inserted nothing.
    pub fn record_failed(&mut self) {
        self.stats.failed += 1;
    }

    /// Residency manifest for checkpoints: resident block ids in recency
    /// order, least recently used first.
    pub fn manifest(&self) -> Vec<BlockId> {
        let mut ids: Vec<(BlockId, u64)> =
            self.entries.iter().map(|(&id, e)| (id, e.last_use)).collect();
        ids.sort_by_key(|&(_, last_use)| last_use);
        ids.into_iter().map(|(id, _)| id).collect()
    }

    /// Rebuild the cache from a checkpoint: blocks arrive in [`Self::manifest`]
    /// order (coldest first), recency ranks are reassigned contiguously, and
    /// the stats/tick counters are overwritten with the snapshotted values.
    /// Nothing here counts as a load, hit, or purge — the activity already
    /// happened before the snapshot and lives in `stats`.
    pub fn restore(&mut self, blocks: Vec<Arc<Block>>, stats: CacheStats) {
        assert!(blocks.len() <= self.capacity, "snapshot exceeds cache capacity");
        self.entries.clear();
        // Contiguous ranks below any future tick preserve the eviction
        // order; the absolute tick values carry no other meaning.
        self.tick = blocks.len() as u64;
        for (i, block) in blocks.into_iter().enumerate() {
            let id = block.id;
            self.entries.insert(id, Entry { block, last_use: i as u64 });
        }
        self.stats = stats;
    }

    /// Overwrite the stats counters (checkpoint restore of a cache whose
    /// residency is rebuilt elsewhere, e.g. the serve shared cache).
    pub fn set_stats(&mut self, stats: CacheStats) {
        self.stats = stats;
    }

    /// Drop everything (counts purges — a purge is a purge).
    pub fn clear(&mut self) {
        self.stats.purged += self.entries.len() as u64;
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_math::{Aabb, Vec3};

    fn block(id: u32) -> Arc<Block> {
        Arc::new(Block::zeroed(BlockId(id), Aabb::unit(), 0, [2, 2, 2], Vec3::splat(1.0)))
    }

    #[test]
    fn insert_get_hit_miss() {
        let mut c = LruCache::new(2);
        assert!(c.get(BlockId(1)).is_none());
        c.insert(block(1));
        assert!(c.get(BlockId(1)).is_some());
        let s = c.stats();
        assert_eq!(s.loaded, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.purged, 0);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(block(1));
        c.insert(block(2));
        // Touch 1 so 2 becomes LRU.
        c.get(BlockId(1));
        let evicted = c.insert(block(3));
        assert_eq!(evicted, Some(BlockId(2)));
        assert!(c.contains(BlockId(1)));
        assert!(c.contains(BlockId(3)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = LruCache::new(3);
        for i in 0..50 {
            c.insert(block(i));
            assert!(c.len() <= 3);
        }
        assert_eq!(c.stats().loaded, 50);
        assert_eq!(c.stats().purged, 47);
    }

    #[test]
    fn efficiency_matches_eq2() {
        let mut c = LruCache::new(2);
        for i in 0..4 {
            c.insert(block(i));
        }
        // B_L = 4, B_P = 2 => E = 0.5.
        assert!((c.stats().efficiency() - 0.5).abs() < 1e-12);
        // Untouched cache is perfectly efficient.
        assert_eq!(CacheStats::default().efficiency(), 1.0);
    }

    #[test]
    fn efficiency_survives_purged_exceeding_loaded() {
        // A partial snapshot merged mid-drain can see more purges than
        // loads; the old u64 subtraction panicked in debug builds here.
        let s = CacheStats { loaded: 2, purged: 5, hits: 0, failed: 0 };
        let e = s.efficiency();
        assert!(e.is_finite());
        assert!((e - (-1.5)).abs() < 1e-12, "E = (2-5)/2, got {e}");
    }

    #[test]
    fn clear_counts_purges() {
        let mut c = LruCache::new(4);
        c.insert(block(1));
        c.insert(block(2));
        c.clear();
        assert_eq!(c.stats().purged, 2);
        assert!(c.is_empty());
    }

    #[test]
    fn merge_stats() {
        let mut a = CacheStats { loaded: 3, purged: 1, hits: 7, failed: 2 };
        a.merge(&CacheStats { loaded: 2, purged: 2, hits: 1, failed: 1 });
        assert_eq!(a, CacheStats { loaded: 5, purged: 3, hits: 8, failed: 3 });
    }

    #[test]
    fn failed_load_is_not_a_load() {
        let mut c = LruCache::new(2);
        c.insert(block(1));
        c.record_failed();
        c.record_failed();
        let s = c.stats();
        assert_eq!(s.loaded, 1, "errored loads must not count toward B_L");
        assert_eq!(s.failed, 2);
        // Eq. 2 unaffected by failures: nothing was loaded or purged by them.
        assert_eq!(s.efficiency(), 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        LruCache::new(0);
    }

    #[test]
    fn manifest_orders_coldest_first() {
        let mut c = LruCache::new(3);
        c.insert(block(1));
        c.insert(block(2));
        c.insert(block(3));
        c.get(BlockId(1)); // 1 becomes hottest; order is now 2, 3, 1
        assert_eq!(c.manifest(), vec![BlockId(2), BlockId(3), BlockId(1)]);
    }

    #[test]
    fn restore_preserves_recency_and_stats_exactly() {
        let mut c = LruCache::new(2);
        c.insert(block(1));
        c.insert(block(2));
        c.get(BlockId(1));
        let manifest = c.manifest();
        let stats = c.stats();

        let mut r = LruCache::new(2);
        r.restore(manifest.iter().map(|id| block(id.0)).collect(), stats);
        assert_eq!(r.stats(), stats, "restore must not count loads or hits");
        assert_eq!(r.manifest(), manifest, "recency order must survive the round trip");
        // Behavioral equivalence: the next eviction picks the same victim.
        let evicted = r.insert(block(9));
        assert_eq!(evicted, Some(BlockId(2)), "block 2 was LRU before the snapshot");
    }

    #[test]
    #[should_panic(expected = "snapshot exceeds cache capacity")]
    fn restore_rejects_oversized_snapshot() {
        let mut c = LruCache::new(1);
        c.restore(vec![block(1), block(2)], CacheStats::default());
    }

    #[test]
    fn stats_export_mirrors_into_registry() {
        use streamline_obs::{names, MetricValue, MetricsRegistry};
        let reg = MetricsRegistry::new();
        let s = CacheStats { loaded: 5, purged: 3, hits: 8, failed: 1 };
        s.export_into(&reg);
        assert_eq!(reg.get(names::CACHE_LOADED_TOTAL), Some(MetricValue::Counter(5)));
        assert_eq!(reg.get(names::CACHE_PURGED_TOTAL), Some(MetricValue::Counter(3)));
        assert_eq!(reg.get(names::CACHE_HITS_TOTAL), Some(MetricValue::Counter(8)));
        assert_eq!(reg.get(names::CACHE_FAILED_LOADS_TOTAL), Some(MetricValue::Counter(1)));
    }
}
