//! On-disk binary block format.
//!
//! Little-endian, self-describing:
//!
//! ```text
//! magic   u32   0x53_4C_42_4B  ("SLBK")
//! version u16
//! ghost   u16
//! id      u32
//! nodes   3 × u32
//! bounds  6 × f64   (min.xyz, max.xyz)
//! spacing 3 × f64
//! data    nodes.x · nodes.y · nodes.z × 3 × f32
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use streamline_field::block::{Block, BlockId, BlockShapeError};
use streamline_math::{Aabb, Vec3};

const MAGIC: u32 = 0x534C_424B;
const VERSION: u16 = 1;

/// Errors when decoding a block payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    TooShort,
    BadMagic(u32),
    BadVersion(u16),
    LengthMismatch {
        expected: usize,
        actual: usize,
    },
    /// The header describes a lattice the interpolation stencil cannot use.
    DegenerateShape(BlockShapeError),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::TooShort => write!(f, "block payload truncated"),
            FormatError::BadMagic(m) => write!(f, "bad magic {m:#x}"),
            FormatError::BadVersion(v) => write!(f, "unsupported version {v}"),
            FormatError::LengthMismatch { expected, actual } => {
                write!(f, "data length {actual} != expected {expected}")
            }
            FormatError::DegenerateShape(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Serialized size in bytes of a block with the given node counts.
pub fn encoded_size(nodes: [usize; 3]) -> usize {
    4 + 2 + 2 + 4 + 12 + 48 + 24 + nodes[0] * nodes[1] * nodes[2] * 12
}

/// Encode a block into its on-disk representation.
pub fn encode(block: &Block) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_size(block.nodes));
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(block.ghost as u16);
    buf.put_u32_le(block.id.0);
    for n in block.nodes {
        buf.put_u32_le(n as u32);
    }
    for v in [block.bounds.min, block.bounds.max] {
        buf.put_f64_le(v.x);
        buf.put_f64_le(v.y);
        buf.put_f64_le(v.z);
    }
    buf.put_f64_le(block.spacing.x);
    buf.put_f64_le(block.spacing.y);
    buf.put_f64_le(block.spacing.z);
    for s in &block.data {
        buf.put_f32_le(s[0]);
        buf.put_f32_le(s[1]);
        buf.put_f32_le(s[2]);
    }
    buf.freeze()
}

/// Decode a block from its on-disk representation.
pub fn decode(mut buf: &[u8]) -> Result<Block, FormatError> {
    let header = 4 + 2 + 2 + 4 + 12 + 48 + 24;
    if buf.len() < header {
        return Err(FormatError::TooShort);
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(FormatError::BadMagic(magic));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(FormatError::BadVersion(version));
    }
    let ghost = buf.get_u16_le() as usize;
    let id = BlockId(buf.get_u32_le());
    let nodes = [buf.get_u32_le() as usize, buf.get_u32_le() as usize, buf.get_u32_le() as usize];
    let min = Vec3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
    let max = Vec3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
    let spacing = Vec3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
    let count = nodes[0] * nodes[1] * nodes[2];
    if buf.len() != count * 12 {
        return Err(FormatError::LengthMismatch { expected: count * 12, actual: buf.len() });
    }
    let mut block = Block::try_zeroed(id, Aabb::new(min, max), ghost, nodes, spacing)
        .map_err(FormatError::DegenerateShape)?;
    for s in block.data.iter_mut() {
        s[0] = buf.get_f32_le();
        s[1] = buf.get_f32_le();
        s[2] = buf.get_f32_le();
    }
    Ok(block)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block {
        let mut b = Block::zeroed(
            BlockId(9),
            Aabb::new(Vec3::ZERO, Vec3::splat(2.0)),
            1,
            [4, 4, 4],
            Vec3::splat(0.5),
        );
        for (i, s) in b.data.iter_mut().enumerate() {
            *s = [i as f32, -(i as f32), 0.5 * i as f32];
        }
        b
    }

    #[test]
    fn roundtrip_exact() {
        let b = sample_block();
        let bytes = encode(&b);
        assert_eq!(bytes.len(), encoded_size(b.nodes));
        let d = decode(&bytes).unwrap();
        assert_eq!(d, b);
    }

    #[test]
    fn rejects_bad_magic() {
        let b = sample_block();
        let mut bytes = encode(&b).to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(decode(&bytes), Err(FormatError::BadMagic(_))));
    }

    #[test]
    fn rejects_truncation() {
        let b = sample_block();
        let bytes = encode(&b);
        assert!(matches!(decode(&bytes[..10]), Err(FormatError::TooShort)));
        let almost = &bytes[..bytes.len() - 4];
        assert!(matches!(decode(almost), Err(FormatError::LengthMismatch { .. })));
    }

    #[test]
    fn rejects_future_version() {
        let b = sample_block();
        let mut bytes = encode(&b).to_vec();
        bytes[4] = 99;
        assert!(matches!(decode(&bytes), Err(FormatError::BadVersion(99))));
    }

    #[test]
    fn rejects_degenerate_lattice_instead_of_panicking() {
        // Regression: a header claiming a 1-node axis used to reach block
        // construction (and later an index underflow in interpolation).
        let b = sample_block();
        let mut bytes = encode(&b).to_vec();
        // nodes[0] is the little-endian u32 at offset 12 (magic+ver+ghost+id).
        bytes[12..16].copy_from_slice(&1u32.to_le_bytes());
        // Keep the payload length consistent with the forged header.
        let forged_count = b.nodes[1] * b.nodes[2];
        bytes.truncate(4 + 2 + 2 + 4 + 12 + 48 + 24 + forged_count * 12);
        match decode(&bytes) {
            Err(FormatError::DegenerateShape(e)) => assert_eq!(e.nodes, [1, 4, 4]),
            other => panic!("expected DegenerateShape, got {other:?}"),
        }
    }
}
