//! Block stores: where block payloads come from.
//!
//! All three algorithms consume blocks through the [`BlockStore`] trait, so
//! the same algorithm code runs against real files (thread runtime,
//! examples), a prebuilt in-memory set (tests) or on-demand field sampling
//! (the simulated cluster, where load *time* is charged by the cost model
//! rather than spent).

use crate::format;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use streamline_field::block::{Block, BlockId};
use streamline_field::dataset::Dataset;

/// Why a block could not be produced.
#[derive(Debug)]
pub enum StoreError {
    /// The id is outside the store's decomposition.
    UnknownBlock { id: BlockId, num_blocks: usize },
    /// Reading the block's backing file failed.
    Io { path: PathBuf, source: io::Error },
    /// The file was read but its payload is not a valid block.
    Decode { path: PathBuf, source: format::FormatError },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownBlock { id, num_blocks } => {
                write!(f, "unknown block {id:?} (store holds {num_blocks} blocks)")
            }
            StoreError::Io { path, source } => {
                write!(f, "reading block file {}: {source}", path.display())
            }
            StoreError::Decode { path, source } => {
                write!(f, "decoding block file {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::UnknownBlock { .. } => None,
            StoreError::Io { source, .. } => Some(source),
            StoreError::Decode { source, .. } => Some(source),
        }
    }
}

/// Source of block payloads. Thread-safe: multiple ranks load concurrently.
pub trait BlockStore: Send + Sync {
    /// Load one block, reporting failures (missing/corrupt files, unknown
    /// ids) as typed errors.
    fn try_load(&self, id: BlockId) -> Result<Arc<Block>, StoreError>;

    /// Load one block, panicking on failure with the error's context. The
    /// simulation drivers use this: an unreadable block there is a setup
    /// bug, not a runtime condition to recover from.
    fn load(&self, id: BlockId) -> Arc<Block> {
        self.try_load(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of blocks available.
    fn num_blocks(&self) -> usize;

    /// Mid-run mutable state of the store itself, if it has any. Stateless
    /// stores (memory, field, disk) return `None`; [`crate::FaultStore`]
    /// returns its attempt counts and injection counters so checkpoints can
    /// persist the remaining fault schedule.
    fn fault_state(&self) -> Option<crate::fault::FaultState> {
        None
    }

    /// Restore state captured by [`Self::fault_state`]. No-op for stateless
    /// stores.
    fn restore_fault_state(&self, state: &crate::fault::FaultState) {
        let _ = state;
    }
}

/// All blocks pre-built in memory.
pub struct MemoryStore {
    blocks: Vec<Arc<Block>>,
}

impl MemoryStore {
    /// Build every block of `dataset` up front (in parallel — sampling a
    /// 512-block dataset is embarrassingly parallel).
    pub fn build(dataset: &Dataset) -> Self {
        use rayon::prelude::*;
        let ids: Vec<_> = dataset.decomp.all_blocks().collect();
        let blocks = ids.into_par_iter().map(|id| Arc::new(dataset.build_block(id))).collect();
        MemoryStore { blocks }
    }

    pub fn from_blocks(blocks: Vec<Block>) -> Self {
        MemoryStore { blocks: blocks.into_iter().map(Arc::new).collect() }
    }
}

impl BlockStore for MemoryStore {
    fn try_load(&self, id: BlockId) -> Result<Arc<Block>, StoreError> {
        self.blocks
            .get(id.index())
            .map(Arc::clone)
            .ok_or(StoreError::UnknownBlock { id, num_blocks: self.blocks.len() })
    }

    fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// Samples blocks from the dataset's analytic field on first use and
/// memoizes them — the store the simulated cluster uses, so a 512-block
/// dataset never needs to be fully resident.
///
/// Loads are single-flight: when several ranks race on the same id, one
/// builds the block and the rest wait for it instead of sampling the same
/// lattice redundantly.
pub struct FieldStore {
    dataset: Dataset,
    cache: Mutex<HashMap<BlockId, Arc<Block>>>,
    /// Ids currently being built; waiters park on the condvar.
    inflight: Mutex<HashSet<BlockId>>,
    inflight_done: Condvar,
    builds: AtomicU64,
    coalesced: AtomicU64,
}

/// Removes the in-flight marker even if block construction panics, so
/// waiters wake up and retry instead of parking forever.
struct InflightGuard<'a> {
    store: &'a FieldStore,
    id: BlockId,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.store.inflight.lock().remove(&self.id);
        self.store.inflight_done.notify_all();
    }
}

impl FieldStore {
    pub fn new(dataset: Dataset) -> Self {
        FieldStore {
            dataset,
            cache: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashSet::new()),
            inflight_done: Condvar::new(),
            builds: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Blocks actually sampled from the field.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Loads that waited on another rank's in-flight build of the same id
    /// instead of building redundantly.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }
}

impl BlockStore for FieldStore {
    fn try_load(&self, id: BlockId) -> Result<Arc<Block>, StoreError> {
        if id.index() >= self.dataset.decomp.num_blocks() {
            return Err(StoreError::UnknownBlock {
                id,
                num_blocks: self.dataset.decomp.num_blocks(),
            });
        }
        loop {
            if let Some(b) = self.cache.lock().get(&id) {
                return Ok(Arc::clone(b));
            }
            // Claim the build or wait for whoever holds the claim.
            {
                let mut inflight = self.inflight.lock();
                if inflight.contains(&id) {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    while inflight.contains(&id) {
                        self.inflight_done.wait(&mut inflight);
                    }
                    // Re-check the cache (covers the builder panicking too).
                    continue;
                }
                inflight.insert(id);
            }
            let guard = InflightGuard { store: self, id };
            // Sample outside both locks: block construction is the
            // expensive part, and waiters are parked, not spinning.
            let built = Arc::new(self.dataset.build_block(id));
            self.builds.fetch_add(1, Ordering::Relaxed);
            self.cache.lock().insert(id, Arc::clone(&built));
            drop(guard);
            return Ok(built);
        }
    }

    fn num_blocks(&self) -> usize {
        self.dataset.decomp.num_blocks()
    }
}

/// Real files on disk, one per block, in the [`format`] binary layout.
pub struct DiskStore {
    dir: PathBuf,
    num_blocks: usize,
}

impl DiskStore {
    /// Write every block of `dataset` into `dir` (created if needed) and
    /// open a store over it. Sampling and writing are parallel per block.
    pub fn create(dataset: &Dataset, dir: &Path) -> io::Result<Self> {
        use rayon::prelude::*;
        std::fs::create_dir_all(dir)?;
        let ids: Vec<BlockId> = dataset.decomp.all_blocks().collect();
        ids.into_par_iter().try_for_each(|id| {
            let block = dataset.build_block(id);
            std::fs::write(Self::block_path(dir, id), format::encode(&block))
        })?;
        Ok(DiskStore { dir: dir.to_path_buf(), num_blocks: dataset.decomp.num_blocks() })
    }

    /// Open an existing store directory containing `num_blocks` block files.
    pub fn open(dir: &Path, num_blocks: usize) -> Self {
        DiskStore { dir: dir.to_path_buf(), num_blocks }
    }

    fn block_path(dir: &Path, id: BlockId) -> PathBuf {
        dir.join(format!("block_{:05}.slbk", id.0))
    }

    /// Path of one block's file.
    pub fn path_of(&self, id: BlockId) -> PathBuf {
        Self::block_path(&self.dir, id)
    }
}

impl BlockStore for DiskStore {
    fn try_load(&self, id: BlockId) -> Result<Arc<Block>, StoreError> {
        let path = self.path_of(id);
        let bytes =
            std::fs::read(&path).map_err(|source| StoreError::Io { path: path.clone(), source })?;
        let block = format::decode(&bytes).map_err(|source| StoreError::Decode { path, source })?;
        Ok(Arc::new(block))
    }

    fn num_blocks(&self) -> usize {
        self.num_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use streamline_field::dataset::DatasetConfig;

    fn tiny_dataset() -> Dataset {
        let mut cfg = DatasetConfig::tiny();
        cfg.blocks_per_axis = [2, 2, 2];
        cfg.cells_per_block = [4, 4, 4];
        Dataset::thermal_hydraulics(cfg)
    }

    #[test]
    fn memory_store_serves_all_blocks() {
        let ds = tiny_dataset();
        let store = MemoryStore::build(&ds);
        assert_eq!(store.num_blocks(), 8);
        for id in ds.decomp.all_blocks() {
            let b = store.load(id);
            assert_eq!(b.id, id);
            assert_eq!(b.bounds, ds.decomp.block_bounds(id));
        }
    }

    #[test]
    fn field_store_memoizes() {
        let ds = tiny_dataset();
        let store = FieldStore::new(ds);
        let a = store.load(BlockId(3));
        let b = store.load(BlockId(3));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn field_store_matches_memory_store() {
        let ds = tiny_dataset();
        let mem = MemoryStore::build(&ds);
        let field = FieldStore::new(ds);
        for i in 0..8u32 {
            assert_eq!(*mem.load(BlockId(i)), *field.load(BlockId(i)));
        }
    }

    #[test]
    fn field_store_single_flight_under_contention() {
        // 8 threads race on the same two ids; every id must be sampled
        // exactly once, with the losers coalescing onto the winner's build.
        let store = Arc::new(FieldStore::new(tiny_dataset()));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || store.load(BlockId(t % 2)))
            })
            .collect();
        let blocks: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        assert_eq!(store.builds(), 2, "each id must be built exactly once");
        for b in &blocks {
            assert!(Arc::ptr_eq(b, &store.load(b.id)), "all loads share one allocation");
        }
    }

    #[test]
    fn disk_store_roundtrips_blocks() {
        let ds = tiny_dataset();
        let dir = TempDir::new("slbk-test");
        let store = DiskStore::create(&ds, dir.path()).unwrap();
        let mem = MemoryStore::build(&ds);
        for id in ds.decomp.all_blocks() {
            assert_eq!(*store.load(id), *mem.load(id));
        }
    }

    #[test]
    #[should_panic(expected = "reading block file")]
    fn disk_store_missing_file_panics_with_path() {
        let store = DiskStore::open(Path::new("/nonexistent-dir-xyz"), 1);
        let _ = store.load(BlockId(0));
    }

    #[test]
    fn disk_store_missing_file_yields_io_error() {
        let store = DiskStore::open(Path::new("/nonexistent-dir-xyz"), 1);
        match store.try_load(BlockId(0)) {
            Err(StoreError::Io { path, source }) => {
                assert!(path.to_string_lossy().contains("nonexistent-dir-xyz"));
                assert_eq!(source.kind(), io::ErrorKind::NotFound);
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn disk_store_corrupt_file_yields_decode_error() {
        let dir = TempDir::new("slbk-corrupt");
        let store = DiskStore::open(dir.path(), 1);
        std::fs::write(store.path_of(BlockId(0)), b"not a block").unwrap();
        match store.try_load(BlockId(0)) {
            Err(StoreError::Decode { path, .. }) => {
                assert!(path.to_string_lossy().ends_with(".slbk"));
            }
            other => panic!("expected Decode error, got {other:?}"),
        }
    }

    #[test]
    fn memory_store_unknown_block_is_typed() {
        let ds = tiny_dataset();
        let store = MemoryStore::build(&ds);
        match store.try_load(BlockId(99)) {
            Err(StoreError::UnknownBlock { id, num_blocks }) => {
                assert_eq!(id, BlockId(99));
                assert_eq!(num_blocks, 8);
            }
            other => panic!("expected UnknownBlock, got {other:?}"),
        }
        assert!(FieldStore::new(tiny_dataset()).try_load(BlockId(99)).is_err());
    }
}
