//! Block stores: where block payloads come from.
//!
//! All three algorithms consume blocks through the [`BlockStore`] trait, so
//! the same algorithm code runs against real files (thread runtime,
//! examples), a prebuilt in-memory set (tests) or on-demand field sampling
//! (the simulated cluster, where load *time* is charged by the cost model
//! rather than spent).

use crate::format;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use streamline_field::block::{Block, BlockId};
use streamline_field::dataset::Dataset;

/// Source of block payloads. Thread-safe: multiple ranks load concurrently.
pub trait BlockStore: Send + Sync {
    /// Load one block. Panics on unknown ids (the decomposition is the
    /// single source of truth for which ids exist).
    fn load(&self, id: BlockId) -> Arc<Block>;

    /// Number of blocks available.
    fn num_blocks(&self) -> usize;
}

/// All blocks pre-built in memory.
pub struct MemoryStore {
    blocks: Vec<Arc<Block>>,
}

impl MemoryStore {
    /// Build every block of `dataset` up front (in parallel — sampling a
    /// 512-block dataset is embarrassingly parallel).
    pub fn build(dataset: &Dataset) -> Self {
        use rayon::prelude::*;
        let ids: Vec<_> = dataset.decomp.all_blocks().collect();
        let blocks = ids
            .into_par_iter()
            .map(|id| Arc::new(dataset.build_block(id)))
            .collect();
        MemoryStore { blocks }
    }

    pub fn from_blocks(blocks: Vec<Block>) -> Self {
        MemoryStore { blocks: blocks.into_iter().map(Arc::new).collect() }
    }
}

impl BlockStore for MemoryStore {
    fn load(&self, id: BlockId) -> Arc<Block> {
        Arc::clone(&self.blocks[id.index()])
    }

    fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// Samples blocks from the dataset's analytic field on first use and
/// memoizes them — the store the simulated cluster uses, so a 512-block
/// dataset never needs to be fully resident.
pub struct FieldStore {
    dataset: Dataset,
    cache: Mutex<HashMap<BlockId, Arc<Block>>>,
}

impl FieldStore {
    pub fn new(dataset: Dataset) -> Self {
        FieldStore { dataset, cache: Mutex::new(HashMap::new()) }
    }

    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }
}

impl BlockStore for FieldStore {
    fn load(&self, id: BlockId) -> Arc<Block> {
        if let Some(b) = self.cache.lock().get(&id) {
            return Arc::clone(b);
        }
        // Sample outside the lock: block construction is the expensive part
        // and two ranks racing on the same id just do redundant work once.
        let built = Arc::new(self.dataset.build_block(id));
        let mut cache = self.cache.lock();
        Arc::clone(cache.entry(id).or_insert(built))
    }

    fn num_blocks(&self) -> usize {
        self.dataset.decomp.num_blocks()
    }
}

/// Real files on disk, one per block, in the [`format`] binary layout.
pub struct DiskStore {
    dir: PathBuf,
    num_blocks: usize,
}

impl DiskStore {
    /// Write every block of `dataset` into `dir` (created if needed) and
    /// open a store over it. Sampling and writing are parallel per block.
    pub fn create(dataset: &Dataset, dir: &Path) -> io::Result<Self> {
        use rayon::prelude::*;
        std::fs::create_dir_all(dir)?;
        let ids: Vec<BlockId> = dataset.decomp.all_blocks().collect();
        ids.into_par_iter().try_for_each(|id| {
            let block = dataset.build_block(id);
            std::fs::write(Self::block_path(dir, id), format::encode(&block))
        })?;
        Ok(DiskStore { dir: dir.to_path_buf(), num_blocks: dataset.decomp.num_blocks() })
    }

    /// Open an existing store directory containing `num_blocks` block files.
    pub fn open(dir: &Path, num_blocks: usize) -> Self {
        DiskStore { dir: dir.to_path_buf(), num_blocks }
    }

    fn block_path(dir: &Path, id: BlockId) -> PathBuf {
        dir.join(format!("block_{:05}.slbk", id.0))
    }

    /// Path of one block's file.
    pub fn path_of(&self, id: BlockId) -> PathBuf {
        Self::block_path(&self.dir, id)
    }
}

impl BlockStore for DiskStore {
    fn load(&self, id: BlockId) -> Arc<Block> {
        let path = self.path_of(id);
        let bytes = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("reading block file {}: {e}", path.display()));
        Arc::new(
            format::decode(&bytes)
                .unwrap_or_else(|e| panic!("decoding block file {}: {e}", path.display())),
        )
    }

    fn num_blocks(&self) -> usize {
        self.num_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_field::dataset::DatasetConfig;

    fn tiny_dataset() -> Dataset {
        let mut cfg = DatasetConfig::tiny();
        cfg.blocks_per_axis = [2, 2, 2];
        cfg.cells_per_block = [4, 4, 4];
        Dataset::thermal_hydraulics(cfg)
    }

    #[test]
    fn memory_store_serves_all_blocks() {
        let ds = tiny_dataset();
        let store = MemoryStore::build(&ds);
        assert_eq!(store.num_blocks(), 8);
        for id in ds.decomp.all_blocks() {
            let b = store.load(id);
            assert_eq!(b.id, id);
            assert_eq!(b.bounds, ds.decomp.block_bounds(id));
        }
    }

    #[test]
    fn field_store_memoizes() {
        let ds = tiny_dataset();
        let store = FieldStore::new(ds);
        let a = store.load(BlockId(3));
        let b = store.load(BlockId(3));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn field_store_matches_memory_store() {
        let ds = tiny_dataset();
        let mem = MemoryStore::build(&ds);
        let field = FieldStore::new(ds);
        for i in 0..8u32 {
            assert_eq!(*mem.load(BlockId(i)), *field.load(BlockId(i)));
        }
    }

    #[test]
    fn disk_store_roundtrips_blocks() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join(format!("slbk-test-{}", std::process::id()));
        let store = DiskStore::create(&ds, &dir).unwrap();
        let mem = MemoryStore::build(&ds);
        for id in ds.decomp.all_blocks() {
            assert_eq!(*store.load(id), *mem.load(id));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "reading block file")]
    fn disk_store_missing_file_panics_with_path() {
        let store = DiskStore::open(Path::new("/nonexistent-dir-xyz"), 1);
        let _ = store.load(BlockId(0));
    }
}
