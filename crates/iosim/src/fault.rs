//! Deterministic fault injection for block stores.
//!
//! The paper's premise is that blocks live on slow, shared, *unreliable*
//! storage. [`FaultStore`] wraps any [`BlockStore`] and injects a seeded,
//! per-block schedule of failures ([`FaultPlan`]): transient I/O errors that
//! clear after k attempts, permanent failures, corrupt-payload decode
//! errors, and extra latency. Every injection is counted exactly
//! ([`FaultCounters`]), so resilience tests can assert that the faults the
//! consumers observed are precisely the faults the plan injected — no more,
//! no fewer.
//!
//! The wrapper never mutates payloads: a successful load returns the inner
//! store's block untouched, so faults can delay or deny a block but never
//! poison a cache with corrupt data.

use crate::format::FormatError;
use crate::store::{BlockStore, StoreError};
use parking_lot::Mutex;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use streamline_field::block::{Block, BlockId};

/// Magic value used for injected corrupt-payload faults, distinguishable
/// from any real on-disk corruption in test assertions.
pub const INJECTED_BAD_MAGIC: u32 = 0xDEAD_BEEF;

/// The failure a block is scheduled to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The first `clears_after` attempts fail with an I/O error; attempts
    /// after that succeed (models a contended or flaky filesystem).
    TransientIo { clears_after: u32 },
    /// Every attempt fails with an I/O error (models a lost file or a dead
    /// storage target).
    PermanentIo,
    /// Every attempt reads a payload that fails to decode (models on-disk
    /// corruption; surfaces as a typed `Decode` error, never as bad data).
    CorruptPayload,
}

impl FaultKind {
    /// Whether this fault denies the block forever (no retry can clear it).
    pub fn is_permanent(&self) -> bool {
        matches!(self, FaultKind::PermanentIo | FaultKind::CorruptPayload)
    }
}

/// Faults scheduled for one block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockFaults {
    /// Failure schedule, if any.
    pub kind: Option<FaultKind>,
    /// Extra wall-clock latency added to every attempt, including
    /// successful ones and attempts that then fail.
    pub latency: Option<Duration>,
}

/// Knobs for [`FaultPlan::random`]. All draws come from one seeded stream,
/// so a `(seed, num_blocks, params)` triple always yields the same plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosParams {
    /// Probability that a block gets a failure schedule at all.
    pub fault_prob: f64,
    /// Of faulted blocks, probability the fault is transient (clears).
    pub transient_prob: f64,
    /// Of non-transient faults, probability the failure is a corrupt
    /// payload rather than a permanent I/O error.
    pub corrupt_prob: f64,
    /// Transient faults clear after `1..=max_clears` failed attempts.
    pub max_clears: u32,
    /// Probability that a block gets injected latency.
    pub latency_prob: f64,
    /// Injected latency is uniform in `0..=max_latency_us` microseconds.
    pub max_latency_us: u64,
}

impl Default for ChaosParams {
    fn default() -> Self {
        ChaosParams {
            fault_prob: 0.25,
            transient_prob: 0.75,
            corrupt_prob: 0.5,
            max_clears: 3,
            latency_prob: 0.1,
            max_latency_us: 500,
        }
    }
}

impl ChaosParams {
    /// Faults that retries always hide: every scheduled failure is
    /// transient. Used by chaos runs that assert bit-identity with a
    /// fault-free run.
    pub fn transient_only() -> Self {
        ChaosParams { fault_prob: 0.4, transient_prob: 1.0, ..ChaosParams::default() }
    }

    /// Reject parameters the RNG would panic on (probabilities outside
    /// [0, 1], non-finite values, a zero `max_clears` that would make the
    /// transient range `1..=0` empty).
    pub fn validate(&self) -> Result<(), ChaosConfigError> {
        prob("fault_prob", self.fault_prob)?;
        prob("transient_prob", self.transient_prob)?;
        prob("corrupt_prob", self.corrupt_prob)?;
        prob("latency_prob", self.latency_prob)?;
        if self.max_clears == 0 {
            return Err(ChaosConfigError::ZeroMaxClears);
        }
        Ok(())
    }
}

fn prob(name: &'static str, value: f64) -> Result<(), ChaosConfigError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(ChaosConfigError::Probability { name, value })
    }
}

/// A chaos knob that would panic or misbehave inside the plan generator,
/// rejected up front instead.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosConfigError {
    /// A probability knob outside [0, 1] (or NaN/infinite).
    Probability { name: &'static str, value: f64 },
    /// `max_clears == 0` would make the transient clearing range empty.
    ZeroMaxClears,
    /// A rank-fault time window with `end < start`, or a non-finite or
    /// negative bound.
    Window { start: f64, end: f64 },
}

impl std::fmt::Display for ChaosConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosConfigError::Probability { name, value } => {
                write!(f, "chaos probability `{name}` must be in [0, 1], got {value}")
            }
            ChaosConfigError::ZeroMaxClears => {
                write!(f, "chaos `max_clears` must be at least 1")
            }
            ChaosConfigError::Window { start, end } => {
                write!(
                    f,
                    "rank-chaos window must satisfy 0 <= start <= end and be finite, \
                     got [{start}, {end}]"
                )
            }
        }
    }
}

impl std::error::Error for ChaosConfigError {}

/// A seeded, per-block fault schedule.
///
/// Built either explicitly (`transient` / `permanent` / `corrupt` /
/// `latency` builder calls) or randomly from a master seed
/// ([`FaultPlan::random`]). The plan is pure data — it does nothing until a
/// [`FaultStore`] executes it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    blocks: BTreeMap<BlockId, BlockFaults>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule a transient I/O fault: the first `clears_after` attempts on
    /// `id` fail, later attempts succeed.
    pub fn transient(mut self, id: BlockId, clears_after: u32) -> Self {
        self.blocks.entry(id).or_default().kind = Some(FaultKind::TransientIo { clears_after });
        self
    }

    /// Schedule a permanent I/O fault on `id`.
    pub fn permanent(mut self, id: BlockId) -> Self {
        self.blocks.entry(id).or_default().kind = Some(FaultKind::PermanentIo);
        self
    }

    /// Schedule a corrupt-payload fault on `id` (every attempt decodes to
    /// [`FormatError::BadMagic`]).
    pub fn corrupt(mut self, id: BlockId) -> Self {
        self.blocks.entry(id).or_default().kind = Some(FaultKind::CorruptPayload);
        self
    }

    /// Add injected latency to every attempt on `id`.
    pub fn latency(mut self, id: BlockId, latency: Duration) -> Self {
        self.blocks.entry(id).or_default().latency = Some(latency);
        self
    }

    /// Draw a random plan over `num_blocks` blocks from a seeded stream.
    /// Rejects invalid `params` as a typed error instead of panicking inside
    /// the RNG.
    pub fn random(
        seed: u64,
        num_blocks: usize,
        params: &ChaosParams,
    ) -> Result<Self, ChaosConfigError> {
        params.validate()?;
        let mut rng = streamline_math::rng::stream(seed, "fault-plan");
        let mut blocks = BTreeMap::new();
        for i in 0..num_blocks {
            let mut bf = BlockFaults::default();
            if rng.gen_bool(params.fault_prob) {
                bf.kind = Some(if rng.gen_bool(params.transient_prob) {
                    FaultKind::TransientIo { clears_after: rng.gen_range(1..=params.max_clears) }
                } else if rng.gen_bool(params.corrupt_prob) {
                    FaultKind::CorruptPayload
                } else {
                    FaultKind::PermanentIo
                });
            }
            if params.latency_prob > 0.0 && rng.gen_bool(params.latency_prob) {
                bf.latency = Some(Duration::from_micros(rng.gen_range(0..=params.max_latency_us)));
            }
            if bf != BlockFaults::default() {
                blocks.insert(BlockId(i as u32), bf);
            }
        }
        Ok(FaultPlan { blocks })
    }

    /// Faults scheduled for `id` (default = none).
    pub fn faults_for(&self, id: BlockId) -> BlockFaults {
        self.blocks.get(&id).copied().unwrap_or_default()
    }

    /// Blocks no retry can ever produce (permanent I/O or corrupt payload),
    /// in ascending id order.
    pub fn unavailable_blocks(&self) -> Vec<BlockId> {
        self.blocks
            .iter()
            .filter(|(_, bf)| bf.kind.is_some_and(|k| k.is_permanent()))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Blocks with a transient fault, in ascending id order.
    pub fn transient_blocks(&self) -> Vec<BlockId> {
        self.blocks
            .iter()
            .filter(|(_, bf)| matches!(bf.kind, Some(FaultKind::TransientIo { .. })))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Whether the plan schedules any fault that survives retries.
    pub fn has_permanent_faults(&self) -> bool {
        self.blocks.values().any(|bf| bf.kind.is_some_and(|k| k.is_permanent()))
    }

    /// Number of blocks with any schedule (fault or latency).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterate over `(id, faults)` in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, BlockFaults)> + '_ {
        self.blocks.iter().map(|(&id, &bf)| (id, bf))
    }
}

/// Knobs for [`RankFaultPlan::random`]: seeded fail-stop rank kills.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankChaosParams {
    /// Probability each rank is killed at all.
    pub kill_prob: f64,
    /// Kill times are uniform in `[window.0, window.1]` virtual seconds.
    pub window: (f64, f64),
}

impl Default for RankChaosParams {
    fn default() -> Self {
        RankChaosParams { kill_prob: 0.25, window: (0.0, 1e-2) }
    }
}

impl RankChaosParams {
    pub fn validate(&self) -> Result<(), ChaosConfigError> {
        prob("kill_prob", self.kill_prob)?;
        let (start, end) = self.window;
        if !(start.is_finite() && end.is_finite() && 0.0 <= start && start <= end) {
            return Err(ChaosConfigError::Window { start, end });
        }
        Ok(())
    }
}

/// A seeded schedule of fail-stop rank deaths, sorted by `(time, rank)`.
/// Pure data — it does nothing until a simulation executes it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankFaultPlan {
    /// `(rank, virtual kill time)`, sorted by time then rank.
    pub deaths: Vec<(usize, f64)>,
}

impl RankFaultPlan {
    /// An empty plan (kills nobody).
    pub fn none() -> Self {
        RankFaultPlan::default()
    }

    /// Kill exactly one rank at one time.
    pub fn one(rank: usize, time: f64) -> Self {
        RankFaultPlan { deaths: vec![(rank, time)] }
    }

    /// Draw a random death schedule over `n_ranks` ranks from a seeded
    /// stream: each rank independently dies with `kill_prob` at a uniform
    /// time inside the window. A `(seed, n_ranks, params)` triple always
    /// yields the same plan.
    pub fn random(
        seed: u64,
        n_ranks: usize,
        params: &RankChaosParams,
    ) -> Result<Self, ChaosConfigError> {
        params.validate()?;
        let mut rng = streamline_math::rng::stream(seed, "rank-fault-plan");
        let (start, end) = params.window;
        let mut deaths = Vec::new();
        for rank in 0..n_ranks {
            if rng.gen_bool(params.kill_prob) {
                let t = if end > start { start + rng.gen::<f64>() * (end - start) } else { start };
                deaths.push((rank, t));
            }
        }
        deaths.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        Ok(RankFaultPlan { deaths })
    }

    pub fn is_empty(&self) -> bool {
        self.deaths.is_empty()
    }

    pub fn len(&self) -> usize {
        self.deaths.len()
    }
}

/// Exact counts of what a [`FaultStore`] did, updated atomically so
/// concurrent consumers (the serve worker pool) keep them exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Total `try_load` attempts that reached the store.
    pub attempts: u64,
    /// Attempts that returned a block.
    pub served: u64,
    /// Injected I/O errors (transient and permanent).
    pub io_injected: u64,
    /// Injected corrupt-payload decode errors.
    pub decode_injected: u64,
    /// Attempts that were delayed by injected latency.
    pub latency_injected: u64,
}

impl FaultCounters {
    /// Total injected failures of any kind.
    pub fn faults_injected(&self) -> u64 {
        self.io_injected + self.decode_injected
    }

    /// Mirror these counters into `registry` under the stable
    /// `streamline_faults_*` names.
    pub fn export_into(&self, registry: &streamline_obs::MetricsRegistry) {
        use streamline_obs::names;
        registry.set_counter(names::FAULTS_ATTEMPTS_TOTAL, self.attempts);
        registry.set_counter(names::FAULTS_SERVED_TOTAL, self.served);
        registry.set_counter(names::FAULTS_IO_INJECTED_TOTAL, self.io_injected);
        registry.set_counter(names::FAULTS_DECODE_INJECTED_TOTAL, self.decode_injected);
        registry.set_counter(names::FAULTS_LATENCY_INJECTED_TOTAL, self.latency_injected);
    }
}

/// The mutable state a [`FaultStore`] accumulates mid-run: per-block attempt
/// counts (which drive the transient-clearing schedule) and the injection
/// counters. Checkpoints persist this so a resumed run observes the *same*
/// remaining fault schedule an uninterrupted run would.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultState {
    /// `(block, attempts seen so far)`, ascending by block id.
    pub attempts: Vec<(BlockId, u64)>,
    pub counters: FaultCounters,
}

#[derive(Default)]
struct AtomicCounters {
    attempts: AtomicU64,
    served: AtomicU64,
    io_injected: AtomicU64,
    decode_injected: AtomicU64,
    latency_injected: AtomicU64,
}

/// A [`BlockStore`] wrapper that executes a [`FaultPlan`] against an inner
/// store. Deterministic given the plan and the per-block attempt order;
/// thread-safe (attempt counts under a mutex, counters atomic).
pub struct FaultStore {
    inner: Arc<dyn BlockStore>,
    plan: FaultPlan,
    attempts: Mutex<HashMap<BlockId, u64>>,
    counters: AtomicCounters,
}

impl FaultStore {
    pub fn new(inner: Arc<dyn BlockStore>, plan: FaultPlan) -> Self {
        FaultStore {
            inner,
            plan,
            attempts: Mutex::new(HashMap::new()),
            counters: AtomicCounters::default(),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of the injection counters.
    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            attempts: self.counters.attempts.load(Ordering::Relaxed),
            served: self.counters.served.load(Ordering::Relaxed),
            io_injected: self.counters.io_injected.load(Ordering::Relaxed),
            decode_injected: self.counters.decode_injected.load(Ordering::Relaxed),
            latency_injected: self.counters.latency_injected.load(Ordering::Relaxed),
        }
    }

    /// Number of attempts seen so far for `id`.
    pub fn attempts_for(&self, id: BlockId) -> u64 {
        self.attempts.lock().get(&id).copied().unwrap_or(0)
    }

    fn injected_path(id: BlockId) -> PathBuf {
        PathBuf::from(format!("fault://block_{:05}", id.0))
    }
}

impl BlockStore for FaultStore {
    fn try_load(&self, id: BlockId) -> Result<Arc<Block>, StoreError> {
        // 1-based attempt number for this block; the mutex makes the
        // transient-clearing schedule exact even under racing loaders.
        let attempt = {
            let mut attempts = self.attempts.lock();
            let n = attempts.entry(id).or_insert(0);
            *n += 1;
            *n
        };
        self.counters.attempts.fetch_add(1, Ordering::Relaxed);
        let faults = self.plan.faults_for(id);
        if let Some(latency) = faults.latency {
            self.counters.latency_injected.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(latency);
        }
        let fail_io = match faults.kind {
            Some(FaultKind::TransientIo { clears_after }) => attempt <= clears_after as u64,
            Some(FaultKind::PermanentIo) => true,
            Some(FaultKind::CorruptPayload) => {
                self.counters.decode_injected.fetch_add(1, Ordering::Relaxed);
                return Err(StoreError::Decode {
                    path: Self::injected_path(id),
                    source: FormatError::BadMagic(INJECTED_BAD_MAGIC),
                });
            }
            None => false,
        };
        if fail_io {
            self.counters.io_injected.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::Io {
                path: Self::injected_path(id),
                source: io::Error::other(format!("injected fault (attempt {attempt})")),
            });
        }
        let block = self.inner.try_load(id)?;
        self.counters.served.fetch_add(1, Ordering::Relaxed);
        Ok(block)
    }

    fn num_blocks(&self) -> usize {
        self.inner.num_blocks()
    }

    fn fault_state(&self) -> Option<FaultState> {
        let mut attempts: Vec<(BlockId, u64)> =
            self.attempts.lock().iter().map(|(&id, &n)| (id, n)).collect();
        attempts.sort_by_key(|&(id, _)| id);
        Some(FaultState { attempts, counters: self.counters() })
    }

    fn restore_fault_state(&self, state: &FaultState) {
        *self.attempts.lock() = state.attempts.iter().copied().collect();
        let c = &state.counters;
        self.counters.attempts.store(c.attempts, Ordering::Relaxed);
        self.counters.served.store(c.served, Ordering::Relaxed);
        self.counters.io_injected.store(c.io_injected, Ordering::Relaxed);
        self.counters.decode_injected.store(c.decode_injected, Ordering::Relaxed);
        self.counters.latency_injected.store(c.latency_injected, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;
    use streamline_field::block::Block;
    use streamline_math::{Aabb, Vec3};

    fn store_of(n: u32) -> Arc<dyn BlockStore> {
        let blocks = (0..n)
            .map(|i| Block::zeroed(BlockId(i), Aabb::unit(), 0, [2, 2, 2], Vec3::splat(1.0)))
            .collect();
        Arc::new(MemoryStore::from_blocks(blocks))
    }

    #[test]
    fn transient_fault_clears_after_k_attempts() {
        let plan = FaultPlan::new().transient(BlockId(1), 2);
        let fs = FaultStore::new(store_of(4), plan);
        assert!(matches!(fs.try_load(BlockId(1)), Err(StoreError::Io { .. })));
        assert!(matches!(fs.try_load(BlockId(1)), Err(StoreError::Io { .. })));
        assert!(fs.try_load(BlockId(1)).is_ok());
        assert!(fs.try_load(BlockId(1)).is_ok());
        let c = fs.counters();
        assert_eq!(c.attempts, 4);
        assert_eq!(c.io_injected, 2);
        assert_eq!(c.served, 2);
    }

    #[test]
    fn permanent_fault_never_clears() {
        let plan = FaultPlan::new().permanent(BlockId(0));
        let fs = FaultStore::new(store_of(2), plan);
        for _ in 0..10 {
            assert!(matches!(fs.try_load(BlockId(0)), Err(StoreError::Io { .. })));
        }
        assert!(fs.try_load(BlockId(1)).is_ok());
        let c = fs.counters();
        assert_eq!(c.io_injected, 10);
        assert_eq!(c.served, 1);
        assert_eq!(c.attempts, 11);
    }

    #[test]
    fn corrupt_fault_is_typed_decode_error() {
        let plan = FaultPlan::new().corrupt(BlockId(2));
        let fs = FaultStore::new(store_of(4), plan);
        match fs.try_load(BlockId(2)) {
            Err(StoreError::Decode { source, .. }) => {
                assert_eq!(source, FormatError::BadMagic(INJECTED_BAD_MAGIC));
            }
            other => panic!("expected injected Decode error, got {other:?}"),
        }
        assert_eq!(fs.counters().decode_injected, 1);
    }

    #[test]
    fn unfaulted_blocks_pass_through_untouched() {
        let inner = store_of(4);
        let direct = inner.try_load(BlockId(3)).unwrap();
        let fs = FaultStore::new(inner, FaultPlan::new().permanent(BlockId(0)));
        let via = fs.try_load(BlockId(3)).unwrap();
        assert!(Arc::ptr_eq(&direct, &via), "FaultStore must not copy or alter blocks");
    }

    #[test]
    fn latency_fault_counts_and_delays() {
        let plan = FaultPlan::new().latency(BlockId(0), Duration::from_micros(100));
        let fs = FaultStore::new(store_of(1), plan);
        let t0 = std::time::Instant::now();
        assert!(fs.try_load(BlockId(0)).is_ok());
        assert!(t0.elapsed() >= Duration::from_micros(100));
        let c = fs.counters();
        assert_eq!(c.latency_injected, 1);
        assert_eq!(c.served, 1);
        assert_eq!(c.faults_injected(), 0, "latency alone is not a failure");
    }

    #[test]
    fn random_plan_is_deterministic_and_classified() {
        let params = ChaosParams::default();
        let a = FaultPlan::random(7, 512, &params).unwrap();
        let b = FaultPlan::random(7, 512, &params).unwrap();
        assert_eq!(a, b, "same seed must give the same plan");
        let c = FaultPlan::random(8, 512, &params).unwrap();
        assert_ne!(a, c, "different seeds should differ");
        assert!(!a.is_empty());
        // Every scheduled failure is classified exactly once.
        let perm = a.unavailable_blocks().len();
        let trans = a.transient_blocks().len();
        let with_kind = a.iter().filter(|(_, bf)| bf.kind.is_some()).count();
        assert_eq!(perm + trans, with_kind);
    }

    #[test]
    fn fault_state_roundtrip_resumes_the_schedule() {
        // A transient fault mid-schedule: 1 of 3 clearing attempts consumed.
        let plan = FaultPlan::new().transient(BlockId(1), 3);
        let fs = FaultStore::new(store_of(4), plan.clone());
        assert!(fs.try_load(BlockId(1)).is_err());
        let state = fs.fault_state().expect("FaultStore is stateful");
        assert_eq!(state.attempts, vec![(BlockId(1), 1)]);
        assert_eq!(state.counters.io_injected, 1);

        // A fresh store restored from the snapshot continues the schedule:
        // two more failures, then the fault clears — exactly as the original
        // would have.
        let resumed = FaultStore::new(store_of(4), plan);
        resumed.restore_fault_state(&state);
        assert!(resumed.try_load(BlockId(1)).is_err());
        assert!(resumed.try_load(BlockId(1)).is_err());
        assert!(resumed.try_load(BlockId(1)).is_ok());
        let c = resumed.counters();
        assert_eq!(c.attempts, 4, "counter continues from the snapshot");
        assert_eq!(c.io_injected, 3);
        assert_eq!(c.served, 1);
    }

    #[test]
    fn stateless_stores_have_no_fault_state() {
        let store = store_of(1);
        assert!(store.fault_state().is_none());
        // And restoring into one is a harmless no-op.
        store.restore_fault_state(&FaultState::default());
    }

    #[test]
    fn transient_only_plans_have_no_permanent_faults() {
        let plan = FaultPlan::random(3, 256, &ChaosParams::transient_only()).unwrap();
        assert!(!plan.has_permanent_faults());
        assert!(!plan.transient_blocks().is_empty());
    }

    #[test]
    fn out_of_range_probabilities_are_typed_errors_not_panics() {
        for (params, name) in [
            (ChaosParams { fault_prob: 1.5, ..ChaosParams::default() }, "fault_prob"),
            (ChaosParams { transient_prob: -0.1, ..ChaosParams::default() }, "transient_prob"),
            (ChaosParams { corrupt_prob: f64::NAN, ..ChaosParams::default() }, "corrupt_prob"),
            (ChaosParams { latency_prob: 2.0, ..ChaosParams::default() }, "latency_prob"),
        ] {
            match FaultPlan::random(1, 16, &params) {
                Err(ChaosConfigError::Probability { name: got, .. }) => assert_eq!(got, name),
                other => panic!("expected Probability error for {name}, got {other:?}"),
            }
        }
        assert_eq!(
            FaultPlan::random(1, 16, &ChaosParams { max_clears: 0, ..ChaosParams::default() }),
            Err(ChaosConfigError::ZeroMaxClears)
        );
    }

    #[test]
    fn rank_plan_is_deterministic_sorted_and_in_window() {
        let params = RankChaosParams { kill_prob: 0.5, window: (1e-3, 5e-3) };
        let a = RankFaultPlan::random(11, 64, &params).unwrap();
        let b = RankFaultPlan::random(11, 64, &params).unwrap();
        assert_eq!(a, b, "same seed must give the same schedule");
        assert!(!a.is_empty());
        for &(rank, t) in &a.deaths {
            assert!(rank < 64);
            assert!((1e-3..=5e-3).contains(&t), "kill time {t} outside window");
        }
        for w in a.deaths.windows(2) {
            assert!((w[0].1, w[0].0) < (w[1].1, w[1].0), "deaths not sorted");
        }
        assert_ne!(a, RankFaultPlan::random(12, 64, &params).unwrap());
    }

    #[test]
    fn rank_plan_rejects_bad_knobs() {
        assert!(matches!(
            RankFaultPlan::random(
                1,
                8,
                &RankChaosParams { kill_prob: 1.1, ..RankChaosParams::default() }
            ),
            Err(ChaosConfigError::Probability { name: "kill_prob", .. })
        ));
        assert!(matches!(
            RankFaultPlan::random(1, 8, &RankChaosParams { kill_prob: 0.5, window: (2.0, 1.0) }),
            Err(ChaosConfigError::Window { .. })
        ));
        assert!(matches!(
            RankFaultPlan::random(1, 8, &RankChaosParams { kill_prob: 0.5, window: (-1.0, 1.0) }),
            Err(ChaosConfigError::Window { .. })
        ));
        // A degenerate (point) window is fine: every death lands on it.
        let plan =
            RankFaultPlan::random(1, 8, &RankChaosParams { kill_prob: 1.0, window: (2.0, 2.0) })
                .unwrap();
        assert_eq!(plan.len(), 8);
        assert!(plan.deaths.iter().all(|&(_, t)| t == 2.0));
    }
}
