//! `streamline-ckpt-v1`: the checkpoint container format.
//!
//! A checkpoint is a sequence of independently CRC-guarded sections behind a
//! fixed magic, so a torn write, a truncated copy, or a flipped bit is always
//! detected before any payload is interpreted:
//!
//! ```text
//! "SLCKPT1\n"                                      8-byte magic
//! repeat:
//!   tag       4 bytes  ASCII section name
//!   len       8 bytes  u64 LE payload length
//!   crc32     4 bytes  u32 LE CRC-32 (IEEE) of the payload
//!   payload   len bytes (JSON via the vendored serde stack)
//! ```
//!
//! This crate owns only the *container*: framing, integrity, the `META`
//! header every file carries, and the serve warm-start manifest. What goes in
//! the per-algorithm sections is defined by `streamline-core`, which layers
//! its driver state DTOs on top — the same split as `streamline-trace-v1`
//! (schema in obs, producers elsewhere). Corruption is always a typed
//! [`CkptError`], never a panic: resuming from a bad file must degrade into
//! "start over", not take the process down.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Magic prefix of every checkpoint file (version baked in).
pub const MAGIC: &[u8; 8] = b"SLCKPT1\n";

/// Format version recorded in [`Meta`].
pub const VERSION: u32 = 1;

/// Tag of the header section every file must start with.
pub const META_TAG: &str = "META";

/// Kind string for full mid-run driver checkpoints.
pub const KIND_RUN: &str = "run";

/// Kind string for serve warm-start manifests.
pub const KIND_WARM_START: &str = "warm-start";

/// Why a checkpoint file was rejected.
#[derive(Debug)]
pub enum CkptError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file ends mid-frame (torn write / truncated copy).
    Truncated {
        offset: usize,
    },
    /// A section tag is not 4 printable ASCII bytes.
    BadTag {
        offset: usize,
    },
    /// A section payload does not match its recorded CRC.
    CrcMismatch {
        tag: String,
        expected: u32,
        actual: u32,
    },
    /// A required section is absent.
    MissingSection {
        tag: String,
    },
    /// A section payload is not the expected JSON shape.
    Json {
        tag: String,
        msg: String,
    },
    /// The checkpoint is valid but describes a different run than the one
    /// being resumed (algorithm, rank count, seed count, ...).
    Mismatch(String),
    Io(std::io::Error),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a streamline-ckpt-v1 file (bad magic)"),
            CkptError::Truncated { offset } => {
                write!(f, "truncated checkpoint: file ends mid-frame at byte {offset}")
            }
            CkptError::BadTag { offset } => {
                write!(f, "malformed section tag at byte {offset}")
            }
            CkptError::CrcMismatch { tag, expected, actual } => write!(
                f,
                "section {tag}: CRC mismatch (recorded {expected:#010x}, computed {actual:#010x})"
            ),
            CkptError::MissingSection { tag } => write!(f, "missing required section {tag}"),
            CkptError::Json { tag, msg } => write!(f, "section {tag}: bad payload: {msg}"),
            CkptError::Mismatch(msg) => write!(f, "checkpoint does not match this run: {msg}"),
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the same
/// polynomial gzip and PNG use, computed from a lazily built 256-entry table.
pub fn crc32(data: &[u8]) -> u32 {
    const fn build_table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    }
    const TABLE: [u32; 256] = build_table();
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// The `META` header: enough to re-create the run a checkpoint belongs to and
/// to reject a resume against the wrong one. Written first in every file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Meta {
    /// Format version ([`VERSION`]).
    pub version: u32,
    /// [`KIND_RUN`] or [`KIND_WARM_START`].
    pub kind: String,
    /// Driver algorithm label (`static` / `load-on-demand` / `hybrid`);
    /// empty for warm-start manifests.
    #[serde(default)]
    pub algorithm: String,
    #[serde(default)]
    pub n_procs: usize,
    #[serde(default)]
    pub n_seeds: usize,
    /// Dataset and seeding identifiers as the CLI understands them, so
    /// `run --resume <file>` needs no other arguments.
    #[serde(default)]
    pub dataset: String,
    #[serde(default)]
    pub seeding: String,
    /// LRU capacity in blocks (per rank for runs, shared for manifests).
    #[serde(default)]
    pub cache_blocks: usize,
    /// Checkpoint cadence: virtual seconds for runs, wall seconds for serve.
    #[serde(default)]
    pub interval: f64,
    /// Ordinal of this snapshot within its run (1-based).
    #[serde(default)]
    pub snapshot_seq: u64,
    /// Virtual time (runs) or uptime (serve) at which the snapshot was cut.
    #[serde(default)]
    pub taken_at: f64,
}

impl Meta {
    pub fn new(kind: &str) -> Self {
        Meta {
            version: VERSION,
            kind: kind.to_string(),
            algorithm: String::new(),
            n_procs: 0,
            n_seeds: 0,
            dataset: String::new(),
            seeding: String::new(),
            cache_blocks: 0,
            interval: 0.0,
            snapshot_seq: 0,
            taken_at: 0.0,
        }
    }
}

/// Serve warm-start manifest payload (section `RESD`): the shared LRU's
/// resident set in recency order (coldest first, so replaying inserts in
/// order reproduces the recency ranking). Block ids are raw `u64`s — this
/// crate stays below `streamline-field` in the dependency order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmStartManifest {
    pub capacity_blocks: usize,
    /// Resident block ids, least recently used first.
    pub resident: Vec<u64>,
}

/// Tag of the warm-start manifest section.
pub const RESD_TAG: &str = "RESD";

/// Streaming writer: append sections, then [`CkptWriter::finish`].
pub struct CkptWriter {
    buf: Vec<u8>,
}

impl CkptWriter {
    pub fn new() -> Self {
        CkptWriter { buf: MAGIC.to_vec() }
    }

    /// Append a raw section. `tag` must be exactly 4 printable ASCII bytes.
    pub fn section(&mut self, tag: &str, payload: &[u8]) {
        assert!(
            tag.len() == 4 && tag.bytes().all(|b| (0x20..0x7F).contains(&b)),
            "section tag must be 4 printable ASCII bytes, got {tag:?}"
        );
        self.buf.extend_from_slice(tag.as_bytes());
        self.buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
    }

    /// Append `value` serialized as JSON.
    pub fn section_value<T: Serialize>(&mut self, tag: &str, value: &T) {
        let json = serde_json::to_string(value).expect("vendored serde_json is infallible");
        self.section(tag, json.as_bytes());
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far (including magic and frame headers).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        false // the magic is always present
    }
}

impl Default for CkptWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// A parsed checkpoint: every section's CRC has already been verified.
#[derive(Debug, Clone)]
pub struct CkptFile {
    sections: Vec<(String, Vec<u8>)>,
}

impl CkptFile {
    /// Parse and integrity-check `bytes`.
    pub fn parse(bytes: &[u8]) -> Result<CkptFile, CkptError> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let mut sections = Vec::new();
        let mut at = MAGIC.len();
        while at < bytes.len() {
            if bytes.len() - at < 16 {
                return Err(CkptError::Truncated { offset: at });
            }
            let tag_bytes = &bytes[at..at + 4];
            if !tag_bytes.iter().all(|b| (0x20..0x7F).contains(b)) {
                return Err(CkptError::BadTag { offset: at });
            }
            let tag = String::from_utf8_lossy(tag_bytes).into_owned();
            let len = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
            let expected = u32::from_le_bytes(bytes[at + 12..at + 16].try_into().expect("4 bytes"));
            let start = at + 16;
            let Some(end) = (len as usize).checked_add(start).filter(|&e| e <= bytes.len()) else {
                return Err(CkptError::Truncated { offset: at });
            };
            let payload = &bytes[start..end];
            let actual = crc32(payload);
            if actual != expected {
                return Err(CkptError::CrcMismatch { tag, expected, actual });
            }
            sections.push((tag, payload.to_vec()));
            at = end;
        }
        Ok(CkptFile { sections })
    }

    pub fn read(path: &Path) -> Result<CkptFile, CkptError> {
        CkptFile::parse(&std::fs::read(path)?)
    }

    /// Section tags in file order.
    pub fn tags(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(t, _)| t.as_str())
    }

    /// Raw payload of the first section named `tag`.
    pub fn section(&self, tag: &str) -> Option<&[u8]> {
        self.sections.iter().find(|(t, _)| t == tag).map(|(_, p)| p.as_slice())
    }

    pub fn require(&self, tag: &str) -> Result<&[u8], CkptError> {
        self.section(tag).ok_or_else(|| CkptError::MissingSection { tag: tag.to_string() })
    }

    /// Decode a JSON section into `T`.
    pub fn value<T: Deserialize>(&self, tag: &str) -> Result<T, CkptError> {
        let payload = self.require(tag)?;
        let text = std::str::from_utf8(payload)
            .map_err(|e| CkptError::Json { tag: tag.to_string(), msg: e.to_string() })?;
        serde_json::from_str(text)
            .map_err(|e| CkptError::Json { tag: tag.to_string(), msg: e.to_string() })
    }

    /// The `META` header.
    pub fn meta(&self) -> Result<Meta, CkptError> {
        let meta: Meta = self.value(META_TAG)?;
        if meta.version != VERSION {
            return Err(CkptError::Mismatch(format!(
                "unsupported checkpoint version {} (this build reads {VERSION})",
                meta.version
            )));
        }
        Ok(meta)
    }
}

/// Integrity summary produced by [`validate`], for `obs-check`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CkptSummary {
    pub meta: Meta,
    /// `(tag, payload bytes)` in file order.
    pub sections: Vec<(String, u64)>,
    pub file_bytes: u64,
}

/// Parse, CRC-check, and summarize a checkpoint file.
pub fn validate(path: &Path) -> Result<CkptSummary, CkptError> {
    let bytes = std::fs::read(path)?;
    let file = CkptFile::parse(&bytes)?;
    let meta = file.meta()?;
    let sections =
        file.sections.iter().map(|(tag, payload)| (tag.clone(), payload.len() as u64)).collect();
    Ok(CkptSummary { meta, sections, file_bytes: bytes.len() as u64 })
}

/// Write `bytes` to `path` crash-consistently: write a `.tmp` sibling, then
/// rename over the target, so a crash never leaves a half-written checkpoint
/// under the final name.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_file() -> Vec<u8> {
        let mut w = CkptWriter::new();
        let mut meta = Meta::new(KIND_RUN);
        meta.algorithm = "static".into();
        meta.n_procs = 4;
        w.section_value(META_TAG, &meta);
        w.section("DATA", b"hello checkpoint");
        w.finish()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn writer_reader_roundtrip() {
        let bytes = roundtrip_file();
        let f = CkptFile::parse(&bytes).unwrap();
        assert_eq!(f.tags().collect::<Vec<_>>(), vec![META_TAG, "DATA"]);
        assert_eq!(f.section("DATA").unwrap(), b"hello checkpoint");
        let meta = f.meta().unwrap();
        assert_eq!(meta.algorithm, "static");
        assert_eq!(meta.n_procs, 4);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = roundtrip_file();
        bytes[0] ^= 0xFF;
        assert!(matches!(CkptFile::parse(&bytes), Err(CkptError::BadMagic)));
        assert!(matches!(CkptFile::parse(b"short"), Err(CkptError::BadMagic)));
    }

    #[test]
    fn flipped_payload_bit_is_crc_mismatch() {
        let mut bytes = roundtrip_file();
        let n = bytes.len();
        bytes[n - 3] ^= 0x01; // inside the DATA payload
        match CkptFile::parse(&bytes) {
            Err(CkptError::CrcMismatch { tag, .. }) => assert_eq!(tag, "DATA"),
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = roundtrip_file();
        // A cut exactly on a section boundary is a valid (shorter) file; any
        // other cut must be detected as a torn frame or payload.
        let boundaries: Vec<usize> = {
            let f = CkptFile::parse(&bytes).unwrap();
            let mut at = MAGIC.len();
            let mut b = vec![at];
            for tag in f.tags() {
                at += 16 + f.section(tag).unwrap().len();
                b.push(at);
            }
            b
        };
        for cut in MAGIC.len() + 1..bytes.len() {
            let r = CkptFile::parse(&bytes[..cut]);
            if boundaries.contains(&cut) {
                assert!(r.is_ok(), "boundary cut at {cut} is a valid shorter file");
            } else {
                assert!(
                    matches!(
                        r,
                        Err(CkptError::Truncated { .. }) | Err(CkptError::CrcMismatch { .. })
                    ),
                    "cut at {cut} must fail, got {r:?}"
                );
            }
        }
    }

    #[test]
    fn oversized_length_field_is_truncated_not_panic() {
        let mut w = CkptWriter::new();
        w.section("DATA", b"x");
        let mut bytes = w.finish();
        // Corrupt the length field to u64::MAX; the add must not overflow.
        let at = MAGIC.len() + 4;
        bytes[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(CkptFile::parse(&bytes), Err(CkptError::Truncated { .. })));
    }

    #[test]
    fn missing_section_is_typed() {
        let f = CkptFile::parse(&roundtrip_file()).unwrap();
        assert!(matches!(
            f.require("NOPE"),
            Err(CkptError::MissingSection { tag }) if tag == "NOPE"
        ));
    }

    #[test]
    fn garbage_json_is_typed_error() {
        let mut w = CkptWriter::new();
        w.section(META_TAG, b"not json at all");
        let f = CkptFile::parse(&w.finish()).unwrap();
        assert!(matches!(f.meta(), Err(CkptError::Json { .. })));
    }

    #[test]
    fn future_version_rejected_with_mismatch() {
        let mut w = CkptWriter::new();
        let mut meta = Meta::new(KIND_RUN);
        meta.version = 99;
        w.section_value(META_TAG, &meta);
        let f = CkptFile::parse(&w.finish()).unwrap();
        assert!(matches!(f.meta(), Err(CkptError::Mismatch(_))));
    }

    #[test]
    fn warm_start_manifest_roundtrips() {
        let m = WarmStartManifest { capacity_blocks: 8, resident: vec![3, 1, 4, 1, 5] };
        let mut w = CkptWriter::new();
        w.section_value(META_TAG, &Meta::new(KIND_WARM_START));
        w.section_value(RESD_TAG, &m);
        let f = CkptFile::parse(&w.finish()).unwrap();
        assert_eq!(f.meta().unwrap().kind, KIND_WARM_START);
        let back: WarmStartManifest = f.value(RESD_TAG).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn validate_summarizes_sections() {
        let dir = std::env::temp_dir().join(format!("slckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v.ckpt");
        write_atomic(&path, &roundtrip_file()).unwrap();
        let s = validate(&path).unwrap();
        assert_eq!(s.meta.kind, KIND_RUN);
        assert_eq!(s.sections.len(), 2);
        assert_eq!(s.sections[1], ("DATA".to_string(), 16));
        assert!(!path.with_extension("tmp").exists(), "atomic write leaves no temp file");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
