//! Block payloads for space-time blocks, sampled from an unsteady field's
//! snapshot slices and memoized.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use streamline_field::block::Block;
use streamline_field::sample::sample_block_nodes;
use streamline_field::timedecomp::{SpaceTimeBlockId, TimeBlockDecomposition};
use streamline_field::unsteady::{FrozenSlice, UnsteadyField};

/// Memoizing source of space-time block payloads.
pub struct SpaceTimeStore<U> {
    decomp: TimeBlockDecomposition,
    field: Arc<U>,
    cache: Mutex<HashMap<SpaceTimeBlockId, Arc<Block>>>,
}

impl<U: UnsteadyField + Clone + 'static> SpaceTimeStore<U> {
    pub fn new(decomp: TimeBlockDecomposition, field: Arc<U>) -> Self {
        SpaceTimeStore { decomp, field, cache: Mutex::new(HashMap::new()) }
    }

    pub fn decomp(&self) -> &TimeBlockDecomposition {
        &self.decomp
    }

    /// Load (or reuse) the payload of one space-time block.
    pub fn load(&self, id: SpaceTimeBlockId) -> Arc<Block> {
        if let Some(b) = self.cache.lock().get(&id) {
            return Arc::clone(b);
        }
        let slice = FrozenSlice { field: (*self.field).clone(), t: self.decomp.time_of(id.step) };
        let built = Arc::new(sample_block_nodes(&slice, &self.decomp.space, id.space));
        let mut cache = self.cache.lock();
        Arc::clone(cache.entry(id).or_insert(built))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_field::decomp::BlockDecomposition;
    use streamline_field::unsteady::UnsteadyDoubleGyre;
    use streamline_math::{Aabb, Vec3};

    fn store() -> SpaceTimeStore<UnsteadyDoubleGyre> {
        let space = BlockDecomposition::new(
            Aabb::new(Vec3::ZERO, Vec3::new(2.0, 1.0, 0.5)),
            [2, 2, 1],
            [6, 6, 4],
            1,
        );
        let field = UnsteadyDoubleGyre::standard();
        SpaceTimeStore::new(TimeBlockDecomposition::new(space, 11, 0.0, 20.0), Arc::new(field))
    }

    #[test]
    fn blocks_differ_between_snapshots() {
        let s = store();
        let space = s.decomp().space.id_of(0, 0, 0);
        let a = s.load(SpaceTimeBlockId { space, step: 0 });
        let b = s.load(SpaceTimeBlockId { space, step: 3 });
        assert_ne!(a.data, b.data, "unsteady field must change between snapshots");
        assert_eq!(a.bounds, b.bounds);
    }

    #[test]
    fn memoizes_per_spacetime_id() {
        let s = store();
        let id = SpaceTimeBlockId { space: s.decomp().space.id_of(1, 0, 0), step: 2 };
        let a = s.load(id);
        let b = s.load(id);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_block_matches_frozen_field() {
        let s = store();
        let space = s.decomp().space.id_of(0, 1, 0);
        let step = 4u32;
        let block = s.load(SpaceTimeBlockId { space, step });
        let t = s.decomp().time_of(step);
        let field = UnsteadyDoubleGyre::standard();
        let p = block.bounds.center();
        let sampled = block.sample(p).unwrap();
        assert!(sampled.distance(field.eval(p, t)) < 1e-3);
    }
}
