//! The two pathline I/O strategies §8 contrasts.
//!
//! * [`run_on_demand`] — each worker loads whichever space-time block pair
//!   its particles need next into a bounded LRU cache. This is the regime
//!   the paper observed: "computing pathlines leads to many small reads
//!   that can often overwhelm the file system".
//! * [`run_time_sweep`] — advance global time one snapshot interval at a
//!   time, loading every needed block exactly once per snapshot ("reading a
//!   block from disk only once") at the price of lock-step progress.
//!
//! Both produce *identical trajectories*; only the read pattern differs.

use crate::sampler::PairSampler;
use crate::store::SpaceTimeStore;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use streamline_field::block::Block;
use streamline_field::timedecomp::{SpaceTimeBlockId, TimeBlockDecomposition};
use streamline_field::unsteady::UnsteadyField;
use streamline_integrate::tracer::{AdvectOutcome, StepLimits};
use streamline_integrate::unsteady::advect_pathline;
use streamline_integrate::{Streamline, StreamlineId, Termination};
use streamline_iosim::DiskModel;
use streamline_math::Vec3;

/// Limits and cost model for a pathline run.
#[derive(Clone, Copy)]
pub struct PathlineConfig {
    pub limits: StepLimits,
    /// LRU capacity (in space-time blocks) for the on-demand strategy.
    pub cache_blocks: usize,
    pub disk: DiskModel,
}

impl Default for PathlineConfig {
    fn default() -> Self {
        PathlineConfig {
            limits: StepLimits::default(),
            cache_blocks: 8,
            disk: DiskModel::paper_scale(),
        }
    }
}

/// Read-pattern accounting — the §8 comparison metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ReadStats {
    /// Block reads issued.
    pub loads: u64,
    /// Reads that re-fetched a block already read earlier in the run.
    pub redundant_loads: u64,
    /// Charged I/O time (loads × block load time).
    pub io_time: f64,
}

/// The completed run.
pub struct PathlineOutcome {
    /// All pathlines, sorted by id, each terminated.
    pub pathlines: Vec<Streamline>,
    pub reads: ReadStats,
}

/// Advance one particle as far as its resident pair allows.
/// `resident` must yield the pair's blocks if available.
fn advance_particle(
    decomp: &TimeBlockDecomposition,
    sl: &mut Streamline,
    resident: &dyn Fn(SpaceTimeBlockId) -> Option<Arc<Block>>,
    limits: &StepLimits,
) -> Option<SpaceTimeBlockId> {
    loop {
        let Some([lo, hi]) = decomp.blocks_needed(sl.state.position, sl.state.time) else {
            sl.terminate(Termination::ExitedDomain);
            return None;
        };
        if sl.state.time >= decomp.t_end - 1e-12 {
            sl.terminate(Termination::MaxTime);
            return None;
        }
        let (Some(a), Some(b)) = (resident(lo), resident(hi)) else {
            // Parked: the caller must load `lo`/`hi`.
            return Some(lo);
        };
        let t_lo = decomp.time_of(lo.step);
        let t_hi = decomp.time_of(hi.step);
        let pair = PairSampler::new(a, b, t_lo, t_hi);
        let bounds = decomp.space.block_bounds(lo.space);
        let sample = |p: Vec3, t: f64| pair.sample(p, t);
        let region = move |p: Vec3, t: f64| bounds.contains(p) && t < t_hi;
        match advect_pathline(sl, &sample, &region, decomp.t_end, limits).outcome {
            AdvectOutcome::Terminated(_) => return None,
            AdvectOutcome::LeftRegion => continue, // re-derive the pair
        }
    }
}

/// Naive per-particle on-demand loading with a bounded LRU cache.
pub fn run_on_demand<U: UnsteadyField + Clone + 'static>(
    store: &SpaceTimeStore<U>,
    seeds: &[Vec3],
    cfg: &PathlineConfig,
) -> PathlineOutcome {
    let decomp = *store.decomp();
    let mut reads = ReadStats::default();
    let mut ever_loaded: std::collections::HashSet<SpaceTimeBlockId> =
        std::collections::HashSet::new();
    // Tiny local LRU over space-time ids.
    let mut cache: Vec<(SpaceTimeBlockId, Arc<Block>, u64)> = Vec::new();
    let mut tick = 0u64;

    let mut parked: BTreeMap<SpaceTimeBlockId, Vec<Streamline>> = BTreeMap::new();
    let mut finished: Vec<Streamline> = Vec::new();
    for (i, &p) in seeds.iter().enumerate() {
        let mut sl = Streamline::new_lean(StreamlineId(i as u32), p, cfg.limits.h0);
        sl.state.time = decomp.t_start;
        match decomp.blocks_needed(p, decomp.t_start) {
            Some([lo, _]) => parked.entry(lo).or_default().push(sl),
            None => {
                sl.terminate(Termination::ExitedDomain);
                finished.push(sl);
            }
        }
    }

    while !parked.is_empty() {
        // Advance everything whose pair is resident.
        loop {
            tick += 1;
            let ready = parked.keys().copied().find(|&lo| {
                let hi = SpaceTimeBlockId { space: lo.space, step: lo.step + 1 };
                cache.iter().any(|(k, _, _)| *k == lo) && cache.iter().any(|(k, _, _)| *k == hi)
            });
            let Some(key) = ready else { break };
            let list = parked.remove(&key).expect("key just found");
            for mut sl in list {
                let next = {
                    let lookup = |id: SpaceTimeBlockId| {
                        cache.iter().find(|(k, _, _)| *k == id).map(|(_, b, _)| Arc::clone(b))
                    };
                    advance_particle(&decomp, &mut sl, &lookup, &cfg.limits)
                };
                match next {
                    None => finished.push(sl),
                    Some(lo) => parked.entry(lo).or_default().push(sl),
                }
            }
        }
        // Load the most-demanded missing block of the most-populated pair.
        let Some((&lo, _)) =
            parked.iter().max_by_key(|(k, v)| (v.len(), std::cmp::Reverse(k.space.0)))
        else {
            break;
        };
        let hi = SpaceTimeBlockId { space: lo.space, step: lo.step + 1 };
        for id in [lo, hi] {
            if cache.iter().any(|(k, _, _)| *k == id) {
                continue;
            }
            let block = store.load(id);
            reads.loads += 1;
            reads.io_time += cfg.disk.block_load_time();
            if !ever_loaded.insert(id) {
                reads.redundant_loads += 1;
            }
            tick += 1;
            if cache.len() >= cfg.cache_blocks {
                // Evict least recently used.
                let idx = cache
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, _, last))| *last)
                    .map(|(i, _)| i)
                    .expect("cache nonempty");
                cache.swap_remove(idx);
            }
            cache.push((id, block, tick));
        }
        // Refresh recency of the pair we are about to use.
        for entry in cache.iter_mut() {
            if entry.0 == lo || entry.0 == hi {
                entry.2 = tick;
            }
        }
    }

    finished.sort_by_key(|s| s.id);
    PathlineOutcome { pathlines: finished, reads }
}

/// The §8 proposal: sweep time forward one snapshot interval at a time,
/// reading each needed block exactly once.
pub fn run_time_sweep<U: UnsteadyField + Clone + 'static>(
    store: &SpaceTimeStore<U>,
    seeds: &[Vec3],
    cfg: &PathlineConfig,
) -> PathlineOutcome {
    let decomp = *store.decomp();
    let mut reads = ReadStats::default();
    let mut resident: HashMap<SpaceTimeBlockId, Arc<Block>> = HashMap::new();
    let mut finished: Vec<Streamline> = Vec::new();

    // Particles waiting, keyed by the lo block of the pair they need.
    let mut parked: BTreeMap<SpaceTimeBlockId, Vec<Streamline>> = BTreeMap::new();
    for (i, &p) in seeds.iter().enumerate() {
        let mut sl = Streamline::new_lean(StreamlineId(i as u32), p, cfg.limits.h0);
        sl.state.time = decomp.t_start;
        match decomp.blocks_needed(p, decomp.t_start) {
            Some([lo, _]) => parked.entry(lo).or_default().push(sl),
            None => {
                sl.terminate(Termination::ExitedDomain);
                finished.push(sl);
            }
        }
    }

    for k in 0..decomp.n_intervals() as u32 {
        // Work this interval until every particle has left it.
        while let Some((&lo, _)) = parked.iter().find(|(id, _)| id.step == k) {
            let hi = SpaceTimeBlockId { space: lo.space, step: k + 1 };
            for id in [lo, hi] {
                if let std::collections::hash_map::Entry::Vacant(e) = resident.entry(id) {
                    e.insert(store.load(id));
                    reads.loads += 1;
                    reads.io_time += cfg.disk.block_load_time();
                }
            }
            let list = parked.remove(&lo).expect("key just found");
            for mut sl in list {
                let next = {
                    let lookup = |id: SpaceTimeBlockId| resident.get(&id).map(Arc::clone);
                    advance_particle(&decomp, &mut sl, &lookup, &cfg.limits)
                };
                match next {
                    None => finished.push(sl),
                    Some(next_lo) => parked.entry(next_lo).or_default().push(sl),
                }
            }
        }
        // Snapshot k is finished with; only k+1 blocks carry over.
        resident.retain(|id, _| id.step > k);
    }

    finished.sort_by_key(|s| s.id);
    PathlineOutcome { pathlines: finished, reads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_field::decomp::BlockDecomposition;
    use streamline_field::unsteady::UnsteadyDoubleGyre;
    use streamline_math::Aabb;

    fn gyre_store(snapshots: usize) -> SpaceTimeStore<UnsteadyDoubleGyre> {
        let space = BlockDecomposition::new(
            Aabb::new(Vec3::ZERO, Vec3::new(2.0, 1.0, 0.25)),
            [4, 2, 1],
            [6, 6, 4],
            1,
        );
        let field = UnsteadyDoubleGyre::standard();
        SpaceTimeStore::new(
            TimeBlockDecomposition::new(space, snapshots, 0.0, field.duration),
            Arc::new(field),
        )
    }

    fn seeds(n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                Vec3::new(0.2 + 1.6 * u, 0.3 + 0.4 * (u * 7.0).fract(), 0.12)
            })
            .collect()
    }

    fn cfg() -> PathlineConfig {
        PathlineConfig {
            limits: StepLimits { h0: 1e-2, h_max: 0.1, max_steps: 20_000, ..Default::default() },
            cache_blocks: 4,
            disk: DiskModel::paper_scale(),
        }
    }

    #[test]
    fn both_strategies_trace_identically() {
        let store = gyre_store(11);
        let s = seeds(24);
        let a = run_on_demand(&store, &s, &cfg());
        let b = run_time_sweep(&store, &s, &cfg());
        assert_eq!(a.pathlines.len(), 24);
        assert_eq!(b.pathlines.len(), 24);
        for (x, y) in a.pathlines.iter().zip(b.pathlines.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.state.position, y.state.position, "{:?}", x.id);
            assert_eq!(x.state.steps, y.state.steps);
            assert_eq!(x.status, y.status);
        }
    }

    #[test]
    fn time_sweep_never_rereads() {
        let store = gyre_store(11);
        let s = seeds(48);
        let r = run_time_sweep(&store, &s, &cfg());
        // Reads bounded by the full space-time block count.
        assert!(r.reads.loads <= store.decomp().num_blocks() as u64);
        assert_eq!(r.reads.redundant_loads, 0);
    }

    #[test]
    fn on_demand_rereads_under_small_cache() {
        let store = gyre_store(11);
        let s = seeds(48);
        let od = run_on_demand(&store, &s, &cfg());
        let ts = run_time_sweep(&store, &s, &cfg());
        assert!(
            od.reads.loads > ts.reads.loads,
            "on-demand {} loads vs sweep {} — the §8 motivation",
            od.reads.loads,
            ts.reads.loads
        );
        assert!(od.reads.redundant_loads > 0);
    }

    #[test]
    fn pathlines_end_at_final_time_or_exit() {
        let store = gyre_store(6);
        let r = run_time_sweep(&store, &seeds(16), &cfg());
        for sl in &r.pathlines {
            match sl.status {
                streamline_integrate::StreamlineStatus::Terminated(Termination::MaxTime) => {
                    assert!((sl.state.time - 20.0).abs() < 1e-6);
                }
                streamline_integrate::StreamlineStatus::Terminated(t) => {
                    assert!(
                        matches!(t, Termination::ExitedDomain | Termination::ZeroVelocity),
                        "unexpected {t:?}"
                    );
                }
                _ => panic!("pathline still active"),
            }
        }
    }

    #[test]
    fn gyre_particles_stay_in_box() {
        // The double gyre's walls are impermeable: no particle may exit.
        let store = gyre_store(11);
        let r = run_time_sweep(&store, &seeds(16), &cfg());
        let exited = r
            .pathlines
            .iter()
            .filter(|s| {
                s.status
                    == streamline_integrate::StreamlineStatus::Terminated(Termination::ExitedDomain)
            })
            .count();
        assert_eq!(exited, 0, "impermeable walls breached");
    }
}
