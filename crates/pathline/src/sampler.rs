//! Space-time interpolation from a resident pair of snapshot blocks.

use std::sync::Arc;
use streamline_field::block::Block;
use streamline_math::Vec3;

/// Two snapshots of the same spatial block, bracketing a time interval:
/// trilinear in space at both, linear in time between them.
pub struct PairSampler {
    pub lo: Arc<Block>,
    pub hi: Arc<Block>,
    pub t_lo: f64,
    pub t_hi: f64,
}

impl PairSampler {
    pub fn new(lo: Arc<Block>, hi: Arc<Block>, t_lo: f64, t_hi: f64) -> Self {
        debug_assert_eq!(lo.id, hi.id, "pair must cover the same spatial block");
        debug_assert!(t_hi > t_lo);
        PairSampler { lo, hi, t_lo, t_hi }
    }

    /// Interpolated velocity at `(p, t)`; `None` outside the block lattice.
    pub fn sample(&self, p: Vec3, t: f64) -> Option<Vec3> {
        let a = self.lo.sample(p)?;
        let b = self.hi.sample(p)?;
        let w = ((t - self.t_lo) / (self.t_hi - self.t_lo)).clamp(0.0, 1.0);
        Some(a.lerp(b, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_field::block::BlockId;
    use streamline_math::Aabb;

    fn const_block(v: Vec3) -> Arc<Block> {
        let mut b = Block::zeroed(BlockId(0), Aabb::unit(), 0, [3, 3, 3], Vec3::splat(0.5));
        for s in b.data.iter_mut() {
            *s = v.to_f32_array();
        }
        Arc::new(b)
    }

    #[test]
    fn time_interpolation_is_linear() {
        let s = PairSampler::new(const_block(Vec3::X), const_block(Vec3::Y), 2.0, 4.0);
        let p = Vec3::splat(0.5);
        assert!(s.sample(p, 2.0).unwrap().distance(Vec3::X) < 1e-6);
        assert!(s.sample(p, 4.0).unwrap().distance(Vec3::Y) < 1e-6);
        let mid = s.sample(p, 3.0).unwrap();
        assert!(mid.distance(Vec3::new(0.5, 0.5, 0.0)) < 1e-6);
    }

    #[test]
    fn clamps_time_outside_interval() {
        let s = PairSampler::new(const_block(Vec3::X), const_block(Vec3::Y), 0.0, 1.0);
        let p = Vec3::splat(0.5);
        assert_eq!(s.sample(p, -5.0), s.sample(p, 0.0));
        assert_eq!(s.sample(p, 9.0), s.sample(p, 1.0));
    }

    #[test]
    fn outside_lattice_is_none() {
        let s = PairSampler::new(const_block(Vec3::X), const_block(Vec3::Y), 0.0, 1.0);
        assert!(s.sample(Vec3::splat(2.0), 0.5).is_none());
    }
}
