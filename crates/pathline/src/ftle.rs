//! Finite-time Lyapunov exponent fields — the Lagrangian-analysis workload
//! of §2.1 ("the notions of Finite-Time Lyapunov Exponents and Lagrangian
//! Coherent Structures ... can require many thousands to millions of
//! streamlines ... built on observing the separation between closely
//! neighboring particles").
//!
//! A regular grid of particles is advected over a finite horizon; the FTLE
//! is the growth rate of the largest singular value of the flow-map
//! gradient, estimated by central differences on the grid.

use serde::{Deserialize, Serialize};
use streamline_field::unsteady::UnsteadyField;
use streamline_integrate::tracer::StepLimits;
use streamline_integrate::unsteady::advect_pathline;
use streamline_integrate::{Streamline, StreamlineId};
use streamline_math::Vec3;

/// A scalar FTLE field on a 2D slice (fixed z).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FtleField {
    pub nx: usize,
    pub ny: usize,
    pub min: [f64; 2],
    pub max: [f64; 2],
    /// Row-major (x fastest), length `nx * ny`. NaN at boundary points
    /// where the gradient stencil is incomplete.
    pub values: Vec<f64>,
}

impl FtleField {
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[j * self.nx + i]
    }

    /// Maximum finite value (the LCS ridge strength).
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().filter(|v| v.is_finite()).fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Advect one particle of the flow map from `t0` over `horizon`.
fn flow_map_endpoint(
    field: &dyn UnsteadyField,
    p: Vec3,
    t0: f64,
    horizon: f64,
    limits: &StepLimits,
) -> Vec3 {
    let sample = |q: Vec3, t: f64| Some(field.eval(q, t));
    let region = |_q: Vec3, _t: f64| true;
    let mut sl = Streamline::new_lean(StreamlineId(0), p, limits.h0);
    sl.state.time = t0;
    advect_pathline(&mut sl, &sample, &region, t0 + horizon, limits);
    sl.state.position
}

/// Compute the FTLE on an `nx × ny` grid over `[min, max]` at height `z`,
/// integrating from `t0` over `horizon` (negative horizons give the
/// attracting-structure field; this computes the repelling one).
///
/// ```
/// use streamline_field::analytic::Saddle;
/// use streamline_field::unsteady::Steady;
/// use streamline_integrate::StepLimits;
/// use streamline_pathline::ftle::ftle_grid;
///
/// // For v = (λx, −λy) the FTLE equals λ everywhere.
/// let field = Steady { inner: Saddle { lambda: 0.5 }, duration: 4.0 };
/// let limits = StepLimits { h_max: 0.05, max_steps: 100_000, ..Default::default() };
/// let f = ftle_grid(&field, [-1.0, -1.0], [1.0, 1.0], 0.0, 5, 5, 0.0, 2.0, &limits);
/// assert!((f.get(2, 2) - 0.5).abs() < 1e-3);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn ftle_grid(
    field: &dyn UnsteadyField,
    min: [f64; 2],
    max: [f64; 2],
    z: f64,
    nx: usize,
    ny: usize,
    t0: f64,
    horizon: f64,
    limits: &StepLimits,
) -> FtleField {
    assert!(nx >= 3 && ny >= 3, "need at least a 3x3 grid for gradients");
    assert!(horizon > 0.0, "horizon must be positive");
    let dx = (max[0] - min[0]) / (nx - 1) as f64;
    let dy = (max[1] - min[1]) / (ny - 1) as f64;

    // Flow-map endpoints for every grid point — embarrassingly parallel
    // (the "many thousands to millions of streamlines" workload).
    use rayon::prelude::*;
    let endpoints: Vec<Vec3> = (0..nx * ny)
        .into_par_iter()
        .map(|idx| {
            let (i, j) = (idx % nx, idx / nx);
            let p = Vec3::new(min[0] + i as f64 * dx, min[1] + j as f64 * dy, z);
            flow_map_endpoint(field, p, t0, horizon, limits)
        })
        .collect();

    // Central-difference gradient of the in-plane flow map; largest
    // eigenvalue of the right Cauchy–Green tensor C = FᵀF.
    let mut values = vec![f64::NAN; nx * ny];
    for j in 1..ny - 1 {
        for i in 1..nx - 1 {
            let xp = endpoints[j * nx + i + 1];
            let xm = endpoints[j * nx + i - 1];
            let yp = endpoints[(j + 1) * nx + i];
            let ym = endpoints[(j - 1) * nx + i];
            // F = [[a, b], [c, d]] for the (x, y) components.
            let a = (xp.x - xm.x) / (2.0 * dx);
            let c = (xp.y - xm.y) / (2.0 * dx);
            let b = (yp.x - ym.x) / (2.0 * dy);
            let d = (yp.y - ym.y) / (2.0 * dy);
            // C = FᵀF is symmetric 2x2.
            let c11 = a * a + c * c;
            let c12 = a * b + c * d;
            let c22 = b * b + d * d;
            let mean = 0.5 * (c11 + c22);
            let disc = (0.5 * (c11 - c22)).powi(2) + c12 * c12;
            let lambda_max = mean + disc.sqrt();
            values[j * nx + i] = lambda_max.max(1e-300).sqrt().ln() / horizon.abs();
        }
    }
    FtleField { nx, ny, min, max, values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_field::analytic::{Saddle, Uniform};
    use streamline_field::unsteady::{Steady, UnsteadyDoubleGyre};

    fn limits() -> StepLimits {
        StepLimits { h0: 1e-2, h_max: 0.05, max_steps: 100_000, ..Default::default() }
    }

    #[test]
    fn uniform_field_has_zero_ftle() {
        let f = Steady { inner: Uniform(Vec3::new(1.0, 0.5, 0.0)), duration: 10.0 };
        let ftle = ftle_grid(&f, [0.0, 0.0], [1.0, 1.0], 0.0, 5, 5, 0.0, 2.0, &limits());
        for j in 1..4 {
            for i in 1..4 {
                assert!(ftle.get(i, j).abs() < 1e-6, "ftle = {}", ftle.get(i, j));
            }
        }
    }

    #[test]
    fn saddle_ftle_equals_lambda() {
        // For v = (λx, −λy) the flow map is exactly exponential and the
        // FTLE equals λ everywhere, for any horizon.
        let lambda = 0.7;
        let f = Steady { inner: Saddle { lambda }, duration: 10.0 };
        let ftle = ftle_grid(&f, [-1.0, -1.0], [1.0, 1.0], 0.0, 7, 7, 0.0, 2.0, &limits());
        for j in 1..6 {
            for i in 1..6 {
                assert!(
                    (ftle.get(i, j) - lambda).abs() < 1e-3,
                    "ftle = {} at ({i},{j})",
                    ftle.get(i, j)
                );
            }
        }
    }

    #[test]
    fn double_gyre_has_positive_ridges() {
        let g = UnsteadyDoubleGyre::standard();
        let ftle = ftle_grid(&g, [0.05, 0.05], [1.95, 0.95], 0.0, 24, 12, 0.0, 10.0, &limits());
        let max = ftle.max_value();
        assert!(max > 0.15, "ridge strength {max} too weak for the double gyre");
        // The field is not uniformly large: ridges are localized.
        let finite: Vec<f64> = ftle.values.iter().copied().filter(|v| v.is_finite()).collect();
        let mean = finite.iter().sum::<f64>() / finite.len() as f64;
        assert!(max > 2.0 * mean.abs().max(0.02), "max {max} vs mean {mean}");
    }

    #[test]
    #[should_panic(expected = "3x3")]
    fn tiny_grid_rejected() {
        let f = Steady { inner: Uniform(Vec3::X), duration: 1.0 };
        let _ = ftle_grid(&f, [0.0, 0.0], [1.0, 1.0], 0.0, 2, 5, 0.0, 1.0, &limits());
    }
}
