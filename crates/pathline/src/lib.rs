//! Pathlines over space-time-decomposed data — the §8 future-work direction.
//!
//! "Our current study examines in detail the performance of streamline
//! computation ... The same considerations also apply to pathlines, which
//! depend on considerably larger amounts of data ... computing pathlines
//! leads to many small reads that can often overwhelm the file system ...
//! We intend to explore reading a block from disk only once."
//!
//! This crate provides:
//!
//! * [`store::SpaceTimeStore`] — block payloads per (spatial block,
//!   snapshot) pair, sampled from a [`streamline_field::unsteady`] field,
//! * [`sampler::PairSampler`] — space-time interpolation from a resident
//!   pair of snapshot blocks (trilinear in space, linear in time),
//! * [`runner`] — the two I/O strategies §8 contrasts: naive on-demand
//!   loading (the "many small reads" regime) and the read-each-block-once
//!   time sweep, which produce *identical trajectories* but very different
//!   read counts,
//! * [`ftle`] — finite-time Lyapunov exponent fields (§2.1's Lagrangian
//!   analysis workload, "many thousands to millions of streamlines").

pub mod ftle;
pub mod runner;
pub mod sampler;
pub mod store;

pub use runner::{run_on_demand, run_time_sweep, PathlineConfig, PathlineOutcome, ReadStats};
pub use sampler::PairSampler;
pub use store::SpaceTimeStore;
