//! A dependency-free rasterizer: project streamlines onto an axis-aligned
//! plane and write a binary PPM image — instant visual checks without a
//! visualization tool.

use std::io::{self, Write};
use streamline_integrate::Streamline;
use streamline_math::Vec3;

/// Which axis to drop when projecting 3D points to the image plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Projection {
    /// Image is (y, z).
    DropX,
    /// Image is (x, z).
    DropY,
    /// Image is (x, y).
    DropZ,
}

impl Projection {
    fn project(self, p: Vec3) -> (f64, f64) {
        match self {
            Projection::DropX => (p.y, p.z),
            Projection::DropY => (p.x, p.z),
            Projection::DropZ => (p.x, p.y),
        }
    }
}

/// An RGB image buffer.
pub struct Canvas {
    pub width: usize,
    pub height: usize,
    /// Row-major RGB bytes, top row first.
    pub pixels: Vec<[u8; 3]>,
    min: (f64, f64),
    max: (f64, f64),
    projection: Projection,
}

impl Canvas {
    /// A black canvas mapping the world rectangle `[min, max]` (in projected
    /// coordinates) to the full image.
    pub fn new(
        width: usize,
        height: usize,
        min: (f64, f64),
        max: (f64, f64),
        projection: Projection,
    ) -> Self {
        assert!(width >= 2 && height >= 2);
        assert!(max.0 > min.0 && max.1 > min.1);
        Canvas { width, height, pixels: vec![[0, 0, 0]; width * height], min, max, projection }
    }

    fn to_pixel(&self, p: Vec3) -> Option<(usize, usize)> {
        let (u, v) = self.projection.project(p);
        let x = (u - self.min.0) / (self.max.0 - self.min.0);
        let y = (v - self.min.1) / (self.max.1 - self.min.1);
        if !(0.0..=1.0).contains(&x) || !(0.0..=1.0).contains(&y) {
            return None;
        }
        let px = (x * (self.width - 1) as f64).round() as usize;
        // Image origin is top-left; world origin bottom-left.
        let py = self.height - 1 - (y * (self.height - 1) as f64).round() as usize;
        Some((px, py))
    }

    /// Set one pixel (no-op off-canvas).
    pub fn plot(&mut self, p: Vec3, rgb: [u8; 3]) {
        if let Some((x, y)) = self.to_pixel(p) {
            self.pixels[y * self.width + x] = rgb;
        }
    }

    /// Draw a world-space segment with naive DDA stepping.
    pub fn segment(&mut self, a: Vec3, b: Vec3, rgb: [u8; 3]) {
        let steps = ((self.width.max(self.height)) as f64 * self.projection_span(a, b))
            .ceil()
            .max(1.0) as usize;
        for i in 0..=steps {
            self.plot(a.lerp(b, i as f64 / steps as f64), rgb);
        }
    }

    fn projection_span(&self, a: Vec3, b: Vec3) -> f64 {
        let (ax, ay) = self.projection.project(a);
        let (bx, by) = self.projection.project(b);
        let dx = (bx - ax).abs() / (self.max.0 - self.min.0);
        let dy = (by - ay).abs() / (self.max.1 - self.min.1);
        dx.max(dy)
    }

    /// Draw a full streamline's recorded geometry.
    pub fn draw_streamline(&mut self, s: &Streamline, rgb: [u8; 3]) {
        for w in s.geometry.windows(2) {
            self.segment(w[0], w[1], rgb);
        }
        if s.geometry.len() == 1 {
            self.plot(s.geometry[0], rgb);
        }
    }

    /// Count pixels that are not black (test/diagnostic helper).
    pub fn lit_pixels(&self) -> usize {
        self.pixels.iter().filter(|p| p.iter().any(|&c| c > 0)).count()
    }

    /// Write a binary PPM (P6).
    pub fn write_ppm<W: Write>(&self, mut w: W) -> io::Result<()> {
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        for px in &self.pixels {
            w.write_all(px)?;
        }
        Ok(())
    }

    /// Convenience: write to a file path.
    pub fn write_ppm_file(&self, path: &std::path::Path) -> io::Result<()> {
        let f = std::fs::File::create(path)?;
        self.write_ppm(io::BufWriter::new(f))
    }
}

/// Map an index to a distinguishable color (golden-angle hue walk).
pub fn palette(i: usize) -> [u8; 3] {
    let h = (i as f64 * 0.618_033_988_75).fract() * 6.0;
    let sector = h.floor() as usize % 6;
    let f = (h - h.floor()) * 255.0;
    let (r, g, b) = match sector {
        0 => (255.0, f, 40.0),
        1 => (255.0 - f, 255.0, 40.0),
        2 => (40.0, 255.0, f),
        3 => (40.0, 255.0 - f, 255.0),
        4 => (f, 40.0, 255.0),
        _ => (255.0, 40.0, 255.0 - f),
    };
    [r as u8, g as u8, b as u8]
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_integrate::StreamlineId;

    fn canvas() -> Canvas {
        Canvas::new(32, 16, (0.0, 0.0), (2.0, 1.0), Projection::DropZ)
    }

    #[test]
    fn plot_maps_corners() {
        let mut c = canvas();
        c.plot(Vec3::new(0.0, 0.0, 0.7), [255, 0, 0]); // bottom-left
        c.plot(Vec3::new(2.0, 1.0, 0.0), [0, 255, 0]); // top-right
        assert_eq!(c.pixels[(16 - 1) * 32], [255, 0, 0]);
        assert_eq!(c.pixels[31], [0, 255, 0]);
    }

    #[test]
    fn off_canvas_is_ignored() {
        let mut c = canvas();
        c.plot(Vec3::new(-1.0, 0.5, 0.0), [9, 9, 9]);
        c.plot(Vec3::new(3.0, 0.5, 0.0), [9, 9, 9]);
        assert_eq!(c.lit_pixels(), 0);
    }

    #[test]
    fn segment_is_continuous() {
        let mut c = canvas();
        c.segment(Vec3::new(0.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 0.0), [255, 255, 255]);
        // A diagonal across a 32x16 canvas lights at least 32 pixels.
        assert!(c.lit_pixels() >= 32, "{}", c.lit_pixels());
    }

    #[test]
    fn streamline_drawing_lights_pixels() {
        let mut s = Streamline::new(StreamlineId(0), Vec3::new(0.1, 0.1, 0.0), 0.01);
        for i in 1..20 {
            s.push_step(Vec3::new(0.1 + i as f64 * 0.09, 0.5, 0.0), 0.1);
        }
        let mut c = canvas();
        c.draw_streamline(&s, [10, 200, 10]);
        assert!(c.lit_pixels() > 10);
    }

    #[test]
    fn ppm_header_and_size() {
        let c = canvas();
        let mut buf = Vec::new();
        c.write_ppm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n32 16\n255\n"));
        assert_eq!(buf.len(), b"P6\n32 16\n255\n".len() + 32 * 16 * 3);
    }

    #[test]
    fn palette_colors_differ() {
        let set: std::collections::HashSet<[u8; 3]> = (0..16).map(palette).collect();
        assert!(set.len() >= 14, "palette collapses: {} distinct", set.len());
    }

    #[test]
    fn projections_drop_the_right_axis() {
        assert_eq!(Projection::DropX.project(Vec3::new(1.0, 2.0, 3.0)), (2.0, 3.0));
        assert_eq!(Projection::DropY.project(Vec3::new(1.0, 2.0, 3.0)), (1.0, 3.0));
        assert_eq!(Projection::DropZ.project(Vec3::new(1.0, 2.0, 3.0)), (1.0, 2.0));
    }
}
