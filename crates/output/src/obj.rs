//! Wavefront OBJ writer: streamlines as `l` (line) elements, one object per
//! curve — convenient for mesh/DCC tooling.

use std::io::{self, Write};
use streamline_integrate::Streamline;

/// Write streamlines as OBJ line elements.
pub fn write_lines<W: Write>(mut w: W, streamlines: &[Streamline]) -> io::Result<()> {
    writeln!(w, "# streamline-repro OBJ export: {} curves", streamlines.len())?;
    let mut base = 1usize; // OBJ indices are 1-based
    for s in streamlines {
        writeln!(w, "o streamline_{}", s.id.0)?;
        for p in &s.geometry {
            writeln!(w, "v {} {} {}", p.x, p.y, p.z)?;
        }
        if s.geometry.len() >= 2 {
            write!(w, "l")?;
            for i in 0..s.geometry.len() {
                write!(w, " {}", base + i)?;
            }
            writeln!(w)?;
        }
        base += s.geometry.len();
    }
    Ok(())
}

/// Convenience: write to a file path.
pub fn write_lines_file(path: &std::path::Path, streamlines: &[Streamline]) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_lines(io::BufWriter::new(f), streamlines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_integrate::StreamlineId;
    use streamline_math::Vec3;

    fn curve(id: u32, n: usize) -> Streamline {
        let mut s = Streamline::new(StreamlineId(id), Vec3::splat(id as f64), 0.01);
        for i in 1..n {
            s.push_step(Vec3::new(i as f64, id as f64, 0.0), 0.1);
        }
        s
    }

    fn render(streams: &[Streamline]) -> String {
        let mut buf = Vec::new();
        write_lines(&mut buf, streams).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn one_object_per_curve_with_one_based_indices() {
        let out = render(&[curve(0, 2), curve(1, 3)]);
        assert!(out.contains("o streamline_0"));
        assert!(out.contains("o streamline_1"));
        assert!(out.contains("l 1 2"));
        assert!(out.contains("l 3 4 5"));
    }

    #[test]
    fn vertex_count_matches() {
        let out = render(&[curve(0, 4)]);
        assert_eq!(out.matches("\nv ").count(), 4);
    }

    #[test]
    fn single_point_curve_has_no_line_element() {
        let out = render(&[curve(0, 1)]);
        assert!(!out.contains("\nl "));
    }
}
