//! Output writers for computed streamlines — the visualization products.
//!
//! The paper's system lives inside VisIt, where the curves feed the
//! rendering pipeline directly; a standalone library needs file outputs:
//!
//! * [`vtk`] — legacy ASCII VTK `POLYDATA` polylines (loads in
//!   VisIt/ParaView), with per-vertex integration time and arc length,
//! * [`obj`] — Wavefront OBJ line elements for mesh tooling,
//! * [`ppm`] — a dependency-free rasterizer producing PPM images of curve
//!   projections (quick visual checks without a viz tool),
//! * [`csv`] — per-streamline summary tables for analysis scripts.

pub mod csv;
pub mod obj;
pub mod ppm;
pub mod vtk;
