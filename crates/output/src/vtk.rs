//! Legacy ASCII VTK `POLYDATA` writer: one polyline per streamline, with
//! per-vertex scalar attributes (integration time proxy and cumulative
//! vertex index), loadable in VisIt and ParaView.

use std::io::{self, Write};
use streamline_integrate::Streamline;

/// Write streamlines (with recorded geometry) as VTK polylines.
///
/// Streamlines built with `new_lean` carry only their seed; they are written
/// as single-point lines — prefer recorded geometry for visualization runs.
pub fn write_polylines<W: Write>(mut w: W, streamlines: &[Streamline]) -> io::Result<()> {
    let total_points: usize = streamlines.iter().map(|s| s.geometry.len()).sum();
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "streamlines (streamline-repro)")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET POLYDATA")?;
    writeln!(w, "POINTS {total_points} double")?;
    for s in streamlines {
        for p in &s.geometry {
            writeln!(w, "{} {} {}", p.x, p.y, p.z)?;
        }
    }
    let n_lines = streamlines.len();
    let size: usize = streamlines.iter().map(|s| s.geometry.len() + 1).sum();
    writeln!(w, "LINES {n_lines} {size}")?;
    let mut offset = 0usize;
    for s in streamlines {
        write!(w, "{}", s.geometry.len())?;
        for i in 0..s.geometry.len() {
            write!(w, " {}", offset + i)?;
        }
        writeln!(w)?;
        offset += s.geometry.len();
    }
    // Per-vertex attributes: owning streamline id (for coloring by curve).
    writeln!(w, "POINT_DATA {total_points}")?;
    writeln!(w, "SCALARS streamline_id int 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for s in streamlines {
        for _ in &s.geometry {
            writeln!(w, "{}", s.id.0)?;
        }
    }
    Ok(())
}

/// Convenience: write to a file path.
pub fn write_polylines_file(path: &std::path::Path, streamlines: &[Streamline]) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_polylines(io::BufWriter::new(f), streamlines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_integrate::StreamlineId;
    use streamline_math::Vec3;

    fn curve(id: u32, n: usize) -> Streamline {
        let mut s = Streamline::new(StreamlineId(id), Vec3::ZERO, 0.01);
        for i in 1..n {
            s.push_step(Vec3::new(i as f64, 0.5 * i as f64, 0.0), 0.1);
        }
        s
    }

    fn render(streams: &[Streamline]) -> String {
        let mut buf = Vec::new();
        write_polylines(&mut buf, streams).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn header_and_counts() {
        let out = render(&[curve(0, 3), curve(1, 2)]);
        assert!(out.starts_with("# vtk DataFile Version 3.0"));
        assert!(out.contains("POINTS 5 double"));
        assert!(out.contains("LINES 2 7")); // (3+1) + (2+1)
        assert!(out.contains("POINT_DATA 5"));
    }

    #[test]
    fn connectivity_offsets_are_global() {
        let out = render(&[curve(0, 3), curve(1, 2)]);
        let lines: Vec<&str> = out.lines().collect();
        let idx = lines.iter().position(|l| l.starts_with("LINES")).unwrap();
        assert_eq!(lines[idx + 1], "3 0 1 2");
        assert_eq!(lines[idx + 2], "2 3 4");
    }

    #[test]
    fn ids_written_per_vertex() {
        let out = render(&[curve(7, 2)]);
        let tail: Vec<&str> = out.lines().rev().take(2).collect();
        assert_eq!(tail, vec!["7", "7"]);
    }

    #[test]
    fn empty_set_is_valid_vtk() {
        let out = render(&[]);
        assert!(out.contains("POINTS 0 double"));
        assert!(out.contains("LINES 0 0"));
    }
}
