//! Per-streamline summary tables (CSV) for analysis scripts.

use std::io::{self, Write};
use streamline_integrate::{Streamline, StreamlineStatus};

/// One row per streamline: id, seed, final position, steps, arc length,
/// integration time, termination reason.
pub fn write_summary<W: Write>(mut w: W, streamlines: &[Streamline]) -> io::Result<()> {
    writeln!(w, "id,seed_x,seed_y,seed_z,end_x,end_y,end_z,steps,arc_length,time,status")?;
    for s in streamlines {
        let status = match s.status {
            StreamlineStatus::Active => "active".to_string(),
            StreamlineStatus::Terminated(t) => format!("{t:?}"),
        };
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{},{}",
            s.id.0,
            s.seed.x,
            s.seed.y,
            s.seed.z,
            s.state.position.x,
            s.state.position.y,
            s.state.position.z,
            s.state.steps,
            s.state.arc_length,
            s.state.time,
            status,
        )?;
    }
    Ok(())
}

/// Convenience: write to a file path.
pub fn write_summary_file(path: &std::path::Path, streamlines: &[Streamline]) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_summary(io::BufWriter::new(f), streamlines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_integrate::{StreamlineId, Termination};
    use streamline_math::Vec3;

    #[test]
    fn rows_match_streamlines() {
        let mut a = Streamline::new(StreamlineId(3), Vec3::new(1.0, 2.0, 3.0), 0.01);
        a.push_step(Vec3::new(2.0, 2.0, 3.0), 0.5);
        a.terminate(Termination::ExitedDomain);
        let b = Streamline::new(StreamlineId(4), Vec3::ZERO, 0.01);
        let mut buf = Vec::new();
        write_summary(&mut buf, &[a, b]).unwrap();
        let out = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("id,seed_x"));
        assert!(lines[1].starts_with("3,1,2,3,2,2,3,1,1,0.5,ExitedDomain"));
        assert!(lines[2].ends_with("active"));
    }
}
